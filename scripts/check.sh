#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, static analysis, full test
# suite. Everything runs offline (--offline); the workspace vendors its only
# external deps as path shims under shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== srclint (source lints, allowlist: scripts/lint-allow.txt)"
cargo run --release --offline -q -p iolap-analyze --bin srclint

echo "== verify-plans (static plan verifier, all built-in queries)"
IOLAP_SCALE=bench cargo run --release --offline -q -p iolap-bench --bin experiments -- verify-plans

echo "== analyze --smoke (source lints + allowlist staleness + plan-space model checker)"
cargo run --release --offline -q -p iolap-bench --bin experiments -- analyze --smoke

echo "== kernels --smoke (columnar kernels bit-identical to row references)"
IOLAP_SCALE=bench cargo run --release --offline -q -p iolap-bench --bin experiments -- kernels --smoke

echo "== faultstorm --smoke (seeded fault injection, Theorem-1 agreement)"
IOLAP_SCALE=bench cargo run --release --offline -q -p iolap-bench --bin experiments -- faultstorm --smoke

echo "== trace --smoke (trace schema golden: scripts/trace-schema.golden)"
cargo run --release --offline -q -p iolap-bench --bin experiments -- trace --smoke

echo "== serve --smoke (multi-tenant serving: solo-exactness, early stop, admission)"
cargo run --release --offline -q -p iolap-bench --bin experiments -- serve --smoke

echo "== shard --smoke (scale-out: sharded runs byte-identical, TCP probe, 2-shard storm)"
IOLAP_SCALE=bench cargo run --release --offline -q -p iolap-bench --bin experiments -- shard --smoke

echo "== observe --smoke (telemetry plane: exposition golden, trace/exposition determinism, overhead)"
cargo run --release --offline -q -p iolap-bench --bin experiments -- observe --smoke

echo "== durability --smoke (crash-point matrix byte-identical, append cells Theorem-1 exact)"
cargo run --release --offline -q -p iolap-bench --bin experiments -- durability --smoke

echo "== cargo test"
cargo test --workspace --release --offline -q

echo "== tier-1 gate passed"
