//! # iolap-suite
//!
//! Workspace umbrella for the iOLAP reproduction: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`),
//! and re-exports the member crates for one-import convenience.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use iolap_baselines as baselines;
pub use iolap_bootstrap as bootstrap;
pub use iolap_core as core;
pub use iolap_engine as engine;
pub use iolap_relation as relation;
pub use iolap_sql as sql;
pub use iolap_workloads as workloads;
