//! Workspace integration tests: every evaluation query (TPC-H Q1–Q22
//! subset, Conviva C1–C12 + SBI) runs end-to-end through the iOLAP driver
//! with per-batch Theorem-1 equivalence against the batch oracle, and
//! through the HDA comparator for final-answer agreement.

use iolap_baselines::HdaDriver;
use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry, PlannedQuery};
use iolap_relation::{BatchedRelation, Catalog, PartitionMode, Relation, Row};
use iolap_workloads::{
    conviva_catalog, conviva_queries, conviva_registry, tpch_catalog, tpch_queries, QuerySpec,
};

fn config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(25).seed(17);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

/// Run one query through iOLAP and assert per-batch equivalence with the
/// scaled-prefix batch oracle.
fn check_query(q: &QuerySpec, cat: &Catalog, registry: &FunctionRegistry, batches: usize) {
    let pq: PlannedQuery =
        plan_sql(q.sql, cat, registry).unwrap_or_else(|e| panic!("{}: plan error {e}", q.id));
    let cfg = config(batches);
    let stream = cat.get(q.stream_table).unwrap();
    let parts = BatchedRelation::partition(&stream, batches, cfg.seed, cfg.partition_mode);
    let mut driver = IolapDriver::from_plan(&pq, cat, q.stream_table, cfg)
        .unwrap_or_else(|e| panic!("{}: driver error {e}", q.id));

    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap_or_else(|e| panic!("{}: batch {i} error {e}", q.id));
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oracle_cat = cat.clone();
        oracle_cat.register(
            q.stream_table,
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oracle_cat).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "{} batch {i}: iOLAP != oracle\n== iOLAP ==\n{}== oracle ==\n{}",
            q.id,
            report.result.relation,
            expected
        );
        i += 1;
    }
    // The partitioner clamps to the row count when the stream is smaller
    // than the requested batch count.
    assert_eq!(i, parts.num_batches(), "{}: unexpected batch count", q.id);
    assert_eq!(
        parts.num_batches(),
        batches.min(stream.len().max(1)),
        "{}: clamping contract",
        q.id
    );
}

/// Final-batch agreement between HDA and the exact answer.
fn check_hda_final(q: &QuerySpec, cat: &Catalog, registry: &FunctionRegistry, batches: usize) {
    let pq = plan_sql(q.sql, cat, registry).unwrap();
    let mut hda = HdaDriver::from_plan(&pq, cat, q.stream_table, config(batches)).unwrap();
    let reports = hda.run_to_completion().unwrap();
    let exact = execute(&pq.plan, cat).unwrap();
    let last = &reports.last().unwrap().result.relation;
    assert!(
        last.approx_eq(&exact, 1e-6),
        "{}: HDA final != exact\n{}\nvs\n{}",
        q.id,
        last,
        exact
    );
}

// --------------------------------------------------------------- TPC-H lite

#[test]
fn tpch_all_queries_theorem1() {
    let cat = tpch_catalog(0.04, 99);
    let registry = FunctionRegistry::with_builtins();
    for q in tpch_queries() {
        check_query(&q, &cat, &registry, 5);
    }
}

#[test]
fn tpch_nested_queries_hda_final() {
    let cat = tpch_catalog(0.03, 100);
    let registry = FunctionRegistry::with_builtins();
    for q in tpch_queries().into_iter().filter(|q| q.nested) {
        check_hda_final(&q, &cat, &registry, 4);
    }
}

// ------------------------------------------------------------------ Conviva

#[test]
fn conviva_all_queries_theorem1() {
    let cat = conviva_catalog(600, 23);
    let registry = conviva_registry();
    for q in conviva_queries() {
        check_query(&q, &cat, &registry, 5);
    }
}

#[test]
fn conviva_nested_queries_hda_final() {
    let cat = conviva_catalog(400, 24);
    let registry = conviva_registry();
    for q in conviva_queries().into_iter().filter(|q| q.nested) {
        check_hda_final(&q, &cat, &registry, 4);
    }
}

// ------------------------------------------------------- behavioural shapes

#[test]
fn iolap_recomputes_less_than_hda_on_nested_queries() {
    // The non-deterministic set shrinks relative to the data as ranges
    // tighten (∝ √n), while HDA recomputes the whole prefix (∝ n) — the
    // Figure 8 contrast. The gap needs enough data to open up.
    let cat = conviva_catalog(4000, 25);
    let registry = conviva_registry();
    let q = conviva_queries()
        .into_iter()
        .find(|q| q.id == "SBI")
        .unwrap();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();

    let mut iolap = IolapDriver::from_plan(&pq, &cat, "sessions", config(16)).unwrap();
    let iolap_reports = iolap.run_to_completion().unwrap();
    let mut hda = HdaDriver::from_plan(&pq, &cat, "sessions", config(16)).unwrap();
    let hda_reports = hda.run_to_completion().unwrap();

    let iolap_late: usize = iolap_reports[10..]
        .iter()
        .map(|r| r.stats.recomputed_tuples)
        .sum();
    let hda_late: usize = hda_reports[10..]
        .iter()
        .map(|r| r.stats.recomputed_tuples)
        .sum();
    assert!(
        iolap_late * 2 < hda_late,
        "iOLAP late recompute {iolap_late} should be well below HDA {hda_late}"
    );
}

#[test]
fn ablation_ladder_recomputation() {
    // Fig 9(a): full iOLAP ≤ OPT1-only < no-opts (HDA-like), measured by
    // recomputed tuples.
    let cat = conviva_catalog(600, 26);
    let registry = conviva_registry();
    let q = conviva_queries()
        .into_iter()
        .find(|q| q.id == "C2")
        .unwrap();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();

    let total = |opt1: bool, opt2: bool| -> usize {
        let cfg = config(6).optimizations(opt1, opt2);
        let mut d = IolapDriver::from_plan(&pq, &cat, "sessions", cfg).unwrap();
        d.run_to_completion()
            .unwrap()
            .iter()
            .map(|r| r.stats.recomputed_tuples)
            .sum()
    };
    let full = total(true, true);
    let none = total(false, false);
    assert!(
        full < none,
        "optimizations must reduce recomputation: full={full} none={none}"
    );
}
