//! Serving-layer acceptance: ≥8 concurrent sessions over ≥2 distinct
//! built-in queries on a 4-worker pool, with every session's final answer
//! exact-equal to its solo run, accuracy-contract sessions stopping
//! strictly before full-data completion, and admission rejecting (never
//! hanging) when full. Exercises the same `run_cell` machinery the
//! `experiments serve` sweep records into `BENCH_PR5.json`.

use iolap_bench::serve::{admission_probe, run_cell, solo_reference};
use iolap_bench::{conviva_workload, ExpScale};

fn scale() -> ExpScale {
    ExpScale {
        tpch_sf: 0.1,
        conviva_rows: 500,
        batches: 6,
        trials: 12,
        seed: 2016,
    }
}

#[test]
fn eight_sessions_on_four_workers_match_their_solo_runs() {
    let scale = scale();
    let w = conviva_workload(&scale);
    let queries = ["C2", "C3", "SBI", "C1"];
    let solo = solo_reference(&w, &queries, &scale);
    let cell = run_cell(&w, &scale, 4, 8, "open", &solo);

    assert_eq!(cell.violations, 0, "cell reported violations: {cell:#?}");
    assert_eq!(cell.session_results.len(), 8);
    let distinct: std::collections::BTreeSet<_> = cell
        .session_results
        .iter()
        .map(|s| s.query.as_str())
        .collect();
    assert!(
        distinct.len() >= 2,
        "needed ≥2 distinct queries: {distinct:?}"
    );

    for s in &cell.session_results {
        // Concurrency must never change an answer: every delivered report
        // was byte-identical to the solo run's report at the same batch.
        assert!(s.exact_vs_solo, "{} diverged from its solo run", s.label);
        assert_eq!(s.state, "done", "{}: {s:?}", s.label);
        if s.policy.starts_with("relative_ci") {
            // The accuracy contract fires strictly before completion.
            assert!(s.stopped_early, "{}: {s:?}", s.label);
            assert!(
                s.batches_run < s.total_batches,
                "{} ran {}/{} batches — not strictly early",
                s.label,
                s.batches_run,
                s.total_batches
            );
        }
        if s.policy == "complete" {
            assert_eq!(s.batches_run, s.total_batches, "{}: {s:?}", s.label);
        }
    }
    assert!(cell.batch_latency.count() > 0);
}

#[test]
fn closed_arrival_also_preserves_exactness() {
    let scale = scale();
    let w = conviva_workload(&scale);
    let queries = ["C2", "C3", "SBI", "C1"];
    let solo = solo_reference(&w, &queries, &scale);
    // Closed loop: live slots bounded at the worker count, the rest queue.
    let cell = run_cell(&w, &scale, 2, 8, "closed", &solo);
    assert_eq!(cell.violations, 0, "cell reported violations: {cell:#?}");
    assert!(cell.session_results.iter().all(|s| s.exact_vs_solo));
}

#[test]
fn admission_rejects_rather_than_hangs_when_full() {
    let scale = scale();
    let w = conviva_workload(&scale);
    assert!(admission_probe(&w, &scale));
}
