//! Seeded fault-storm property test (§5.1 hardening): for the paper's
//! representative nested queries (TPC-H Q17/Q20, Conviva C8), inject every
//! fault kind at varying batch points and checkpoint intervals across
//! several seeds, and assert the driver still lands on the *exact* offline
//! answer at the final mini-batch (Theorem 1 anchor at m = 1).
//!
//! This is the integration-level counterpart of `experiments faultstorm`:
//! smaller catalogs, but a wider seed sweep, and it runs in the default
//! debug-profile `cargo test` gate.

use iolap_core::{FaultKind, FaultPlan, IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{Catalog, PartitionMode};
use iolap_workloads::{
    conviva_catalog, conviva_queries, conviva_registry, tpch_catalog, tpch_queries, QuerySpec,
};

const BATCHES: usize = 6;
const KINDS: [FaultKind; 6] = [
    FaultKind::FailRange {
        agg: None,
        column: None,
    },
    FaultKind::DropCheckpoint,
    FaultKind::CorruptCheckpoint,
    FaultKind::WorkerPanic,
    FaultKind::DerefPanic,
    FaultKind::PerturbRanges { epsilon: 0.3 },
];

fn config(seed: u64, interval: usize, plan: FaultPlan) -> IolapConfig {
    let mut c = IolapConfig::with_batches(BATCHES)
        .trials(16)
        .seed(seed)
        .parallelism(2)
        .fault_plan(plan);
    c.partition_mode = PartitionMode::RowShuffle;
    c.checkpoint_interval = interval;
    c
}

/// Run `q` under `cfg` to completion and assert the final answer equals the
/// offline exact execution of the same plan. `shards > 0` attaches an
/// in-process shard pool, so the storm also exercises the scale-out fold
/// path (dispatch, partial ship, partition-order merge) under faults.
fn storm_one(
    q: &QuerySpec,
    cat: &Catalog,
    registry: &FunctionRegistry,
    cfg: IolapConfig,
    shards: usize,
) {
    let label = format!(
        "{} seed={} interval={} shards={} faults={:?}",
        q.id,
        cfg.seed,
        cfg.checkpoint_interval,
        shards,
        cfg.fault_plan.as_ref().map(|p| p
            .faults
            .iter()
            .map(|f| f.kind.label())
            .collect::<Vec<_>>())
    );
    let pq = plan_sql(q.sql, cat, registry).unwrap_or_else(|e| panic!("{label}: plan error {e}"));
    let mut driver = IolapDriver::from_plan(&pq, cat, q.stream_table, cfg)
        .unwrap_or_else(|e| panic!("{label}: driver error {e}"));
    if shards > 0 {
        driver.set_shard_exec(std::sync::Arc::new(
            iolap_server::shard::ThreadShardPool::new(shards),
        ));
    }
    let reports = driver
        .run_to_completion()
        .unwrap_or_else(|e| panic!("{label}: run error {e}"));
    let exact = execute(&pq.plan, cat).unwrap();
    let last = &reports.last().unwrap().result.relation;
    assert!(
        last.approx_eq(&exact, 1e-6),
        "{label}: final batch != exact\n== iOLAP ==\n{last}== exact ==\n{exact}"
    );
}

fn storm(q: &QuerySpec, cat: &Catalog, registry: &FunctionRegistry, shards: usize) {
    // Injected worker/deref panics are caught and recovered, but the
    // default hook would still print their backtraces into the test log.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for seed in [11u64, 12, 13] {
            for kind in &KINDS {
                for (batch, interval) in [(2usize, 1usize), (BATCHES - 2, 2)] {
                    let plan = FaultPlan::new(seed).with(batch, kind.clone());
                    storm_one(q, cat, registry, config(seed, interval, plan), shards);
                }
            }
            // Compound storm: several faults armed in one run.
            let plan = FaultPlan::new(seed)
                .with(1, FaultKind::CorruptCheckpoint)
                .with(
                    2,
                    FaultKind::FailRange {
                        agg: None,
                        column: None,
                    },
                )
                .with(3, FaultKind::WorkerPanic)
                .with(4, FaultKind::PerturbRanges { epsilon: 0.2 });
            storm_one(q, cat, registry, config(seed, 1, plan), shards);
        }
    }));
    std::panic::set_hook(prev);
    if let Err(payload) = run {
        std::panic::resume_unwind(payload);
    }
}

fn tpch_query(id: &str) -> QuerySpec {
    tpch_queries().into_iter().find(|q| q.id == id).unwrap()
}

#[test]
fn tpch_q17_survives_fault_storm_exactly() {
    let cat = tpch_catalog(0.04, 41);
    let registry = FunctionRegistry::with_builtins();
    storm(&tpch_query("Q17"), &cat, &registry, 0);
}

#[test]
fn tpch_q20_survives_fault_storm_exactly() {
    let cat = tpch_catalog(0.04, 42);
    let registry = FunctionRegistry::with_builtins();
    storm(&tpch_query("Q20"), &cat, &registry, 0);
}

#[test]
fn conviva_c8_survives_fault_storm_exactly() {
    let cat = conviva_catalog(700, 43);
    let registry = conviva_registry();
    let q = conviva_queries()
        .into_iter()
        .find(|q| q.id == "C8")
        .unwrap();
    storm(&q, &cat, &registry, 0);
}

/// The same storm with fold dispatch offloaded to a two-shard pool: every
/// fault kind must still land Theorem-1-exact, and the WorkerPanic fault
/// (which now fires on the dispatch path) must still be recoverable.
#[test]
fn conviva_c8_survives_fault_storm_exactly_on_two_shards() {
    let cat = conviva_catalog(700, 43);
    let registry = conviva_registry();
    let q = conviva_queries()
        .into_iter()
        .find(|q| q.id == "C8")
        .unwrap();
    storm(&q, &cat, &registry, 2);
}

#[test]
fn tpch_q17_survives_fault_storm_exactly_on_two_shards() {
    let cat = tpch_catalog(0.04, 41);
    let registry = FunctionRegistry::with_builtins();
    storm(&tpch_query("Q17"), &cat, &registry, 2);
}
