//! Determinism regression: two identical runs of the same query must
//! produce byte-identical batch reports (modulo wall-clock). Guards the
//! bug class the source lint L002 polices statically — `HashMap` iteration
//! order leaking into a `Sink` or `BatchReport` (each `HashMap` instance
//! gets its own random hash keys, so any leaked order differs even between
//! two runs in the same process).

use iolap_baselines::HdaDriver;
use iolap_core::{BatchReport, IolapConfig, IolapDriver};
use iolap_engine::plan_sql;
use iolap_relation::PartitionMode;
use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry, tpch_catalog, tpch_query};
use std::fmt::Write as _;

fn config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(25).seed(17);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

/// Canonical report serialization: everything except wall-clock (`elapsed`
/// and the `*_ns` metric spans, which legitimately differ between runs).
fn canon(reports: &[BatchReport]) -> String {
    let mut s = String::new();
    for r in reports {
        let _ = writeln!(
            s,
            "batch={} fraction={} recovered={} join_bytes={} other_bytes={}",
            r.batch, r.fraction, r.recovered, r.state_bytes_join, r.state_bytes_other
        );
        let _ = writeln!(
            s,
            "stats recomputed={} shipped={} failures={}",
            r.stats.recomputed_tuples, r.stats.shipped_bytes, r.stats.failures
        );
        let _ = writeln!(s, "names={:?}", r.result.names);
        let _ = write!(s, "{}", r.result.relation);
        let _ = writeln!(s, "estimates={:?}", r.result.estimates);
        for (name, v) in r.metrics.iter() {
            if !name.ends_with("_ns") && !name.ends_with(".ns") {
                let _ = writeln!(s, "metric {name}={v}");
            }
        }
    }
    s
}

fn assert_deterministic_iolap(sql: &str, stream: &str, cat: &iolap_relation::Catalog, id: &str) {
    let registry = conviva_registry();
    let pq = plan_sql(sql, cat, &registry).unwrap();
    let run = || {
        let mut d = IolapDriver::from_plan(&pq, cat, stream, config(5)).unwrap();
        canon(&d.run_to_completion().unwrap())
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "{id}: two identical iOLAP runs diverged");
}

#[test]
fn iolap_reports_are_bytewise_deterministic() {
    let cat = conviva_catalog(120, 11);
    for id in ["SBI", "C2", "C3"] {
        let q = conviva_query(id).unwrap();
        assert_deterministic_iolap(q.sql, q.stream_table, &cat, id);
    }
}

#[test]
fn iolap_tpch_reports_are_bytewise_deterministic() {
    let cat = tpch_catalog(0.02, 23);
    let q = tpch_query("Q18").unwrap();
    let registry = iolap_engine::FunctionRegistry::with_builtins();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();
    let run = || {
        let mut d = IolapDriver::from_plan(&pq, &cat, q.stream_table, config(5)).unwrap();
        canon(&d.run_to_completion().unwrap())
    };
    assert_eq!(run(), run(), "Q18: two identical iOLAP runs diverged");
}

/// Trace determinism: with timestamps normalized away (replaced by the
/// sequence counter, which *is* the causal order — all emissions happen on
/// the driver thread), two identical traced runs must export byte-identical
/// journals in both the JSONL and Chrome `trace_event` formats. This is
/// what lets `scripts/trace-schema.golden` be a plain golden file.
#[test]
fn trace_exports_are_bytewise_deterministic() {
    use iolap_core::{export_chrome, export_jsonl, TraceMode};
    let cat = conviva_catalog(120, 11);
    let registry = conviva_registry();
    let q = conviva_query("C2").unwrap();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();
    let run = || {
        let cfg = config(5).trace_mode(TraceMode::Journal);
        let mut d = IolapDriver::from_plan(&pq, &cat, q.stream_table, cfg).unwrap();
        d.run_to_completion().unwrap();
        let events = d.trace_events();
        assert!(!events.is_empty(), "journal mode produced no events");
        (export_jsonl(&events, true), export_chrome(&events, true))
    };
    let ((jl_a, ch_a), (jl_b, ch_b)) = (run(), run());
    assert_eq!(
        jl_a, jl_b,
        "C2: normalized JSONL trace diverged across runs"
    );
    assert_eq!(
        ch_a, ch_b,
        "C2: normalized Chrome trace diverged across runs"
    );
}

/// Multi-tenant determinism: two fixed-seed runs of the *same* concurrent
/// session mix through the serving layer must deliver byte-identical
/// per-session report streams. Sessions share nothing (each driver owns
/// its data and RNG), so per-session results are schedule-independent even
/// though the interleaving across sessions varies with worker timing.
#[test]
fn multi_tenant_session_reports_are_bytewise_deterministic() {
    use iolap_server::{Server, ServerConfig, SessionSpec};
    use std::time::Duration;

    let cat = conviva_catalog(120, 11);
    let registry = conviva_registry();
    let run = || {
        let server = Server::new(ServerConfig::with_workers(4));
        let handles: Vec<_> = ["SBI", "C2", "C3", "SBI", "C2", "C3"]
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let q = conviva_query(id).unwrap();
                let pq = plan_sql(q.sql, &cat, &registry).unwrap();
                let d = IolapDriver::from_plan(&pq, &cat, q.stream_table, config(5)).unwrap();
                (
                    format!("s{i}:{id}"),
                    server
                        .submit(d, SessionSpec::named(format!("s{i}:{id}")))
                        .unwrap(),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|(label, h)| {
                let reports = h.drain(Duration::from_secs(30));
                assert_eq!(reports.len(), 5, "{label} did not complete");
                format!("{label}\n{}", canon(&reports))
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        run(),
        run(),
        "two fixed-seed multi-tenant runs diverged per-session"
    );
}

/// Scale-out determinism (§8): attaching a shard pool of any size must
/// not move a single byte of the published reports. The merge tree is
/// pinned to the partition grid, so N=1/2/4 runs are identical to each
/// other *and* — once the shard-only bookkeeping metrics are set aside —
/// to the single-process run.
#[test]
fn shard_count_never_changes_published_reports() {
    use iolap_server::shard::ThreadShardPool;
    use std::sync::Arc;

    // ~1400 rows per batch: two grid partitions, so multi-shard pools
    // genuinely split the work.
    let cat = conviva_catalog(4200, 11);
    let registry = conviva_registry();
    let strip_shard_metrics = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("metric shard."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for id in ["SBI", "C2", "C3"] {
        let q = conviva_query(id).unwrap();
        let pq = plan_sql(q.sql, &cat, &registry).unwrap();
        let run = |shards: usize| {
            let mut d = IolapDriver::from_plan(&pq, &cat, q.stream_table, config(3)).unwrap();
            if shards > 0 {
                d.set_shard_exec(Arc::new(ThreadShardPool::new(shards)));
            }
            canon(&d.run_to_completion().unwrap())
        };
        let solo = run(0);
        let one_shard = run(1);
        assert_eq!(
            strip_shard_metrics(&one_shard),
            strip_shard_metrics(&solo),
            "{id}: sharded run diverged from single-process run"
        );
        for shards in [2usize, 4] {
            assert_eq!(
                run(shards),
                one_shard,
                "{id}: shard count {shards} changed the published reports"
            );
        }
    }
}

/// Cross-shard trace identity: the canonical trace export — `shard.*`
/// frames filtered, sequence renumbered — must be byte-identical no
/// matter how many fold workers the driver dispatches to. Shard topology
/// may add its own frames but must never move an application span.
#[test]
fn canonical_trace_exports_are_byte_identical_across_shard_counts() {
    use iolap_core::{canonical_events, export_jsonl, TraceMode};
    use iolap_server::shard::ThreadShardPool;
    use std::sync::Arc;

    let cat = conviva_catalog(4200, 11);
    let registry = conviva_registry();
    let q = conviva_query("C2").unwrap();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();
    let run = |shards: usize| {
        let cfg = config(3).trace_mode(TraceMode::Journal);
        let mut d = IolapDriver::from_plan(&pq, &cat, q.stream_table, cfg).unwrap();
        if shards > 0 {
            d.set_shard_exec(Arc::new(ThreadShardPool::new(shards)));
        }
        d.run_to_completion().unwrap();
        let events = d.trace_events();
        if shards > 1 {
            assert!(
                events.iter().any(|e| e.name.starts_with("shard.")),
                "multi-shard run recorded no shard frames"
            );
        }
        export_jsonl(&canonical_events(&events), true)
    };
    let baseline = run(0);
    assert!(!baseline.is_empty());
    for shards in [1usize, 2, 4] {
        assert_eq!(
            run(shards),
            baseline,
            "shard count {shards} changed the canonical trace export"
        );
    }
}

/// Telemetry determinism across multi-tenant interleavings: two
/// fixed-seed runs of the same session mix — racing on two workers — must
/// render byte-identical canonical expositions and canonical scheduler
/// traces. Metric rollups are commutative merges and the canonical trace
/// groups events by session, so worker timing must not show.
#[test]
fn multi_tenant_canonical_telemetry_is_bytewise_deterministic() {
    use iolap_core::{export_jsonl, TraceMode};
    use iolap_server::{canonical_trace, Server, ServerConfig, SessionSpec};
    use std::time::Duration;

    let cat = conviva_catalog(120, 11);
    let registry = conviva_registry();
    let run = || {
        let server = Server::new(
            ServerConfig::with_workers(2)
                .max_live(8)
                .trace(TraceMode::Journal),
        );
        let handles: Vec<_> = ["SBI", "C2", "C3", "C2"]
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let q = conviva_query(id).unwrap();
                let pq = plan_sql(q.sql, &cat, &registry).unwrap();
                let d = IolapDriver::from_plan(&pq, &cat, q.stream_table, config(5)).unwrap();
                let tenant = if i % 2 == 0 { "acme" } else { "bob\"s" };
                server.submit(d, SessionSpec::named(tenant)).unwrap()
            })
            .collect();
        // Join before draining so the `sess.finish` mark's buffer-state
        // detail cannot race a concurrent client.
        for h in &handles {
            assert!(h.join(Duration::from_secs(30)), "session did not finish");
        }
        for h in &handles {
            h.drain(Duration::from_secs(30));
        }
        let exposition = server.exposition(true);
        let trace = export_jsonl(&canonical_trace(&server.trace_events()), true);
        server.shutdown();
        (exposition, trace)
    };
    let ((exp_a, tr_a), (exp_b, tr_b)) = (run(), run());
    assert!(exp_a.contains("tenant=\"bob\\\"s\""), "label not escaped");
    assert_eq!(exp_a, exp_b, "canonical expositions diverged across runs");
    assert_eq!(
        tr_a, tr_b,
        "canonical scheduler traces diverged across runs"
    );
}

#[test]
fn hda_reports_are_bytewise_deterministic() {
    // C2's correlated subquery gives HDA's inner view many group entries —
    // the exact surface where unordered materialization used to leak.
    let cat = conviva_catalog(120, 11);
    let registry = conviva_registry();
    for id in ["SBI", "C2"] {
        let q = conviva_query(id).unwrap();
        let pq = plan_sql(q.sql, &cat, &registry).unwrap();
        let run = || {
            let mut d = HdaDriver::from_plan(&pq, &cat, q.stream_table, config(5)).unwrap();
            canon(&d.run_to_completion().unwrap())
        };
        assert_eq!(run(), run(), "{id}: two identical HDA runs diverged");
    }
}
