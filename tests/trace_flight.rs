//! Flight-recorder integration tests: the bounded in-memory trace ring must
//! retain — across a §5.1 fault/recovery episode — the injected fault, the
//! cascade it triggers, and every replay pass, so a post-mortem dump tells
//! the whole causal story. This is the integration-level counterpart of the
//! `experiments faultstorm --smoke` dump.

use iolap_core::{EventKind, FaultKind, FaultPlan, IolapConfig, IolapDriver, TraceMode};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{Catalog, PartitionMode};
use iolap_workloads::{conviva_catalog, conviva_queries, conviva_registry, QuerySpec};

const BATCHES: usize = 6;

fn config(seed: u64, plan: FaultPlan) -> IolapConfig {
    let mut c = IolapConfig::with_batches(BATCHES)
        .trials(16)
        .seed(seed)
        .parallelism(2)
        .fault_plan(plan)
        .flight_recorder();
    c.partition_mode = PartitionMode::RowShuffle;
    c.checkpoint_interval = 1;
    c
}

fn conviva_query(id: &str) -> QuerySpec {
    conviva_queries().into_iter().find(|q| q.id == id).unwrap()
}

/// Run `q` under `cfg` to completion, assert exactness at m = 1, and return
/// the flight-recorder dump.
fn run_and_dump(q: &QuerySpec, cat: &Catalog, cfg: IolapConfig) -> (IolapDriver, String) {
    let registry = conviva_registry();
    let pq = plan_sql(q.sql, cat, &registry).unwrap();
    let mut driver = IolapDriver::from_plan(&pq, cat, q.stream_table, cfg).unwrap();
    let reports = driver.run_to_completion().unwrap();
    let exact = execute(&pq.plan, cat).unwrap();
    let last = &reports.last().unwrap().result.relation;
    assert!(
        last.approx_eq(&exact, 1e-6),
        "{}: final batch != exact after fault episode",
        q.id
    );
    let dump = driver
        .flight_dump()
        .expect("flight recorder armed, dump must exist");
    (driver, dump)
}

/// Two `FailRange` faults armed at the same batch: the first forces a range
/// failure (→ replay); during the replay pass the second, still-unclaimed
/// fault fires while `replaying` is set, which the driver must record as a
/// cascade. The dump must name the fault, the cascade depth, and each
/// replay window.
#[test]
fn flight_dump_names_fault_cascade_and_replays() {
    let cat = conviva_catalog(600, 7);
    let fail = FaultKind::FailRange {
        agg: None,
        column: None,
    };
    let plan = FaultPlan::new(13)
        .with(3, fail.clone())
        .with(3, fail.clone());
    let (driver, dump) = run_and_dump(&conviva_query("C8"), &cat, config(13, plan));

    // The injected faults are named by label.
    assert!(
        dump.contains("fault.injected") && dump.contains("fail_range"),
        "dump must name the injected fault:\n{dump}"
    );
    // The forced failure and its replay window are on the record.
    assert!(
        dump.contains("range.failure"),
        "missing range.failure:\n{dump}"
    );
    assert!(
        dump.contains("recovery.replay") && dump.contains("replay batches"),
        "missing replay window:\n{dump}"
    );
    // The second fault fired mid-replay → cascade, with its depth.
    assert!(
        dump.contains("recovery.cascade") && dump.contains("cascade depth"),
        "missing cascade record:\n{dump}"
    );
    assert!(driver.metrics().get("recovery.cascades") >= 1);
    // Ring bookkeeping: header reports retained/dropped counts.
    assert!(
        dump.starts_with("=== flight recorder:"),
        "bad header:\n{dump}"
    );
}

/// With no fault plan and the recorder armed, the dump still exists and
/// carries the ordinary batch/operator span skeleton — the recorder is a
/// always-on black box, not a fault-path special case.
#[test]
fn flight_dump_exists_on_clean_runs_and_off_mode_yields_none() {
    let cat = conviva_catalog(400, 5);
    let q = conviva_query("C2");
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();

    let mut cfg = IolapConfig::with_batches(4)
        .trials(8)
        .seed(3)
        .flight_recorder();
    cfg.partition_mode = PartitionMode::RowShuffle;
    let mut driver = IolapDriver::from_plan(&pq, &cat, q.stream_table, cfg).unwrap();
    driver.run_to_completion().unwrap();
    let dump = driver.flight_dump().unwrap();
    assert!(
        dump.contains(" batch ") || dump.contains("batch"),
        "no batch spans:\n{dump}"
    );
    assert!(dump.contains("sink.publish"), "no publish spans:\n{dump}");

    let mut off = IolapConfig::with_batches(4).trials(8).seed(3);
    off.partition_mode = PartitionMode::RowShuffle;
    assert!(matches!(off.trace_mode, TraceMode::Off));
    let mut driver = IolapDriver::from_plan(&pq, &cat, q.stream_table, off).unwrap();
    driver.run_to_completion().unwrap();
    assert!(driver.flight_dump().is_none());
    assert!(driver.trace_events().is_empty());
}

/// An injected mid-pipeline panic (`DerefPanic`) is recovered by the error
/// replay; the journal must show the episode: the fault event, the
/// error-replay marker, and a subsequent replay window.
#[test]
fn journal_records_panic_recovery_episode() {
    let cat = conviva_catalog(500, 9);
    let q = conviva_query("C8");
    let registry = conviva_registry();
    let pq = plan_sql(q.sql, &cat, &registry).unwrap();

    let plan = FaultPlan::new(21).with(2, FaultKind::DerefPanic);
    let mut cfg = IolapConfig::with_batches(BATCHES)
        .trials(16)
        .seed(21)
        .parallelism(2)
        .fault_plan(plan)
        .trace_mode(TraceMode::Journal);
    cfg.partition_mode = PartitionMode::RowShuffle;
    cfg.checkpoint_interval = 1;

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut driver = IolapDriver::from_plan(&pq, &cat, q.stream_table, cfg).unwrap();
        driver.run_to_completion().unwrap();
        driver
    }));
    std::panic::set_hook(prev);
    let driver = match run {
        Ok(d) => d,
        Err(payload) => std::panic::resume_unwind(payload),
    };

    let events = driver.trace_events();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert!(
        names.contains(&"fault.injected"),
        "no fault event: {names:?}"
    );
    assert!(
        names.contains(&"recovery.error_replay"),
        "no error-replay marker: {names:?}"
    );
    assert!(
        names.contains(&"recovery.replay"),
        "no replay window: {names:?}"
    );
    // Span tree sanity: every End pairs a Begin with the same span id.
    let begins: Vec<u32> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin)
        .map(|e| e.span.0)
        .collect();
    for e in events.iter().filter(|e| e.kind == EventKind::End) {
        assert!(begins.contains(&e.span.0), "End without Begin: {e:?}");
    }
}
