//! Quickstart: the paper's Example 1 ("Slow Buffering Impact") run
//! incrementally.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads a synthetic video-sessions table, registers the SBI query, and
//! streams mini-batches: after every batch you get the current approximate
//! `AVG(play_time)` with a bootstrap confidence interval, exactly the
//! interactive loop the paper's §1–§2 describe. The final batch is the
//! exact answer.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::FunctionRegistry;
use iolap_workloads::conviva_catalog;

fn main() {
    // A 20k-row synthetic sessions table stands in for the paper's 2 TB
    // Conviva log (same schema shape; see iolap-workloads docs).
    let catalog = conviva_catalog(20_000, 7);
    let registry = FunctionRegistry::with_builtins();

    let sql = "SELECT AVG(play_time) FROM sessions \
               WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";
    println!("SBI query:\n  {sql}\n");

    // 10 mini-batches, 100 bootstrap trials, slack ε = 2.0 — the paper's
    // defaults (§8).
    let config = IolapConfig::with_batches(10);
    let mut driver =
        IolapDriver::from_sql(sql, &catalog, &registry, "sessions", config).expect("compile query");

    println!(
        "{:>6} {:>8} {:>14} {:>24} {:>10}",
        "batch", "data %", "AVG(play_time)", "95% confidence interval", "latency"
    );
    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        let row = &report.result.relation.rows()[0];
        let est = report.result.estimates[0][0].as_ref();
        let (lo, hi) = est.map(|e| (e.ci_lo, e.ci_hi)).unwrap_or((0.0, 0.0));
        println!(
            "{:>6} {:>7.0}% {:>14.2} {:>11.2} – {:>10.2} {:>8.1}ms",
            report.batch + 1,
            report.fraction * 100.0,
            row.values[0].as_f64().unwrap_or(f64::NAN),
            lo,
            hi,
            report.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\nThe last line is the exact answer (all data processed).");
}
