//! Extending the engine: register a scalar UDF and a UDAF, then run them
//! *online* inside a nested query — the generality claim of the paper's §1
//! ("arbitrary nested subqueries, user-defined functions (UDFs) and
//! user-defined aggregate functions (UDAFs)").
//!
//! ```text
//! cargo run --release --example custom_udaf
//! ```
//!
//! Defines `MBPS(bitrate)` (unit-converting UDF) and `P2_MEAN(x)` (a
//! power-2 mean UDAF) and runs: which CDNs' slow-buffering sessions have an
//! above-global power-mean bitrate? The per-batch estimates come with
//! bootstrap error bars like any built-in aggregate.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::aggregate::{Accumulator, Udaf};
use iolap_engine::registry::FnUdf;
use iolap_engine::{EngineError, ExprError};
use iolap_relation::{DataType, Value};
use iolap_workloads::{conviva_catalog, conviva_registry};
use std::sync::Arc;

/// Power-2 (quadratic) mean: sqrt(Σw·x² / Σw). Smooth under resampling, so
/// bootstrap error estimation applies (§3.3).
#[derive(Clone, Debug, Default)]
struct P2MeanAcc {
    n: f64,
    sumsq: f64,
}

impl Accumulator for P2MeanAcc {
    fn update(&mut self, v: &Value, weight: f64) {
        if let Some(x) = v.as_f64() {
            self.n += weight;
            self.sumsq += weight * x * x;
        }
    }
    fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
        let o = other.as_any().downcast_ref::<P2MeanAcc>().ok_or_else(|| {
            EngineError::Plan("accumulator kind mismatch while merging P2_MEAN partitions".into())
        })?;
        self.n += o.n;
        self.sumsq += o.sumsq;
        Ok(())
    }
    fn output(&self, _scale: f64) -> Value {
        if self.n <= 0.0 {
            Value::Null
        } else {
            Value::Float((self.sumsq / self.n).sqrt())
        }
    }
    fn boxed_clone(&self) -> Box<dyn Accumulator> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct P2Mean;

impl Udaf for P2Mean {
    fn name(&self) -> &str {
        "P2_MEAN"
    }
    fn accumulator(&self) -> Box<dyn Accumulator> {
        Box::new(P2MeanAcc::default())
    }
}

fn mbps(args: &[Value]) -> Result<Value, ExprError> {
    match args.first() {
        Some(Value::Null) => Ok(Value::Null),
        Some(v) => v
            .as_f64()
            .map(|kbps| Value::Float(kbps / 1000.0))
            .ok_or_else(|| ExprError::Udf("MBPS: expected numeric".into())),
        None => Err(ExprError::Udf("MBPS: missing argument".into())),
    }
}

fn main() {
    let catalog = conviva_catalog(15_000, 3);
    let mut registry = conviva_registry();
    registry.register_scalar(Arc::new(FnUdf::new("MBPS", DataType::Float, mbps)));
    registry.register_udaf(Arc::new(P2Mean));

    let sql = "SELECT cdn, P2_MEAN(MBPS(bitrate)) AS p2_mbps, COUNT(*) AS n \
               FROM sessions s \
               WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                      WHERE i.cdn = s.cdn) \
               GROUP BY cdn ORDER BY cdn";
    println!("query:\n  {sql}\n");

    let mut driver = IolapDriver::from_sql(
        sql,
        &catalog,
        &registry,
        "sessions",
        IolapConfig::with_batches(8),
    )
    .expect("compile");

    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        println!(
            "after batch {} ({:.0}% of data):",
            report.batch + 1,
            report.fraction * 100.0
        );
        for (row, ests) in report
            .result
            .relation
            .rows()
            .iter()
            .zip(report.result.estimates.iter())
        {
            let cdn = row.values[0].as_str().unwrap_or("?");
            let p2 = row.values[1].as_f64().unwrap_or(f64::NAN);
            let n = row.values[2].as_f64().unwrap_or(0.0);
            let err = ests[1]
                .as_ref()
                .map(|e| format!("± {:.3}", e.std_error))
                .unwrap_or_else(|| "(exact)".into());
            println!("  {cdn:<12} p2_mbps {p2:>7.3} {err:<10} sessions ~{n:.0}");
        }
    }
    println!("\n(last table is exact — the stream is exhausted)");
}
