//! The accuracy–latency dial: stop the query as soon as the estimate is
//! good enough (§1: "the user is satisfied with the accuracy of the query
//! results and stops the query").
//!
//! ```text
//! cargo run --release --example accuracy_dial -- 2.0
//! ```
//!
//! Runs the Conviva C8 query (harmonic-mean bitrate of engaged sessions — a
//! UDAF over a nested-subquery filter) and stops when the relative standard
//! deviation drops below the target percentage (default 2%, the paper's
//! Fig 7(a) walkthrough). Compares against the batch engine's exact answer
//! and latency.

use iolap_baselines::run_baseline;
use iolap_core::{IolapConfig, IolapDriver};
use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};
use std::time::Duration;

fn main() {
    let target_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2.0);

    let catalog = conviva_catalog(60_000, 11);
    let registry = conviva_registry();
    let q = conviva_query("C8").expect("C8 registered");
    println!("query C8: {}\n  {}\n", q.name, q.sql);

    // Exact baseline for reference.
    let baseline = run_baseline(q.sql, &catalog, &registry).expect("baseline");
    let exact = baseline.relation.rows()[0].values[0].as_f64().unwrap();
    println!(
        "batch engine (exact): {:.2} in {:.1} ms\n",
        exact,
        baseline.elapsed.as_secs_f64() * 1e3
    );

    let config = IolapConfig::with_batches(40);
    let mut driver =
        IolapDriver::from_sql(q.sql, &catalog, &registry, "sessions", config).expect("compile");

    let mut spent = Duration::ZERO;
    println!("target accuracy: relative stddev < {target_pct}%\n");
    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        spent += report.elapsed;
        let estimate = report.result.relation.rows()[0].values[0]
            .as_f64()
            .unwrap_or(f64::NAN);
        let rsd = report.result.max_relative_std().unwrap_or(f64::INFINITY) * 100.0;
        println!(
            "batch {:>2}: estimate {:>8.2}  (rsd {:>5.2}%, {:>4.0}% of data, {:>6.1} ms elapsed)",
            report.batch + 1,
            estimate,
            rsd,
            report.fraction * 100.0,
            spent.as_secs_f64() * 1e3
        );
        if rsd < target_pct {
            let err = 100.0 * (estimate - exact).abs() / exact.abs();
            println!(
                "\nstopped early: {:.2} vs exact {:.2} ({err:.2}% off), \
                 {:.1}x faster than the batch engine",
                estimate,
                exact,
                baseline.elapsed.as_secs_f64() / spent.as_secs_f64()
            );
            return;
        }
    }
    println!("\nprocessed everything (target stricter than the data allows).");
}
