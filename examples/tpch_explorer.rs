//! TPC-H-lite explorer: plan, stream, and compare any of the paper's ten
//! evaluation queries.
//!
//! ```text
//! cargo run --release --example tpch_explorer -- Q17
//! cargo run --release --example tpch_explorer -- Q18 16
//! ```
//!
//! Prints the logical plan (showing the decorrelated subquery shape), then
//! drives iOLAP, the HDA comparator, and the batch baseline side by side,
//! reporting per-batch latency and the recomputed-tuple counts that
//! reproduce the paper's Figure 8 contrast.

use iolap_baselines::{run_baseline_plan, HdaDriver};
use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{plan_sql, FunctionRegistry};
use iolap_workloads::{tpch_catalog, tpch_query};

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "Q17".into());
    let batches: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let Some(q) = tpch_query(&id) else {
        eprintln!("unknown query `{id}`; try Q1 Q3 Q5 Q6 Q7 Q11 Q17 Q18 Q20 Q22");
        std::process::exit(1);
    };
    println!(
        "{} — {}\nstreams: {}\n\n{}\n",
        q.id, q.name, q.stream_table, q.sql
    );

    let catalog = tpch_catalog(2.0, 42);
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(q.sql, &catalog, &registry).expect("plan");
    println!("logical plan:\n{}", pq.plan.explain());

    let baseline = run_baseline_plan(&pq, &catalog).expect("baseline");
    println!(
        "batch baseline: {} rows in {:.1} ms\n",
        baseline.relation.len(),
        baseline.elapsed.as_secs_f64() * 1e3
    );

    let config = IolapConfig::with_batches(batches);
    let mut iolap =
        IolapDriver::from_plan(&pq, &catalog, q.stream_table, config.clone()).expect("iolap");
    let mut hda = HdaDriver::from_plan(&pq, &catalog, q.stream_table, config).expect("hda");

    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>16}",
        "batch", "iOLAP (ms)", "iOLAP recomp.", "HDA (ms)", "HDA recomp."
    );
    while let (Some(a), Some(b)) = (iolap.step(), hda.step()) {
        let a = a.expect("iolap batch");
        let b = b.expect("hda batch");
        println!(
            "{:>6} {:>14.2} {:>16} {:>14.2} {:>16}{}",
            a.batch + 1,
            a.elapsed.as_secs_f64() * 1e3,
            a.stats.recomputed_tuples,
            b.elapsed.as_secs_f64() * 1e3,
            b.stats.recomputed_tuples,
            if a.recovered {
                "   (range recovery)"
            } else {
                ""
            },
        );
        if a.batch + 1 == batches {
            // Final batches are exact; confirm all three agree.
            let ok_iolap = a.result.relation.approx_eq(&baseline.relation, 1e-6);
            let ok_hda = b.result.relation.approx_eq(&baseline.relation, 1e-6);
            println!("\nfinal answers agree with the batch engine: iOLAP={ok_iolap} HDA={ok_hda}");
        }
    }
}
