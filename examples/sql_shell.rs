//! Ad-hoc incremental SQL over the bundled workloads.
//!
//! ```text
//! cargo run --release --example sql_shell -- conviva \
//!   "SELECT cdn, AVG(play_time) FROM sessions GROUP BY cdn ORDER BY cdn"
//! cargo run --release --example sql_shell -- tpch \
//!   "SELECT SUM(lo_extendedprice * lo_discount) FROM lineorder \
//!    WHERE lo_discount BETWEEN 0.05 AND 0.07" lineorder 16
//! ```
//!
//! Arguments: `<workload> <sql> [stream_table] [batches]`. Prints the online
//! operator tree (with uncertainty annotations), then every partial result
//! with its error estimates — the paper's interactive loop, for any query in
//! the supported dialect.

use iolap_core::{rewrite, IolapConfig, IolapDriver};
use iolap_engine::plan_sql;
use iolap_workloads::{conviva_catalog, conviva_registry, tpch_catalog};
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: sql_shell <tpch|conviva> <sql> [stream_table] [batches]");
        std::process::exit(2);
    }
    let (catalog, registry, default_stream) = match args[0].as_str() {
        "tpch" => (
            tpch_catalog(1.0, 1),
            iolap_engine::FunctionRegistry::with_builtins(),
            "lineorder",
        ),
        "conviva" => (conviva_catalog(10_000, 1), conviva_registry(), "sessions"),
        other => {
            eprintln!("unknown workload `{other}` (use tpch or conviva)");
            std::process::exit(2);
        }
    };
    let sql = &args[1];
    let stream = args.get(2).map(String::as_str).unwrap_or(default_stream);
    let batches: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(10);

    let pq = match plan_sql(sql, &catalog, &registry) {
        Ok(pq) => pq,
        Err(e) => {
            eprintln!("plan error: {e}");
            std::process::exit(1);
        }
    };
    let streamed: HashSet<String> = [stream.to_ascii_lowercase()].into();
    match rewrite(&pq, &streamed) {
        Ok(oq) => println!("online plan:\n{}", oq.root.explain()),
        Err(e) => {
            eprintln!("rewrite error: {e}");
            std::process::exit(1);
        }
    }

    let mut driver =
        IolapDriver::from_plan(&pq, &catalog, stream, IolapConfig::with_batches(batches))
            .expect("driver");
    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        println!(
            "--- batch {}/{} ({:.0}% of {}, {:.1} ms{}) ---",
            report.batch + 1,
            batches,
            report.fraction * 100.0,
            stream,
            report.elapsed.as_secs_f64() * 1e3,
            if report.recovered {
                ", range recovery"
            } else {
                ""
            },
        );
        println!("{}", report.result.names.join(" | "));
        for (row, ests) in report
            .result
            .relation
            .rows()
            .iter()
            .take(12)
            .zip(report.result.estimates.iter())
        {
            let cells: Vec<String> = row
                .values
                .iter()
                .zip(ests.iter())
                .map(|(v, e)| match e {
                    Some(e) => format!("{v} (±{:.2})", e.std_error),
                    None => v.to_string(),
                })
                .collect();
            println!("{}", cells.join(" | "));
        }
        if report.result.relation.len() > 12 {
            println!("… {} more rows", report.result.relation.len() - 12);
        }
    }
}
