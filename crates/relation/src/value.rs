//! Scalar values stored in relations.
//!
//! iOLAP relations use a small dynamically-typed value model. Two details are
//! specific to this system:
//!
//! * [`Value::Ref`] is a *block-wise lineage reference* (paper §6.1): instead
//!   of copying an uncertain aggregate result into every tuple that joins
//!   with it, the join attaches a reference to `(aggregate id, group key)`.
//!   Expressions dereference it lazily against the aggregate registry, which
//!   is how lazy evaluation (§6.2) keeps saved operator state up to date
//!   without regenerating tuples.
//! * Numeric comparisons coerce `Int`/`Float`, but equality and hashing (used
//!   for join/group-by keys) are strict per-variant. The paper excludes
//!   approximate join/group-by keys (§3.3), so keys are always deterministic
//!   and type-stable.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A block-wise lineage reference to one group of one aggregate operator's
/// output (paper §6.1, "AGGREGATE" case of Definition 1).
///
/// `agg` uniquely identifies the aggregate operator's output relation within
/// a compiled query (the paper's `rel(γ)`), `column` selects which aggregate
/// column of that output, and `key` is the group-by key of the referenced
/// output tuple.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AggRef {
    /// Unique id of the aggregate operator output within the compiled query.
    pub agg: u32,
    /// Index of the referenced aggregate column in that operator's output.
    pub column: u16,
    /// Group-by key of the referenced output tuple (empty for global
    /// aggregates).
    pub key: Arc<[Value]>,
}

impl fmt::Display for AggRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@agg{}#{}[", self.agg, self.column)?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// An opaque deferred-computation cell (paper §6.1 "folding deterministic
/// value"): a *computed* uncertain attribute (e.g. `0.2 × AVG(...)`) is not
/// materialized — doing so would leave a stale scalar in saved operator
/// state. Instead the cell captures the static lineage function together
/// with its folded deterministic operands and the aggregate references, and
/// consumers evaluate it lazily through the resolver.
///
/// The payload is opaque at this layer (the expression type lives in the
/// engine crate); identity is by the creator-supplied *content token*, a
/// deterministic digest of the captured lineage function and operands. Two
/// cells with the same token denote the same deferred computation.
///
/// Identity was previously the payload's `Arc` address, which is
/// address-dependent and therefore a determinism hazard (the L002 family):
/// an unresolved cell's `Debug`/`Display` form, and the order of rows that
/// tie on every other attribute, would have varied run to run had a cell
/// ever leaked into a report. The content token makes equality, hashing,
/// ordering, and formatting reproducible by construction.
#[derive(Clone)]
pub struct PendingCell {
    /// Opaque payload, downcast by the resolver that created it.
    pub payload: Arc<dyn std::any::Any + Send + Sync>,
    /// Deterministic content digest of `(lineage expr, captured operands)`,
    /// computed by the creator. Identity, hashing, and display all use it.
    pub token: u64,
}

impl PendingCell {
    /// New cell around `payload` with content digest `token`.
    pub fn new(payload: Arc<dyn std::any::Any + Send + Sync>, token: u64) -> PendingCell {
        PendingCell { payload, token }
    }
}

impl fmt::Debug for PendingCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PendingCell#{:016x}", self.token)
    }
}

/// A dynamically typed scalar value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
    /// Lineage reference to an uncertain aggregate attribute (iOLAP §6).
    Ref(AggRef),
    /// Deferred computation over uncertain attributes (iOLAP §6, folded
    /// lineage). Never a join/group key.
    Pending(PendingCell),
}

impl Value {
    /// Shared `Str` constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Rough bytes this value occupies beyond `size_of::<Value>()` (heap
    /// payload: string bytes, lineage-ref keys). The single source of truth
    /// for state/shipped-byte accounting — `row_approx_bytes` and the
    /// operator channels both build on it.
    pub fn approx_heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            Value::Ref(r) => {
                r.key.len() * std::mem::size_of::<Value>()
                    + r.key.iter().map(Value::approx_heap_bytes).sum::<usize>()
            }
            // The thunk payload is an opaque shared Arc; charge the cell.
            Value::Pending(_) => std::mem::size_of::<PendingCell>(),
            _ => 0,
        }
    }

    /// Data type of this value, if it is a concrete scalar.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Ref(_) => DataType::Ref,
            Value::Pending(_) => DataType::Ref,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Lineage-reference view of the value.
    pub fn as_ref_value(&self) -> Option<&AggRef> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Total order used for ORDER BY and MIN/MAX. Nulls sort first; numeric
    /// variants compare by value with `Int`/`Float` coercion; distinct
    /// non-numeric variants compare by a fixed variant rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => (a.agg, a.column).cmp(&(b.agg, b.column)),
            // Content tokens keep the order of tied rows reproducible.
            (Pending(a), Pending(b)) => a.token.cmp(&b.token),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric variants share a rank
            Value::Str(_) => 3,
            Value::Ref(_) => 4,
            Value::Pending(_) => 5,
        }
    }

    /// Numeric comparison with `Int`/`Float` coercion, used by predicate
    /// evaluation. Returns `None` when either side is NULL or the values are
    /// not comparable (e.g. string vs int).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            // Bit-equality keeps Eq/Hash consistent; NaN == NaN here, which is
            // what grouping needs.
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Ref(a), Ref(b)) => a == b,
            (Pending(a), Pending(b)) => a.token == b.token,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Ref(r) => r.hash(state),
            Value::Pending(c) => c.token.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Pending(c) => write!(f, "<pending:{c:?}>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// The data types supported by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Type of `Value::Null` before coercion.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Lineage reference (internal to iOLAP plans).
    Ref,
}

impl DataType {
    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Least upper bound of two types under numeric coercion. `Null` is the
    /// identity. Returns `None` for incompatible pairs.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, t) | (t, Null) => Some(t),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "NULL",
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Ref => "REF",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_compare_coerces() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_compare_is_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn strict_equality_distinguishes_int_float() {
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_eq!(Value::Int(3), Value::Int(3));
    }

    #[test]
    fn float_eq_hash_consistent_for_nan() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn total_cmp_null_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Int(-100).total_cmp(&Value::Null), Ordering::Greater);
    }

    #[test]
    fn total_cmp_numeric_coercion() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
    }

    #[test]
    fn unify_types() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Null.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Str.unify(DataType::Int), None);
    }

    #[test]
    fn display_round_values() {
        assert_eq!(Value::Float(37.0).to_string(), "37.0");
        assert_eq!(Value::Int(37).to_string(), "37");
        assert_eq!(Value::str("abc").to_string(), "abc");
    }

    #[test]
    fn agg_ref_display() {
        let r = AggRef {
            agg: 2,
            column: 0,
            key: Arc::from(vec![Value::Int(7)]),
        };
        assert_eq!(Value::Ref(r).to_string(), "@agg2#0[7]");
    }

    #[test]
    fn string_compare() {
        assert_eq!(
            Value::str("a").compare(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
    }
}
