//! Typed columnar batches: the SoA (structure-of-arrays) representation of
//! the hot delta/bootstrap path.
//!
//! A [`Batch`] holds one mini-batch of tuples column-wise: each column is a
//! typed vector ([`ColumnData`]) plus an optional validity [`Bitmap`]
//! (absent = all rows valid). Kernels over a batch never materialize row
//! copies; they produce selection vectors ([`SelVec`]) of passing row
//! ordinals, and materialization back into [`Row`](crate::Row)s happens only
//! at the facade boundary (`Batch::to_rows`, in `kernels/facade.rs`).
//!
//! Column typing is *strict*: a column is stored typed only when every
//! non-null cell has exactly that variant, so `Batch::from_rows` followed by
//! `Batch::to_rows` is value-exact (an `Int(3)` never comes back as
//! `Float(3.0)`). Anything mixed — including lineage cells (`Ref`/`Pending`,
//! §6.1) — falls back to [`ColumnData::Val`], which round-trips the original
//! `Value`s unchanged.

use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Fixed-size validity bitmap: bit set ⇒ the row's cell is valid (non-null).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-clear bitmap of `len` bits.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`; out-of-range reads as unset.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }
}

/// Typed column storage. Slots where the validity bit is clear hold an
/// arbitrary placeholder (`0`, `false`, dictionary code 0, …) and must never
/// be read as data.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// All non-null cells are `Value::Int`.
    I64(Vec<i64>),
    /// All non-null cells are `Value::Float` (bit-exact, NaN included).
    F64(Vec<f64>),
    /// All non-null cells are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null cells are `Value::Str`; `codes[i]` indexes `dict` (built
    /// in first-occurrence order, so construction is deterministic).
    Str {
        /// Distinct strings, in first-occurrence order.
        dict: Vec<Arc<str>>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// Fallback for mixed-type columns and lineage cells: the original
    /// values, row-aligned.
    Val(Vec<Value>),
}

/// One column of a [`Batch`]: typed data plus optional validity.
#[derive(Clone, Debug)]
pub struct Column {
    /// Typed cell storage.
    pub data: ColumnData,
    /// Validity bitmap; `None` ⇒ every row valid.
    pub validity: Option<Bitmap>,
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Val(v) => v.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` holds a valid (non-null) cell.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            None => i < self.len(),
            Some(b) => b.get(i),
        }
    }

    /// Numeric view of cell `i` with the same coercion as
    /// [`Value::as_f64`]: `Some` for valid `Int`/`Float` cells only.
    pub fn cell_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::I64(v) => Some(v[i] as f64),
            ColumnData::F64(v) => Some(v[i]),
            ColumnData::Val(v) => v[i].as_f64(),
            _ => None,
        }
    }

    /// Materialize cell `i` as a [`Value`]. This is the facade direction —
    /// kernels read cells through the typed accessors instead.
    pub fn cell_value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(v) => Value::Int(v[i]),
            ColumnData::F64(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str { dict, codes } => {
                let code = codes[i] as usize;
                match dict.get(code) {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                }
            }
            ColumnData::Val(v) => v[i].clone(),
        }
    }

    /// Build a column from borrowed cells, choosing the strictest typed
    /// representation that is value-exact. Returns the column and whether
    /// any lineage cell (`Ref`/`Pending`) was seen — callers running
    /// deref-free kernels must fall back to row-at-a-time evaluation in
    /// that case.
    pub fn from_cells<'a>(cells: impl Iterator<Item = &'a Value>) -> (Column, bool) {
        // Buffer the borrowed cells once; classification needs a full look
        // before the typed vectors can be built without re-running the
        // (possibly non-Clone) iterator.
        let cells: Vec<&Value> = cells.collect();
        let n = cells.len();
        let mut saw_lineage = false;
        let mut kind: Option<u8> = None; // 0=I64 1=F64 2=Bool 3=Str
        let mut mixed = false;
        let mut nulls = 0usize;
        for &v in &cells {
            let k = match v {
                Value::Null => {
                    nulls += 1;
                    continue;
                }
                Value::Int(_) => 0u8,
                Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
                Value::Ref(_) | Value::Pending(_) => {
                    saw_lineage = true;
                    mixed = true;
                    continue;
                }
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => mixed = true,
            }
        }
        if mixed {
            let data = ColumnData::Val(cells.into_iter().cloned().collect());
            return (
                Column {
                    data,
                    validity: None,
                },
                saw_lineage,
            );
        }
        let validity = if nulls > 0 {
            let mut b = Bitmap::new(n);
            for (i, v) in cells.iter().enumerate() {
                if !v.is_null() {
                    b.set(i);
                }
            }
            Some(b)
        } else {
            None
        };
        let data = match kind {
            // All-null (or empty) column: any typed placeholder works, the
            // validity bitmap masks every slot.
            None => ColumnData::I64(vec![0; n]),
            Some(0) => ColumnData::I64(
                cells
                    .iter()
                    .map(|v| v.as_i64().unwrap_or_default())
                    .collect(),
            ),
            Some(1) => ColumnData::F64(
                cells
                    .iter()
                    .map(|v| v.as_f64().unwrap_or_default())
                    .collect(),
            ),
            Some(2) => ColumnData::Bool(
                cells
                    .iter()
                    .map(|v| v.as_bool().unwrap_or_default())
                    .collect(),
            ),
            Some(_) => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut seen: HashMap<Arc<str>, u32> = HashMap::new();
                let mut codes = Vec::with_capacity(n);
                for &v in &cells {
                    match v {
                        Value::Str(s) => {
                            let code = match seen.get(&**s) {
                                Some(&c) => c,
                                None => {
                                    let c = checked_u32(dict.len());
                                    dict.push(s.clone());
                                    seen.insert(s.clone(), c);
                                    c
                                }
                            };
                            codes.push(code);
                        }
                        _ => codes.push(0),
                    }
                }
                ColumnData::Str { dict, codes }
            }
        };
        (Column { data, validity }, saw_lineage)
    }
}

/// A selection vector: ascending row ordinals that passed a kernel. The
/// columnar discipline is that scan/filter kernels *append here* instead of
/// copying rows; rows are gathered once, at the consumer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelVec {
    idx: Vec<u32>,
}

impl SelVec {
    /// Empty selection.
    pub fn new() -> SelVec {
        SelVec::default()
    }

    /// Empty selection with room for `n` entries.
    pub fn with_capacity(n: usize) -> SelVec {
        SelVec {
            idx: Vec::with_capacity(n),
        }
    }

    /// Append row ordinal `i` (checked conversion; batches are bounded to
    /// `u32::MAX` rows by [`Batch::from_rows`]).
    pub fn push(&mut self, i: usize) {
        self.idx.push(checked_u32(i));
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Selected ordinal at position `k`.
    pub fn get(&self, k: usize) -> usize {
        self.idx[k] as usize
    }

    /// Iterate selected ordinals as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.idx.iter().map(|&i| i as usize)
    }

    /// The raw ordinal slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.idx
    }
}

/// Checked `usize → u32` ordinal conversion. Batch construction bounds row
/// counts to `u32::MAX` ([`Batch::from_rows`]) and dictionaries never hold
/// more codes than rows, so a wider value is unreachable; it trips the
/// debug assertion in tests and saturates in release — this sits on the
/// operator hot path, where aborting the process is never acceptable (the
/// columnar kernels never use bare `as` casts on indices).
pub(crate) fn checked_u32(i: usize) -> u32 {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "columnar ordinal {i} exceeds u32 range"
    );
    u32::try_from(i).unwrap_or(u32::MAX)
}

/// One mini-batch of tuples in columnar (SoA) layout: per-column typed
/// vectors plus the per-row multiplicities of the bag semantics
/// (Appendix A).
#[derive(Clone, Debug)]
pub struct Batch {
    pub(crate) schema: Schema,
    pub(crate) columns: Vec<Column>,
    pub(crate) mults: Vec<f64>,
    pub(crate) len: usize,
}

impl Batch {
    /// The batch's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All columns, schema-ordered.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Per-row multiplicities.
    pub fn mults(&self) -> &[f64] {
        &self.mults
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_count() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_set(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert!(!b.get(130), "out of range reads unset");
        assert_eq!(b.count_set(), 3);
        assert!(!b.all_set());
    }

    #[test]
    fn from_cells_strict_typing() {
        let ints = [Value::Int(1), Value::Null, Value::Int(3)];
        let (col, lineage) = Column::from_cells(ints.iter());
        assert!(!lineage);
        assert!(matches!(col.data, ColumnData::I64(_)));
        assert!(col.is_valid(0) && !col.is_valid(1) && col.is_valid(2));
        assert_eq!(col.cell_value(1), Value::Null);
        assert_eq!(col.cell_value(2), Value::Int(3));
    }

    #[test]
    fn from_cells_mixed_numeric_falls_back_to_val() {
        let mixed = [Value::Int(1), Value::Float(2.0)];
        let (col, lineage) = Column::from_cells(mixed.iter());
        assert!(!lineage);
        assert!(matches!(col.data, ColumnData::Val(_)));
        // Round trip stays value-exact: Int never becomes Float.
        assert_eq!(col.cell_value(0), Value::Int(1));
        assert_eq!(col.cell_value(1), Value::Float(2.0));
    }

    #[test]
    fn from_cells_dictionary_dedups_in_first_occurrence_order() {
        let cells = [
            Value::str("b"),
            Value::str("a"),
            Value::str("b"),
            Value::Null,
        ];
        let (col, _) = Column::from_cells(cells.iter());
        match &col.data {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(dict[0].as_ref(), "b");
                assert_eq!(dict[1].as_ref(), "a");
                assert_eq!(codes[..3], [0, 1, 0]);
            }
            other => panic!("expected dictionary column, got {other:?}"),
        }
        assert_eq!(col.cell_value(3), Value::Null);
    }

    #[test]
    fn from_cells_reports_lineage() {
        let cells = [
            Value::Int(1),
            Value::Ref(crate::AggRef {
                agg: 0,
                column: 0,
                key: Arc::from(Vec::new()),
            }),
        ];
        let (col, lineage) = Column::from_cells(cells.iter());
        assert!(lineage);
        assert!(matches!(col.data, ColumnData::Val(_)));
    }

    #[test]
    fn selvec_roundtrip() {
        let mut s = SelVec::new();
        s.push(0);
        s.push(7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 7]);
        assert_eq!(s.as_slice(), &[0u32, 7]);
    }
}
