//! # iolap-relation
//!
//! Data model substrate for the iOLAP reproduction: dynamically typed
//! values, schemas, bag relations with *real-valued* tuple multiplicities
//! (paper Appendix A), a catalog of named tables, and the mini-batch
//! partitioner of the paper's §2/§7 execution model.
//!
//! Everything downstream — the batch engine, the iOLAP incremental engine,
//! and the HDA/OLA baselines — shares this representation, which is what
//! makes the Theorem-1 equivalence tests (incremental result == batch result
//! on the accumulated prefix) possible to state exactly.

#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod columnar;
pub mod kernels;
pub mod relation;
pub mod schema;
pub mod value;

pub use batch::{BatchedRelation, PartitionMode, SamplingProgress};
pub use catalog::{Catalog, CatalogError};
pub use columnar::{Batch, Bitmap, Column, ColumnData, SelVec};
pub use relation::{row_approx_bytes, Relation, Row};
pub use schema::{Field, Schema, SchemaError};
pub use value::{AggRef, DataType, PendingCell, Value};
