//! Aggregate fold kernels: one row's contribution to all bootstrap trials
//! in a single tight loop.
//!
//! The aggregate operator keeps per-(group, call) trial state as flat `f64`
//! vectors `a`/`b` (one slot per Poisson trial). These kernels fold one
//! row's argument into *every* trial slot at once: `a[t] += m·w[t]·x`,
//! `b[t] += m·w[t]` — the §4.2 sketch update piggybacking all bootstrap
//! resamples on one pass. The float additions happen in the same order as
//! the scalar reference (ascending trial index, rows in input order), so
//! kernel and reference produce bit-identical state.

use crate::columnar::SelVec;
use crate::value::Value;

/// COUNT fold, unweighted row (no bootstrap weights attached): every trial
/// gains the row's multiplicity.
#[inline]
pub fn fold_count_uniform(a: &mut [f64], w: f64) {
    for t in a.iter_mut() {
        *t += w;
    }
}

/// COUNT fold with per-trial Poisson weights: `a[t] += m·w[t]`.
#[inline]
pub fn fold_count_weighted(a: &mut [f64], m: f64, ws: &[f64]) {
    for (t, w) in a.iter_mut().zip(ws.iter()) {
        *t += m * w;
    }
}

/// SUM/AVG fold, unweighted row: `a[t] += w·x`, `b[t] += w`.
#[inline]
pub fn fold_sum_uniform(a: &mut [f64], b: &mut [f64], x: f64, w: f64) {
    for (ta, tb) in a.iter_mut().zip(b.iter_mut()) {
        *ta += w * x;
        *tb += w;
    }
}

/// SUM/AVG fold with per-trial Poisson weights: `a[t] += m·w[t]·x`,
/// `b[t] += m·w[t]`.
#[inline]
pub fn fold_sum_weighted(a: &mut [f64], b: &mut [f64], x: f64, m: f64, ws: &[f64]) {
    for ((ta, tb), w) in a.iter_mut().zip(b.iter_mut()).zip(ws.iter()) {
        *ta += m * w * x;
        *tb += m * w;
    }
}

/// Gather one aggregate-argument column for a whole mini-batch: append to
/// `sel` the ordinals of rows that participate in the trial fold and to
/// `xs` their numeric argument (position-aligned with `sel`).
///
/// Participation matches the scalar fold exactly: NULL cells never fold;
/// non-numeric cells fold only for COUNT (`count_kind`, where the argument
/// value is irrelevant and recorded as `0.0`).
///
/// Returns `false` — without touching group state, and with `xs`/`sel`
/// contents unspecified — when a lineage cell (`Ref`/`Pending`) appears:
/// those need resolver access, so the caller must fall back to the
/// row-at-a-time fold for the whole chunk.
pub fn gather_numeric<'a>(
    cells: impl Iterator<Item = &'a Value>,
    count_kind: bool,
    xs: &mut Vec<f64>,
    sel: &mut SelVec,
) -> bool {
    for (i, v) in cells.enumerate() {
        if matches!(v, Value::Ref(_) | Value::Pending(_)) {
            return false;
        }
        let x = v.as_f64();
        if v.is_null() || (x.is_none() && !count_kind) {
            continue;
        }
        xs.push(x.unwrap_or(0.0));
        sel.push(i);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggRef;
    use std::sync::Arc;

    #[test]
    fn fold_kernels_match_scalar_reference() {
        let ws = [2.0, 0.0, 1.0];
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [0.5, 0.5, 0.5];
        fold_sum_weighted(&mut a, &mut b, 10.0, 3.0, &ws);
        assert_eq!(a, [1.0 + 3.0 * 2.0 * 10.0, 2.0, 3.0 + 3.0 * 10.0]);
        assert_eq!(b, [0.5 + 6.0, 0.5, 0.5 + 3.0]);
        let mut c = [0.0, 0.0, 0.0];
        fold_count_weighted(&mut c, 2.0, &ws);
        assert_eq!(c, [4.0, 0.0, 2.0]);
        fold_count_uniform(&mut c, 1.5);
        assert_eq!(c, [5.5, 1.5, 3.5]);
        let mut a2 = [0.0; 2];
        let mut b2 = [0.0; 2];
        fold_sum_uniform(&mut a2, &mut b2, 4.0, 0.5);
        assert_eq!(a2, [2.0, 2.0]);
        assert_eq!(b2, [0.5, 0.5]);
    }

    #[test]
    fn gather_skips_nulls_and_nonnumeric_per_kind() {
        let cells = [
            Value::Int(1),
            Value::Null,
            Value::str("x"),
            Value::Float(2.5),
        ];
        let mut xs = Vec::new();
        let mut sel = SelVec::new();
        assert!(gather_numeric(cells.iter(), false, &mut xs, &mut sel));
        assert_eq!(xs, vec![1.0, 2.5]);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 3]);
        // COUNT keeps the non-numeric string row (value irrelevant).
        xs.clear();
        let mut sel = SelVec::new();
        assert!(gather_numeric(cells.iter(), true, &mut xs, &mut sel));
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(xs, vec![1.0, 0.0, 2.5]);
    }

    #[test]
    fn gather_aborts_on_lineage() {
        let cells = [
            Value::Int(1),
            Value::Ref(AggRef {
                agg: 0,
                column: 0,
                key: Arc::from(Vec::new()),
            }),
        ];
        let mut xs = Vec::new();
        let mut sel = SelVec::new();
        assert!(!gather_numeric(cells.iter(), true, &mut xs, &mut sel));
    }
}
