//! Comparison kernels: column ϑ literal → selection vector.
//!
//! Each kernel appends the ordinals of passing rows to a [`SelVec`]. NULL
//! (invalid) cells never pass — the engine's `compare` yields `false` for
//! NULL on either side — and incomparable variant pairs (e.g. string column
//! vs numeric literal) pass nothing, exactly like
//! [`Value::compare`](crate::Value::compare) returning `None`.

use crate::columnar::{Column, ColumnData, SelVec};
use crate::value::Value;
use std::cmp::Ordering;

/// Comparison operator kind, mirroring the engine's `CmpOp` (the relation
/// crate sits below the engine, so the kernels carry their own copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpKind {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpKind {
    /// Whether an ordering outcome satisfies this operator — the same
    /// truth table as the engine's `compare`.
    #[inline]
    pub fn accepts(self, ord: Ordering) -> bool {
        match self {
            CmpKind::Eq => ord == Ordering::Equal,
            CmpKind::Ne => ord != Ordering::Equal,
            CmpKind::Lt => ord == Ordering::Less,
            CmpKind::Le => ord != Ordering::Greater,
            CmpKind::Gt => ord == Ordering::Greater,
            CmpKind::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped: `lit ϑ col ⇔ col mirror(ϑ)
    /// lit`.
    pub fn mirror(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Eq,
            CmpKind::Ne => CmpKind::Ne,
            CmpKind::Lt => CmpKind::Gt,
            CmpKind::Le => CmpKind::Ge,
            CmpKind::Gt => CmpKind::Lt,
            CmpKind::Ge => CmpKind::Le,
        }
    }
}

/// `column ϑ numeric-literal`. Uses `f64::total_cmp` with `Int → f64`
/// coercion, exactly like `Value::compare`'s numeric branch (NaN literals
/// included). Bool/Str columns pass nothing (incomparable).
pub fn filter_cmp_f64(col: &Column, op: CmpKind, lit: f64, sel: &mut SelVec) {
    match &col.data {
        ColumnData::I64(vals) => match &col.validity {
            None => {
                for (i, &x) in vals.iter().enumerate() {
                    if op.accepts((x as f64).total_cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
            Some(valid) => {
                for (i, &x) in vals.iter().enumerate() {
                    if valid.get(i) && op.accepts((x as f64).total_cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
        },
        ColumnData::F64(vals) => match &col.validity {
            None => {
                for (i, &x) in vals.iter().enumerate() {
                    if op.accepts(x.total_cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
            Some(valid) => {
                for (i, &x) in vals.iter().enumerate() {
                    if valid.get(i) && op.accepts(x.total_cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
        },
        ColumnData::Val(vals) => {
            for (i, v) in vals.iter().enumerate() {
                if let Some(x) = v.as_f64() {
                    if op.accepts(x.total_cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
        }
        ColumnData::Bool(_) | ColumnData::Str { .. } => {}
    }
}

/// `column ϑ string-literal`. Dictionary columns decide acceptance once per
/// distinct string, then scan codes — the dictionary-heavy fast path.
pub fn filter_cmp_str(col: &Column, op: CmpKind, lit: &str, sel: &mut SelVec) {
    match &col.data {
        ColumnData::Str { dict, codes } => {
            let accept: Vec<bool> = dict.iter().map(|s| op.accepts((**s).cmp(lit))).collect();
            match &col.validity {
                None => {
                    for (i, &c) in codes.iter().enumerate() {
                        if accept[c as usize] {
                            sel.push(i);
                        }
                    }
                }
                Some(valid) => {
                    for (i, &c) in codes.iter().enumerate() {
                        if valid.get(i) && accept[c as usize] {
                            sel.push(i);
                        }
                    }
                }
            }
        }
        ColumnData::Val(vals) => {
            for (i, v) in vals.iter().enumerate() {
                if let Some(s) = v.as_str() {
                    if op.accepts(s.cmp(lit)) {
                        sel.push(i);
                    }
                }
            }
        }
        ColumnData::I64(_) | ColumnData::F64(_) | ColumnData::Bool(_) => {}
    }
}

/// `column ϑ bool-literal`.
pub fn filter_cmp_bool(col: &Column, op: CmpKind, lit: bool, sel: &mut SelVec) {
    match &col.data {
        ColumnData::Bool(vals) => match &col.validity {
            None => {
                for (i, &x) in vals.iter().enumerate() {
                    if op.accepts(x.cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
            Some(valid) => {
                for (i, &x) in vals.iter().enumerate() {
                    if valid.get(i) && op.accepts(x.cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
        },
        ColumnData::Val(vals) => {
            for (i, v) in vals.iter().enumerate() {
                if let Some(x) = v.as_bool() {
                    if op.accepts(x.cmp(&lit)) {
                        sel.push(i);
                    }
                }
            }
        }
        ColumnData::I64(_) | ColumnData::F64(_) | ColumnData::Str { .. } => {}
    }
}

/// Dispatch on the literal's variant. Returns `false` (kernel did not run,
/// caller must fall back to row-at-a-time evaluation) for lineage-cell
/// literals, which would need resolver access. A `NULL` literal is handled:
/// it selects nothing, matching `compare`'s NULL rule.
pub fn filter_cmp_value(col: &Column, op: CmpKind, lit: &Value, sel: &mut SelVec) -> bool {
    match lit {
        Value::Int(i) => {
            filter_cmp_f64(col, op, *i as f64, sel);
            true
        }
        Value::Float(f) => {
            filter_cmp_f64(col, op, *f, sel);
            true
        }
        Value::Str(s) => {
            filter_cmp_str(col, op, s, sel);
            true
        }
        Value::Bool(b) => {
            filter_cmp_bool(col, op, *b, sel);
            true
        }
        Value::Null => true,
        Value::Ref(_) | Value::Pending(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::Column;

    fn sel_of(col: &Column, op: CmpKind, lit: &Value) -> Vec<usize> {
        let mut sel = SelVec::new();
        assert!(filter_cmp_value(col, op, lit, &mut sel));
        sel.iter().collect()
    }

    #[test]
    fn numeric_filter_with_nulls() {
        let cells = [Value::Int(1), Value::Null, Value::Int(5), Value::Int(3)];
        let (col, _) = Column::from_cells(cells.iter());
        assert_eq!(sel_of(&col, CmpKind::Gt, &Value::Int(2)), vec![2, 3]);
        assert_eq!(sel_of(&col, CmpKind::Le, &Value::Float(3.0)), vec![0, 3]);
        assert_eq!(sel_of(&col, CmpKind::Eq, &Value::Int(5)), vec![2]);
    }

    #[test]
    fn null_literal_selects_nothing() {
        let cells = [Value::Int(1), Value::Int(2)];
        let (col, _) = Column::from_cells(cells.iter());
        assert!(sel_of(&col, CmpKind::Eq, &Value::Null).is_empty());
    }

    #[test]
    fn string_dictionary_filter() {
        let cells = [
            Value::str("med box"),
            Value::str("jumbo"),
            Value::str("med box"),
            Value::Null,
        ];
        let (col, _) = Column::from_cells(cells.iter());
        assert_eq!(
            sel_of(&col, CmpKind::Eq, &Value::str("med box")),
            vec![0, 2]
        );
        assert_eq!(sel_of(&col, CmpKind::Ne, &Value::str("med box")), vec![1]);
        assert_eq!(sel_of(&col, CmpKind::Lt, &Value::str("n")), vec![0, 1, 2]);
    }

    #[test]
    fn incomparable_variants_select_nothing() {
        let cells = [Value::str("a"), Value::str("b")];
        let (col, _) = Column::from_cells(cells.iter());
        assert!(sel_of(&col, CmpKind::Gt, &Value::Int(0)).is_empty());
        let cells = [Value::Bool(true)];
        let (col, _) = Column::from_cells(cells.iter());
        assert!(sel_of(&col, CmpKind::Eq, &Value::Int(1)).is_empty());
        assert_eq!(sel_of(&col, CmpKind::Eq, &Value::Bool(true)), vec![0]);
    }

    #[test]
    fn mirror_swaps_operands() {
        assert!(CmpKind::Lt.mirror().accepts(Ordering::Greater));
        assert!(CmpKind::Ge.mirror().accepts(Ordering::Less));
        assert!(CmpKind::Eq.mirror().accepts(Ordering::Equal));
    }
}
