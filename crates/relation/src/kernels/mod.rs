//! Vectorized kernels over columnar data.
//!
//! Kernels follow two disciplines, enforced by srclint rule **L007**:
//!
//! * They never clone per-row [`Value`](crate::Value)s in their loops —
//!   cells are read through the typed accessors on
//!   [`Column`](crate::columnar::Column), and results are *selection
//!   vectors* ([`SelVec`](crate::columnar::SelVec)) or plain `f64` slices,
//!   never materialized row copies.
//! * Materialization happens only at the facade boundary
//!   ([`facade`]: `Batch::from_rows`/`to_rows`), which is the one audited
//!   L007 exception (`scripts/lint-allow.txt`).
//!
//! Exactness contract: every kernel reproduces the row-at-a-time reference
//! semantics bit-for-bit — [`filter`] matches
//! [`Value::compare`](crate::Value::compare) under the engine's
//! NULL-is-false predicate rule, and [`fold`] performs float additions in
//! the same row order as the scalar aggregate fold. Property tests in
//! `crates/relation/tests/prop_columnar.rs` pin both claims against
//! randomized batches.

pub mod facade;
pub mod filter;
pub mod fold;
