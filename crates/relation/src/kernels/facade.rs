//! Row ⇄ columnar facade: the one place where batches materialize rows.
//!
//! `Batch::from_rows`/`to_rows` keep the row-oriented `Relation` API as a
//! compatibility layer so operators can migrate to columnar execution
//! incrementally. Conversion is value-exact in both directions (strict
//! column typing — see [`crate::columnar`]), which the
//! `partition round-trip` property test pins.
//!
//! This module is the audited exception to lint L007 (no per-row `Value`
//! cloning in `kernels/`): materialization is its entire job.

use crate::columnar::{checked_u32, Batch, Column};
use crate::relation::{Relation, Row};
use crate::schema::Schema;

impl Batch {
    /// Build a columnar batch from rows. Each column independently picks
    /// the strictest typed representation (see
    /// [`Column::from_cells`]); row multiplicities are carried alongside.
    pub fn from_rows(schema: Schema, rows: &[Row]) -> Batch {
        // Bound the ordinal domain up front so every kernel's u32 selection
        // index is a checked conversion, not a wrapping cast.
        let _ = checked_u32(rows.len());
        let columns: Vec<Column> = (0..schema.len())
            .map(|j| Column::from_cells(rows.iter().map(|r| &r.values[j])).0)
            .collect();
        let mults: Vec<f64> = rows.iter().map(|r| r.mult).collect();
        Batch {
            schema,
            columns,
            mults,
            len: rows.len(),
        }
    }

    /// Build a columnar batch from a whole relation.
    pub fn from_relation(rel: &Relation) -> Batch {
        Batch::from_rows(rel.schema().clone(), rel.rows())
    }

    /// Materialize every row. Exact inverse of [`Batch::from_rows`].
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len)
            .map(|i| Row {
                values: self
                    .columns
                    .iter()
                    .map(|c| c.cell_value(i))
                    .collect::<Vec<_>>()
                    .into(),
                mult: self.mults[i],
            })
            .collect()
    }

    /// Materialize back into a relation.
    pub fn to_relation(&self) -> Relation {
        Relation::new(self.schema.clone(), self.to_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    #[test]
    fn row_round_trip_is_value_exact() {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rows = vec![
            Row::with_mult(vec![Value::Int(1), Value::Float(1.5), Value::str("a")], 2.0),
            Row::with_mult(vec![Value::Null, Value::Float(f64::NAN), Value::Null], 0.5),
            Row::new(vec![Value::Int(-7), Value::Null, Value::str("a")]),
        ];
        let batch = Batch::from_rows(schema, &rows);
        assert_eq!(batch.len(), 3);
        let back = batch.to_rows();
        assert_eq!(back.len(), rows.len());
        for (orig, got) in rows.iter().zip(back.iter()) {
            assert_eq!(orig.values, got.values);
            assert_eq!(orig.mult.to_bits(), got.mult.to_bits());
        }
    }

    #[test]
    fn relation_round_trip() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rel = Relation::from_values(schema, vec![vec![Value::Int(3)], vec![Value::Null]]);
        let back = Batch::from_relation(&rel).to_relation();
        assert_eq!(rel.rows(), back.rows());
    }
}
