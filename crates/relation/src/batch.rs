//! Mini-batch partitioning of input relations (paper §2, §7).
//!
//! Given a query over a dataset `D`, iOLAP randomly partitions `D` into `p`
//! mini-batches `ΔD_1 … ΔD_p` and processes them one at a time. Statistical
//! guarantees require each batch to be a random subset of the whole dataset:
//!
//! * **Block-wise randomness** (default): rows are grouped into fixed-size
//!   blocks and the *blocks* are randomly assigned to batches — matching the
//!   paper's default, which randomizes at HDFS-block granularity.
//! * **Row shuffle** (the paper's "data pre-processing tool"): a full
//!   Fisher–Yates shuffle of the rows before partitioning, for datasets whose
//!   attributes correlate with storage order.

use crate::relation::{Relation, Row};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How rows are randomized before being split into batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionMode {
    /// Shuffle fixed-size blocks of rows (the default block-wise randomness).
    BlockShuffle {
        /// Rows per block.
        block_rows: usize,
    },
    /// Shuffle individual rows (the pre-processing tool).
    #[default]
    RowShuffle,
    /// Keep input order (only sound if the data is already random; used in
    /// tests for determinism).
    Sequential,
    /// Stratified shuffle on a key column (the §9 extension the paper
    /// mentions: "can be extended to incorporate stratified sampling"):
    /// rows are shuffled within each stratum and dealt round-robin across
    /// batches, so every batch carries a near-proportional sample of every
    /// stratum. Rare groups then appear from the first batch onward, which
    /// stabilizes their running aggregates and variation ranges.
    StratifiedShuffle {
        /// Index of the stratification column.
        column: usize,
    },
}

/// A partition of one input relation into mini-batches, together with the
/// bookkeeping needed for result scaling.
#[derive(Clone, Debug)]
pub struct BatchedRelation {
    batches: Vec<Relation>,
    total_rows: usize,
}

impl BatchedRelation {
    /// Partition `rel` into at most `num_batches` mini-batches using
    /// `mode`, deterministically seeded by `seed`.
    ///
    /// Every row of `rel` lands in exactly one batch; batch sizes differ by
    /// at most one block (or one row for `RowShuffle`). When `rel` has
    /// fewer rows than `num_batches`, the batch count is clamped to the row
    /// count (no empty batches are fabricated) — check `num_batches()` for
    /// the count actually produced. A `num_batches` of zero is treated as
    /// one; callers that consider it an error should validate before
    /// partitioning (the iOLAP driver reports it as a setup error).
    pub fn partition(rel: &Relation, num_batches: usize, seed: u64, mode: PartitionMode) -> Self {
        let num_batches = num_batches.max(1);
        let mut rows: Vec<Row> = rel.rows().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        match mode {
            PartitionMode::RowShuffle => rows.shuffle(&mut rng),
            PartitionMode::BlockShuffle { block_rows } => {
                let block_rows = block_rows.max(1);
                let mut blocks: Vec<Vec<Row>> =
                    rows.chunks(block_rows).map(|c| c.to_vec()).collect();
                blocks.shuffle(&mut rng);
                rows = blocks.into_iter().flatten().collect();
            }
            PartitionMode::Sequential => {}
            PartitionMode::StratifiedShuffle { column } => {
                // Group rows by stratum (stable order of first appearance)
                // and shuffle within each stratum. Then interleave the
                // strata by assigning the j-th row of an n_k-row stratum
                // the fractional position (j + ½)/n_k and merging by
                // position — every contiguous chunk of the result holds a
                // near-proportional share of every stratum.
                let mut strata: Vec<(crate::value::Value, Vec<Row>)> = Vec::new();
                for row in rows.drain(..) {
                    let key = row.values[column].clone();
                    match strata.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => v.push(row),
                        None => strata.push((key, vec![row])),
                    }
                }
                let mut positioned: Vec<(f64, usize, Row)> = Vec::new();
                for (k, (_, v)) in strata.iter_mut().enumerate() {
                    v.shuffle(&mut rng);
                    let n = v.len() as f64;
                    for (j, row) in v.drain(..).enumerate() {
                        positioned.push(((j as f64 + 0.5) / n, k, row));
                    }
                }
                positioned.sort_by(|(a, ka, _), (b, kb, _)| a.total_cmp(b).then(ka.cmp(kb)));
                rows = positioned.into_iter().map(|(_, _, r)| r).collect();
            }
        }
        let total_rows = rows.len();
        // Balanced split into exactly `min(num_batches, total_rows)`
        // batches (fixed-size chunking can silently produce fewer): every
        // batch holds `total/n` or `total/n + 1` rows, so per-batch scales
        // and fractions never divide over an empty prefix, and
        // `num_batches()` reports the count actually produced. The one
        // exception is an empty input relation, which keeps a single empty
        // batch so the stream still has a well-formed shape.
        let n = num_batches.min(total_rows.max(1));
        let base = total_rows / n;
        let rem = total_rows % n;
        let mut it = rows.into_iter();
        let batches: Vec<Relation> = (0..n)
            .map(|i| {
                let take = base + usize::from(i < rem);
                Relation::new(rel.schema().clone(), it.by_ref().take(take).collect())
            })
            .collect();
        BatchedRelation {
            batches,
            total_rows,
        }
    }

    /// Partition by target batch size in rows.
    pub fn partition_by_size(
        rel: &Relation,
        batch_rows: usize,
        seed: u64,
        mode: PartitionMode,
    ) -> Self {
        let n = rel.len().max(1);
        let num = n.div_ceil(batch_rows.max(1));
        Self::partition(rel, num.max(1), seed, mode)
    }

    /// Append `rel` as one new mini-batch at the end of the stream
    /// (continuous ingest: rows that arrived after partitioning).
    ///
    /// The appended rows join the totals, so `scale_after` of *earlier*
    /// prefixes grows — exactly the paper's multiplicity semantics: a
    /// tuple seen in the first `i` batches now stands for more unseen
    /// data. `scale_after(last)` stays 1.0 once the new batch is
    /// processed, so Theorem-1 exactness of the final answer is
    /// preserved. An empty `rel` is accepted but callers normally reject
    /// it earlier (an empty mini-batch carries no information).
    pub fn push_batch(&mut self, rel: Relation) {
        self.total_rows += rel.len();
        self.batches.push(rel);
    }

    /// Number of batches `p`.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Batch `i` (0-based).
    pub fn batch(&self, i: usize) -> &Relation {
        &self.batches[i]
    }

    /// All batches.
    pub fn batches(&self) -> &[Relation] {
        &self.batches
    }

    /// Total row count `|D|`.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Rows seen through batch `i` inclusive (0-based): `|D_i|`.
    pub fn rows_through(&self, i: usize) -> usize {
        self.batches[..=i].iter().map(|b| b.len()).sum()
    }

    /// Scaling multiplicity `m_i = |D| / |D_i|` after batch `i` (0-based),
    /// per §2. Seeing a tuple in `D_i` is "roughly equivalent to seeing it
    /// `m_i` times in `D`".
    pub fn scale_after(&self, i: usize) -> f64 {
        let seen = self.rows_through(i);
        if seen == 0 {
            1.0
        } else {
            self.total_rows as f64 / seen as f64
        }
    }

    /// The union `D_i` of the first `i+1` batches, used by comparison
    /// baselines and equivalence tests.
    pub fn union_through(&self, i: usize) -> Relation {
        let schema = self.batches[0].schema().clone();
        let mut rows = Vec::with_capacity(self.rows_through(i));
        for b in &self.batches[..=i] {
            rows.extend(b.rows().iter().cloned());
        }
        Relation::new(schema, rows)
    }
}

/// The accumulated sampling function `s(t; i)` of §4.1, tracked per input
/// relation: `s(t; i) = 1` iff tuple `t` has been processed in the first `i`
/// batches. Monotone in `i`, which is what lets scans clear `u#` on tuples
/// once seen.
#[derive(Clone, Debug, Default)]
pub struct SamplingProgress {
    seen_rows: usize,
    total_rows: usize,
}

impl SamplingProgress {
    /// Start tracking a stream of `total_rows` rows.
    pub fn new(total_rows: usize) -> Self {
        SamplingProgress {
            seen_rows: 0,
            total_rows,
        }
    }

    /// Record a processed batch of `n` rows.
    pub fn advance(&mut self, n: usize) {
        self.seen_rows += n;
        debug_assert!(self.seen_rows <= self.total_rows);
    }

    /// Rows seen so far.
    pub fn seen(&self) -> usize {
        self.seen_rows
    }

    /// True once the whole relation has been streamed (no remaining tuple
    /// uncertainty at the scan).
    pub fn complete(&self) -> bool {
        self.seen_rows >= self.total_rows
    }

    /// Fraction of data seen.
    pub fn fraction(&self) -> f64 {
        if self.total_rows == 0 {
            1.0
        } else {
            self.seen_rows as f64 / self.total_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn int_rel(n: usize) -> Relation {
        Relation::from_values(
            Schema::from_pairs(&[("v", DataType::Int)]),
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let rel = int_rel(103);
        let b = BatchedRelation::partition(&rel, 7, 42, PartitionMode::RowShuffle);
        assert_eq!(b.num_batches(), 7);
        let mut seen: Vec<i64> = b
            .batches()
            .iter()
            .flat_map(|r| r.rows().iter().map(|t| t.values[0].as_i64().unwrap()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn partition_deterministic_by_seed() {
        let rel = int_rel(50);
        let a = BatchedRelation::partition(&rel, 5, 1, PartitionMode::RowShuffle);
        let b = BatchedRelation::partition(&rel, 5, 1, PartitionMode::RowShuffle);
        for i in 0..5 {
            assert!(a.batch(i).approx_eq(b.batch(i), 0.0));
        }
        let c = BatchedRelation::partition(&rel, 5, 2, PartitionMode::RowShuffle);
        let same = (0..5).all(|i| a.batch(i).approx_eq(c.batch(i), 0.0));
        assert!(!same, "different seeds should shuffle differently");
    }

    #[test]
    fn block_shuffle_keeps_blocks_contiguous() {
        let rel = int_rel(40);
        let b =
            BatchedRelation::partition(&rel, 4, 7, PartitionMode::BlockShuffle { block_rows: 10 });
        // Each batch of 10 rows must be one original block: consecutive ids.
        for i in 0..4 {
            let vals: Vec<i64> = b
                .batch(i)
                .rows()
                .iter()
                .map(|t| t.values[0].as_i64().unwrap())
                .collect();
            assert_eq!(vals.len(), 10);
            for w in vals.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn scale_after_matches_definition() {
        let rel = int_rel(100);
        let b = BatchedRelation::partition(&rel, 4, 0, PartitionMode::Sequential);
        assert!((b.scale_after(0) - 4.0).abs() < 1e-12);
        assert!((b.scale_after(1) - 2.0).abs() < 1e-12);
        assert!((b.scale_after(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_through_accumulates() {
        let rel = int_rel(30);
        let b = BatchedRelation::partition(&rel, 3, 0, PartitionMode::Sequential);
        assert_eq!(b.union_through(0).len(), 10);
        assert_eq!(b.union_through(2).len(), 30);
    }

    #[test]
    fn more_batches_than_rows_clamps() {
        let rel = int_rel(3);
        let b = BatchedRelation::partition(&rel, 5, 0, PartitionMode::RowShuffle);
        // Clamped to the row count: no empty batches are fabricated, so
        // every per-batch scale divides over a non-empty prefix.
        assert_eq!(b.num_batches(), 3);
        assert_eq!(b.total_rows(), 3);
        assert!(b.batches().iter().all(|r| r.len() == 1));
        for i in 0..b.num_batches() {
            assert!(b.scale_after(i).is_finite());
            assert!(b.scale_after(i) >= 1.0);
        }
    }

    #[test]
    fn zero_batches_clamps_to_one() {
        let rel = int_rel(4);
        let b = BatchedRelation::partition(&rel, 0, 0, PartitionMode::Sequential);
        assert_eq!(b.num_batches(), 1);
        assert_eq!(b.batch(0).len(), 4);
        assert!((b.scale_after(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_keeps_one_empty_batch() {
        let rel = int_rel(0);
        let b = BatchedRelation::partition(&rel, 4, 0, PartitionMode::RowShuffle);
        assert_eq!(b.num_batches(), 1);
        assert_eq!(b.total_rows(), 0);
        assert_eq!(b.batch(0).len(), 0);
        // Empty-prefix guard: scale stays 1.0 instead of dividing by zero.
        assert!((b.scale_after(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_shuffle_balances_strata() {
        // 90 rows in 3 strata of different sizes; each batch must hold a
        // near-proportional share of every stratum.
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]);
        let mut rows = Vec::new();
        for (stratum, count) in [(0i64, 60usize), (1, 24), (2, 6)] {
            for i in 0..count {
                rows.push(vec![Value::Int(stratum), Value::Int(i as i64)]);
            }
        }
        let rel = Relation::from_values(schema, rows);
        let parts =
            BatchedRelation::partition(&rel, 6, 9, PartitionMode::StratifiedShuffle { column: 0 });
        for i in 0..6 {
            let mut counts = [0usize; 3];
            for row in parts.batch(i).rows() {
                // Checked conversion: a negative or out-of-range stratum id
                // must fail the test with a message, not wrap into a bogus
                // index.
                let stratum = row.values[0]
                    .as_i64()
                    .and_then(|v| usize::try_from(v).ok())
                    .filter(|&s| s < counts.len())
                    .expect("stratum column must be a small non-negative Int");
                counts[stratum] += 1;
            }
            // Proportional shares would be 10/4/1 per batch of 15.
            assert!((8..=12).contains(&counts[0]), "batch {i}: {counts:?}");
            assert!((2..=6).contains(&counts[1]), "batch {i}: {counts:?}");
            assert!(counts[2] >= 1, "batch {i}: {counts:?}");
        }
    }

    #[test]
    fn stratified_shuffle_is_a_permutation() {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]);
        let rows = (0..50)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
            .collect();
        let rel = Relation::from_values(schema, rows);
        let parts =
            BatchedRelation::partition(&rel, 5, 3, PartitionMode::StratifiedShuffle { column: 0 });
        let mut seen: Vec<i64> = parts
            .batches()
            .iter()
            .flat_map(|b| b.rows().iter().map(|r| r.values[1].as_i64().unwrap()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn push_batch_extends_stream_and_rescales() {
        let rel = int_rel(30);
        let mut b = BatchedRelation::partition(&rel, 3, 0, PartitionMode::Sequential);
        assert!((b.scale_after(2) - 1.0).abs() < 1e-12);
        b.push_batch(int_rel(10));
        assert_eq!(b.num_batches(), 4);
        assert_eq!(b.total_rows(), 40);
        // Earlier prefixes now stand for more unseen data…
        assert!((b.scale_after(2) - 40.0 / 30.0).abs() < 1e-12);
        // …and the full stream is exact again once the append is consumed.
        assert!((b.scale_after(3) - 1.0).abs() < 1e-12);
        assert_eq!(b.union_through(3).len(), 40);
    }

    #[test]
    fn sampling_progress_monotone() {
        let mut s = SamplingProgress::new(10);
        assert!(!s.complete());
        s.advance(4);
        assert_eq!(s.seen(), 4);
        assert!((s.fraction() - 0.4).abs() < 1e-12);
        s.advance(6);
        assert!(s.complete());
    }
}
