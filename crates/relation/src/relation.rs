//! Multiset relations with real-valued tuple multiplicities.
//!
//! Following the paper's Appendix A, a relation maps tuples to *real-valued*
//! multiplicities: `R : U-Tup → ℝ`. Real (not integer) multiplicities are
//! what lets iOLAP express (a) the `m_i = |D|/|D_i|` scaling of partial
//! results (§2) and (b) Poissonized bootstrap trials, where each trial
//! reweights tuples by Poisson(1) draws.

use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One stored row: a tuple of values plus its multiplicity.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// The tuple's attribute values, aligned with the relation's schema.
    pub values: Arc<[Value]>,
    /// Real-valued multiplicity (Appendix A). `1.0` for ordinary tuples.
    pub mult: f64,
}

impl Row {
    /// Row with multiplicity 1.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
            mult: 1.0,
        }
    }

    /// Row with an explicit multiplicity.
    pub fn with_mult(values: Vec<Value>, mult: f64) -> Self {
        Row {
            values: values.into(),
            mult,
        }
    }

    /// Value at column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Project a subset of columns into a new owned key, used for join and
    /// group-by keys.
    pub fn key(&self, cols: &[usize]) -> Arc<[Value]> {
        cols.iter()
            .map(|&c| self.values[c].clone())
            .collect::<Vec<_>>()
            .into()
    }
}

/// A bag relation: a schema plus rows with multiplicities.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Relation from rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.values.len() == schema.len()),
            "row arity must match schema"
        );
        Relation { schema, rows }
    }

    /// Relation from plain value vectors, each with multiplicity 1.
    pub fn from_values(schema: Schema, tuples: Vec<Vec<Value>>) -> Self {
        let rows = tuples.into_iter().map(Row::new).collect();
        Relation::new(schema, rows)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to rows (used by shufflers and executors).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of stored rows (not the multiplicity-weighted cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no stored rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Multiplicity-weighted cardinality: `Σ_t R(t)`.
    pub fn cardinality(&self) -> f64 {
        self.rows.iter().map(|r| r.mult).sum()
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.values.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Canonicalize the bag: merge duplicate tuples by summing
    /// multiplicities, drop zero-multiplicity tuples, and sort rows. Two
    /// relations are bag-equal iff their normalizations are equal. Used by
    /// the Theorem-1 equivalence tests.
    pub fn normalize(&self) -> Relation {
        let mut acc: HashMap<Arc<[Value]>, f64> = HashMap::new();
        for row in &self.rows {
            *acc.entry(row.values.clone()).or_insert(0.0) += row.mult;
        }
        let mut rows: Vec<Row> = acc
            .into_iter()
            .filter(|(_, m)| m.abs() > 1e-9)
            .map(|(values, mult)| Row { values, mult })
            .collect();
        rows.sort_by(|a, b| {
            for (x, y) in a.values.iter().zip(b.values.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Approximate bag equality after normalization: same tuples, with
    /// multiplicities and float attributes equal within `tol` (relative for
    /// large magnitudes). Used for comparing incremental vs. batch results.
    pub fn approx_eq(&self, other: &Relation, tol: f64) -> bool {
        let a = self.normalize();
        let b = other.normalize();
        if a.rows.len() != b.rows.len() {
            return false;
        }
        a.rows
            .iter()
            .zip(b.rows.iter())
            .all(|(x, y)| rows_approx_eq(x, y, tol))
    }

    /// Rough in-memory footprint in bytes, for the paper's state-size
    /// experiments (Fig 9(b), 10(c)).
    pub fn approx_bytes(&self) -> usize {
        self.rows.iter().map(row_approx_bytes).sum()
    }
}

/// Rough per-row footprint in bytes (used for state accounting).
pub fn row_approx_bytes(row: &Row) -> usize {
    std::mem::size_of::<Row>()
        + row
            .values
            .iter()
            .map(|v| std::mem::size_of::<Value>() + v.approx_heap_bytes())
            .sum::<usize>()
}

fn rows_approx_eq(a: &Row, b: &Row, tol: f64) -> bool {
    if !float_close(a.mult, b.mult, tol) || a.values.len() != b.values.len() {
        return false;
    }
    a.values
        .iter()
        .zip(b.values.iter())
        .all(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(fx), Some(fy)) => float_close(fx, fy, tol),
            _ => x == y,
        })
}

fn float_close(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|fl| fl.qualified_name())
            .collect();
        writeln!(f, "{} | #", names.join(" | "))?;
        for row in &self.rows {
            let vals: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{} | {}", vals.join(" | "), row.mult)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn rel(tuples: Vec<Vec<Value>>) -> Relation {
        Relation::from_values(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]),
            tuples,
        )
    }

    #[test]
    fn cardinality_weights_multiplicity() {
        let mut r = rel(vec![vec![1.into(), 2.0.into()]]);
        r.push(Row::with_mult(vec![2.into(), 3.0.into()], 2.5));
        assert!((r.cardinality() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_merges_duplicates() {
        let r = rel(vec![
            vec![1.into(), 2.0.into()],
            vec![1.into(), 2.0.into()],
            vec![2.into(), 9.0.into()],
        ]);
        let n = r.normalize();
        assert_eq!(n.len(), 2);
        let first = &n.rows()[0];
        assert_eq!(first.values[0], Value::Int(1));
        assert!((first.mult - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_drops_zero_multiplicity() {
        let mut r = rel(vec![]);
        r.push(Row::with_mult(vec![1.into(), 1.0.into()], 1.0));
        r.push(Row::with_mult(vec![1.into(), 1.0.into()], -1.0));
        assert_eq!(r.normalize().len(), 0);
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let a = rel(vec![vec![1.into(), 1.0.into()]]);
        let b = rel(vec![vec![1.into(), (1.0 + 1e-12).into()]]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = rel(vec![vec![1.into(), 1.1.into()]]);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn approx_eq_order_insensitive() {
        let a = rel(vec![vec![1.into(), 1.0.into()], vec![2.into(), 2.0.into()]]);
        let b = rel(vec![vec![2.into(), 2.0.into()], vec![1.into(), 1.0.into()]]);
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn row_key_projects() {
        let row = Row::new(vec![1.into(), 2.0.into()]);
        let k = row.key(&[1]);
        assert_eq!(k.as_ref(), &[Value::Float(2.0)]);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let schema = Schema::from_pairs(&[("s", DataType::Str)]);
        let small = Relation::from_values(schema.clone(), vec![vec!["x".into()]]);
        let large = Relation::from_values(schema, vec![vec!["xxxxxxxxxxxxxxxx".into()]]);
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
