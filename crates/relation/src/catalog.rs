//! A named collection of base relations.

use crate::relation::Relation;
use crate::schema::Schema;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A database: table name → relation. Cloning is cheap (tables are shared).
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Relation>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table. Names are case-insensitive.
    pub fn register(&mut self, name: impl Into<String>, rel: Relation) {
        self.tables
            .insert(name.into().to_ascii_lowercase(), Arc::new(rel));
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, CatalogError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Schema of a table.
    pub fn schema(&self, name: &str) -> Result<Schema, CatalogError> {
        Ok(self.get(name)?.schema().clone())
    }

    /// True if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// All registered table names (unsorted).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

/// Catalog lookup errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// Referenced table does not exist.
    UnknownTable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register(
            "Sessions",
            Relation::empty(Schema::from_pairs(&[("x", DataType::Int)])),
        );
        assert!(c.contains("sessions"));
        assert!(c.get("SESSIONS").is_ok());
        assert_eq!(c.schema("sessions").unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        let c = Catalog::new();
        assert_eq!(
            c.get("nope").unwrap_err(),
            CatalogError::UnknownTable("nope".into())
        );
    }
}
