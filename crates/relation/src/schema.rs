//! Schemas: ordered lists of (optionally qualified) named, typed columns.

use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Table qualifier, e.g. `sessions` in `sessions.play_time`. Derived
    /// columns (projections, aggregates) have no qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: None,
            name: name.into(),
            data_type,
        }
    }

    /// Qualified field.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            data_type,
        }
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether a reference `[qualifier.]name` resolves to this field.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered, immutable collection of fields. Cheap to clone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: fields.into(),
        }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve `[qualifier.]name` to a column index.
    ///
    /// Returns `Err(SchemaError::Ambiguous)` when an unqualified name matches
    /// more than one column (can happen after joins).
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SchemaError> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(SchemaError::Ambiguous(name.to_string()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| SchemaError::NotFound(format_ref(qualifier, name)))
    }

    /// Like [`Schema::index_of`] but panics with a readable message; for
    /// internal plan construction where the column is known to exist.
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(None, name)
            .unwrap_or_else(|e| panic!("column lookup failed: {e}"))
    }

    /// Concatenate two schemas (join output), requalifying nothing.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.to_vec();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// A copy of this schema with every field re-qualified as `alias`.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::qualified(alias, f.name.clone(), f.data_type))
                .collect(),
        )
    }
}

fn format_ref(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// Schema resolution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// No column with this name.
    NotFound(String),
    /// Multiple columns matched an unqualified name.
    Ambiguous(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NotFound(n) => write!(f, "column `{n}` not found"),
            SchemaError::Ambiguous(n) => write!(f, "column reference `{n}` is ambiguous"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions() -> Schema {
        Schema::new(vec![
            Field::qualified("sessions", "session_id", DataType::Int),
            Field::qualified("sessions", "buffer_time", DataType::Float),
            Field::qualified("sessions", "play_time", DataType::Float),
        ])
    }

    #[test]
    fn lookup_unqualified() {
        let s = sessions();
        assert_eq!(s.index_of(None, "buffer_time"), Ok(1));
    }

    #[test]
    fn lookup_qualified() {
        let s = sessions();
        assert_eq!(s.index_of(Some("sessions"), "play_time"), Ok(2));
        assert!(matches!(
            s.index_of(Some("other"), "play_time"),
            Err(SchemaError::NotFound(_))
        ));
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = sessions();
        assert_eq!(s.index_of(None, "BUFFER_TIME"), Ok(1));
        assert_eq!(s.index_of(Some("SESSIONS"), "session_id"), Ok(0));
    }

    #[test]
    fn ambiguous_after_join() {
        let joined = sessions().join(&sessions());
        assert!(matches!(
            joined.index_of(None, "session_id"),
            Err(SchemaError::Ambiguous(_))
        ));
        // Qualified lookups still resolve the left-most occurrence only when
        // qualifiers differ; here both sides are `sessions` so it stays
        // ambiguous.
        assert!(matches!(
            joined.index_of(Some("sessions"), "session_id"),
            Err(SchemaError::Ambiguous(_))
        ));
    }

    #[test]
    fn with_qualifier_requalifies() {
        let s = sessions().with_qualifier("s2");
        assert_eq!(s.index_of(Some("s2"), "buffer_time"), Ok(1));
    }

    #[test]
    fn join_concatenates() {
        let left = Schema::from_pairs(&[("a", DataType::Int)]);
        let right = Schema::from_pairs(&[("b", DataType::Str)]);
        let j = left.join(&right);
        assert_eq!(j.len(), 2);
        assert_eq!(j.field(1).name, "b");
    }
}
