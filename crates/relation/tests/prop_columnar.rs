//! Property tests pinning the columnar kernels to their row-at-a-time
//! references, and the row ⇄ batch facade round-trip.
//!
//! The kernels' contract is *bit-identical* agreement with the scalar path:
//! filter selections must match `Value::compare` row by row, fold kernels
//! must reproduce the scalar trial-state updates to the last ulp (same float
//! expression, same accumulation order), and `Batch::from_rows`/`to_rows`
//! must be value-exact — including NaN floats, NULLs, and lineage cells.

use iolap_relation::kernels::filter::{filter_cmp_value, CmpKind};
use iolap_relation::kernels::fold::{
    fold_count_uniform, fold_count_weighted, fold_sum_uniform, fold_sum_weighted, gather_numeric,
};
use iolap_relation::{
    AggRef, Batch, BatchedRelation, Column, DataType, PartitionMode, Relation, Row, Schema, SelVec,
    Value,
};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [CmpKind; 6] = [
    CmpKind::Eq,
    CmpKind::Ne,
    CmpKind::Lt,
    CmpKind::Le,
    CmpKind::Gt,
    CmpKind::Ge,
];

const STRINGS: [&str; 4] = ["med box", "jumbo", "wrap", ""];

/// One non-lineage cell: NULL, int, float (NaN included), bool, or a string
/// from a small alphabet (so dictionary columns stay dictionary-heavy).
fn cell() -> BoxedStrategy<Value> {
    prop_oneof![
        2 => Just(Value::Null),
        4 => (-6i64..6).prop_map(Value::Int),
        4 => (-4.0f64..4.0).prop_map(Value::Float),
        1 => Just(Value::Float(f64::NAN)),
        2 => any::<bool>().prop_map(Value::Bool),
        4 => (0usize..4).prop_map(|i| Value::str(STRINGS[i])),
    ]
    .boxed()
}

/// A whole column worth of cells. Biased toward homogeneous columns so the
/// typed representations (I64/F64/Bool/Str-dictionary, with and without
/// validity bitmaps) are exercised often, with a mixed arm for the `Val`
/// fallback. Lengths include 0 (empty batch) and all-null columns occur
/// naturally.
fn column_cells() -> BoxedStrategy<Vec<Value>> {
    let null = || Just(Value::Null).boxed();
    let ints = prop::collection::vec(
        prop_oneof![1 => null(), 5 => (-6i64..6).prop_map(Value::Int).boxed()],
        0..40,
    );
    let floats = prop::collection::vec(
        prop_oneof![
            1 => null(),
            4 => (-4.0f64..4.0).prop_map(Value::Float).boxed(),
            1 => Just(Value::Float(f64::NAN)).boxed(),
        ],
        0..40,
    );
    let bools = prop::collection::vec(
        prop_oneof![1 => null(), 5 => any::<bool>().prop_map(Value::Bool).boxed()],
        0..40,
    );
    let strs = prop::collection::vec(
        prop_oneof![1 => null(), 5 => (0usize..4).prop_map(|i| Value::str(STRINGS[i])).boxed()],
        0..40,
    );
    let mixed = prop::collection::vec(cell(), 0..40);
    prop_oneof![ints, floats, bools, strs, mixed].boxed()
}

/// A comparison literal, including NULL (selects nothing) and NaN.
fn literal() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (-6i64..6).prop_map(Value::Int),
        (-4.0f64..4.0).prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        any::<bool>().prop_map(Value::Bool),
        (0usize..4).prop_map(|i| Value::str(STRINGS[i])),
    ]
    .boxed()
}

/// Deterministic splitmix64 — per-row bootstrap weights and multiplicities
/// for the fold tests, identical on the kernel and reference sides.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn row_weights(seed: u64, row: usize, trials: usize) -> Vec<f64> {
    (0..trials)
        .map(|t| (mix(seed ^ (row as u64) << 20 ^ t as u64) % 4) as f64)
        .collect()
}

fn row_mult(seed: u64, row: usize) -> f64 {
    (mix(seed ^ 0xabcd ^ row as u64) % 8) as f64 * 0.5
}

proptest! {
    /// The filter kernel selects exactly the rows where the row-at-a-time
    /// reference — `Value::compare` plus the operator truth table — accepts,
    /// across typed columns, validity bitmaps, the mixed-`Val` fallback,
    /// NULL/NaN literals, empty inputs, and incomparable variant pairs
    /// (which must select nothing on both sides).
    #[test]
    fn filter_kernel_matches_value_compare(
        cells in column_cells(),
        op_i in 0usize..6,
        lit in literal(),
    ) {
        let op = OPS[op_i];
        let (col, saw_lineage) = Column::from_cells(cells.iter());
        prop_assert!(!saw_lineage);
        let mut sel = SelVec::new();
        prop_assert!(filter_cmp_value(&col, op, &lit, &mut sel));
        let expect: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, v)| v.compare(&lit).map(|o| op.accepts(o)).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(sel.iter().collect::<Vec<_>>(), expect);
    }

    /// Gather + fold kernels reproduce the scalar per-row trial update
    /// *bitwise*: same participation rule (NULLs never fold, non-numeric
    /// folds only for COUNT), same float expression, same accumulation
    /// order. Covers both the Poisson-weighted and uniform fold kernels.
    #[test]
    fn fold_kernels_bitwise_match_scalar_reference(
        cells in column_cells(),
        count_kind in any::<bool>(),
        trials in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut xs = Vec::new();
        let mut sel = SelVec::new();
        prop_assert!(gather_numeric(cells.iter(), count_kind, &mut xs, &mut sel));
        prop_assert_eq!(xs.len(), sel.len());

        // Kernel side: fold the gathered column, rows in selection order.
        let mut ka = vec![0.0f64; trials];
        let mut kb = vec![0.0f64; trials];
        let mut ua = vec![0.0f64; trials];
        let mut ub = vec![0.0f64; trials];
        for (k, i) in sel.iter().enumerate() {
            let m = row_mult(seed, i);
            let ws = row_weights(seed, i, trials);
            if count_kind {
                fold_count_weighted(&mut ka, m, &ws);
                fold_count_uniform(&mut ua, m);
            } else {
                fold_sum_weighted(&mut ka, &mut kb, xs[k], m, &ws);
                fold_sum_uniform(&mut ua, &mut ub, xs[k], m);
            }
        }

        // Reference side: the scalar fold, row-at-a-time over the original
        // cells, written out with the same expressions the operator uses.
        let mut ra = vec![0.0f64; trials];
        let mut rb = vec![0.0f64; trials];
        let mut va = vec![0.0f64; trials];
        let mut vb = vec![0.0f64; trials];
        for (i, v) in cells.iter().enumerate() {
            let x = v.as_f64();
            if v.is_null() || (x.is_none() && !count_kind) {
                continue;
            }
            let x = x.unwrap_or(0.0);
            let m = row_mult(seed, i);
            let ws = row_weights(seed, i, trials);
            for t in 0..trials {
                if count_kind {
                    ra[t] += m * ws[t];
                    va[t] += m;
                } else {
                    ra[t] += m * ws[t] * x;
                    rb[t] += m * ws[t];
                    va[t] += m * x;
                    vb[t] += m;
                }
            }
        }

        for t in 0..trials {
            prop_assert_eq!(ka[t].to_bits(), ra[t].to_bits());
            prop_assert_eq!(kb[t].to_bits(), rb[t].to_bits());
            prop_assert_eq!(ua[t].to_bits(), va[t].to_bits());
            prop_assert_eq!(ub[t].to_bits(), vb[t].to_bits());
        }
    }

    /// `Batch::from_rows` → `to_rows` is value-exact for every cell variant
    /// — NULLs, NaN floats (bit-compared through `Value`'s `PartialEq`),
    /// lineage refs — and preserves multiplicities bit-for-bit.
    #[test]
    fn batch_round_trip_is_value_exact(
        rows_spec in prop::collection::vec(
            (prop::collection::vec(lineage_cell(), 3usize), 0.0f64..4.0),
            0..40,
        ),
    ) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ]);
        let rows: Vec<Row> = rows_spec
            .iter()
            .map(|(vals, m)| Row::with_mult(vals.clone(), *m))
            .collect();
        let batch = Batch::from_rows(schema, &rows);
        prop_assert_eq!(batch.len(), rows.len());
        let back = batch.to_rows();
        prop_assert_eq!(back.len(), rows.len());
        for (orig, got) in rows.iter().zip(back.iter()) {
            prop_assert_eq!(&orig.values, &got.values);
            prop_assert_eq!(orig.mult.to_bits(), got.mult.to_bits());
        }
    }

    /// Routing every mini-batch of a partitioned relation through the
    /// columnar facade changes nothing: `Batch::from_relation` →
    /// `to_relation` returns each partition's rows exactly, for every
    /// partition mode.
    #[test]
    fn partition_round_trip_through_batch(
        n in 0usize..200,
        batches in 1usize..10,
        seed in any::<u64>(),
        block in 1usize..20,
    ) {
        let schema = Schema::from_pairs(&[("v", DataType::Int), ("s", DataType::Str)]);
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| {
                let s = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::str(STRINGS[(i % 4) as usize])
                };
                vec![Value::Int(i), s]
            })
            .collect();
        let rel = Relation::from_values(schema, rows);
        for mode in [
            PartitionMode::RowShuffle,
            PartitionMode::Sequential,
            PartitionMode::BlockShuffle { block_rows: block },
        ] {
            let parts = BatchedRelation::partition(&rel, batches, seed, mode);
            for part in parts.batches() {
                let back = Batch::from_relation(part).to_relation();
                prop_assert_eq!(part.rows(), back.rows());
            }
        }
    }
}

/// A cell that may also be a lineage ref — only the facade round-trip uses
/// this; the kernel tests stay lineage-free (kernels reject lineage).
fn lineage_cell() -> BoxedStrategy<Value> {
    prop_oneof![
        8 => cell(),
        1 => (0u32..3, 0usize..3).prop_map(|(agg, k)| {
            Value::Ref(AggRef {
                agg,
                column: 0,
                key: Arc::from(vec![Value::Int(k as i64)]),
            })
        }),
    ]
    .boxed()
}
