//! Property-based tests on the relation substrate: bag normalization,
//! mini-batch partitioning, and scaling invariants.

use iolap_relation::{BatchedRelation, PartitionMode, Relation, Row, Schema, Value};
use proptest::prelude::*;

fn int_relation(values: &[i64]) -> Relation {
    Relation::from_values(
        Schema::from_pairs(&[("v", iolap_relation::DataType::Int)]),
        values.iter().map(|&v| vec![Value::Int(v)]).collect(),
    )
}

proptest! {
    /// Every partition mode is a permutation: each input row lands in
    /// exactly one batch, none are lost or duplicated.
    #[test]
    fn partition_is_permutation(
        n in 0usize..300,
        batches in 1usize..12,
        seed in any::<u64>(),
        block in 1usize..20,
    ) {
        let values: Vec<i64> = (0..n as i64).collect();
        let rel = int_relation(&values);
        for mode in [
            PartitionMode::RowShuffle,
            PartitionMode::Sequential,
            PartitionMode::BlockShuffle { block_rows: block },
        ] {
            let parts = BatchedRelation::partition(&rel, batches, seed, mode);
            let mut seen: Vec<i64> = parts
                .batches()
                .iter()
                .flat_map(|b| b.rows().iter().map(|r| r.values[0].as_i64().unwrap()))
                .collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, values.clone());
        }
    }

    /// The scaling multiplicity satisfies m_i · |D_i| == |D| for non-empty
    /// prefixes, and is non-increasing in i.
    #[test]
    fn scale_after_is_consistent(
        n in 1usize..200,
        batches in 1usize..10,
        seed in any::<u64>(),
    ) {
        let values: Vec<i64> = (0..n as i64).collect();
        let rel = int_relation(&values);
        let parts = BatchedRelation::partition(&rel, batches, seed, PartitionMode::RowShuffle);
        let mut prev = f64::INFINITY;
        for i in 0..parts.num_batches() {
            let seen = parts.rows_through(i);
            let m = parts.scale_after(i);
            if seen > 0 {
                prop_assert!((m * seen as f64 - n as f64).abs() < 1e-9);
            }
            prop_assert!(m <= prev + 1e-12);
            prev = m;
        }
        prop_assert!((parts.scale_after(parts.num_batches() - 1) - 1.0).abs() < 1e-12
            || parts.rows_through(parts.num_batches() - 1) == 0);
    }

    /// Normalization is idempotent and merges duplicates: total weighted
    /// cardinality is preserved.
    #[test]
    fn normalize_preserves_cardinality(
        values in prop::collection::vec((0i64..10, 0.0f64..5.0), 0..60),
    ) {
        let schema = Schema::from_pairs(&[("v", iolap_relation::DataType::Int)]);
        let mut rel = Relation::empty(schema);
        for (v, m) in &values {
            rel.push(Row::with_mult(vec![Value::Int(*v)], *m));
        }
        let n1 = rel.normalize();
        prop_assert!((n1.cardinality() - rel.cardinality()).abs() < 1e-6);
        let n2 = n1.normalize();
        prop_assert!(n1.approx_eq(&n2, 1e-9));
        // No duplicate tuples remain.
        let mut seen = std::collections::HashSet::new();
        for row in n1.rows() {
            prop_assert!(seen.insert(row.values.clone()));
        }
    }

    /// `approx_eq` is reflexive and symmetric under row reordering.
    #[test]
    fn approx_eq_reflexive_and_order_free(
        values in prop::collection::vec(0i64..50, 0..40),
        seed in any::<u64>(),
    ) {
        let rel = int_relation(&values);
        prop_assert!(rel.approx_eq(&rel, 0.0));
        let parts = BatchedRelation::partition(
            &rel,
            1,
            seed,
            PartitionMode::RowShuffle,
        );
        let shuffled = parts.union_through(0);
        prop_assert!(rel.approx_eq(&shuffled, 0.0));
        prop_assert!(shuffled.approx_eq(&rel, 0.0));
    }
}
