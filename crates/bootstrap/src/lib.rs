//! # iolap-bootstrap
//!
//! Poissonized bootstrap error estimation for iOLAP (§2 "Error Estimation",
//! §5.1 "Discovering Certainty in Uncertainty"):
//!
//! * [`poisson`] — deterministic per-(seed, row, trial) Poisson(1)
//!   multiplicities, piggybacked onto query execution as extra weights;
//! * [`estimate`] — standard errors, relative standard deviation, and
//!   percentile confidence intervals from trial outputs;
//! * [`range`] — variation ranges `R(u)` with slack `ε`, history, the
//!   integrity check, and failure-recovery bookkeeping;
//! * [`interval`] — interval arithmetic to push ranges through predicate
//!   expressions (`x ϑ y` classification of §5.1).

#![warn(missing_docs)]

pub mod estimate;
pub mod interval;
pub mod poisson;
pub mod range;

pub use estimate::{percentile, ErrorEstimate};
pub use poisson::{block_trial_weights, poisson1, trial_weights, DEFAULT_TRIALS};
pub use range::{summary_of, RangeOutcome, RangeTracker, VariationRange};
