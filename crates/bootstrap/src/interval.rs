//! Interval arithmetic for propagating variation ranges through predicate
//! expressions.
//!
//! §5.1 classifies a tuple at predicate `x ϑ y` by whether `R(x) ∩ R(y)` is
//! empty, where `x` and `y` may be *expressions* over uncertain aggregates
//! (e.g. `0.2 * AVG(l_quantity)` in Q17, or `0.5 * SUM(...)` in Q20).
//! Deterministic operands contribute point intervals (`R(d) = {d}`, §5.1);
//! uncertain aggregate references contribute their tracked variation
//! ranges; arithmetic combines them conservatively.

use crate::range::VariationRange;

/// Interval addition.
pub fn add(a: VariationRange, b: VariationRange) -> VariationRange {
    VariationRange::new(a.lo + b.lo, a.hi + b.hi)
}

/// Interval subtraction.
pub fn sub(a: VariationRange, b: VariationRange) -> VariationRange {
    VariationRange::new(a.lo - b.hi, a.hi - b.lo)
}

/// Interval negation.
pub fn neg(a: VariationRange) -> VariationRange {
    VariationRange::new(-a.hi, -a.lo)
}

/// Interval multiplication (all four corner products).
pub fn mul(a: VariationRange, b: VariationRange) -> VariationRange {
    let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    VariationRange { lo, hi }
}

/// Interval division. When the divisor interval straddles zero the quotient
/// is unbounded (conservative: the tuple stays non-deterministic).
pub fn div(a: VariationRange, b: VariationRange) -> VariationRange {
    if b.contains(0.0) {
        return VariationRange::unbounded();
    }
    mul(a, VariationRange::new(1.0 / b.hi, 1.0 / b.lo))
}

/// Apply a monotone non-decreasing function to an interval (for monotone
/// scalar UDFs like `SQRT`, `LN`, `EXP`).
pub fn map_monotone(a: VariationRange, f: impl Fn(f64) -> f64) -> VariationRange {
    VariationRange::new(f(a.lo), f(a.hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: f64, hi: f64) -> VariationRange {
        VariationRange::new(lo, hi)
    }

    #[test]
    fn add_sub() {
        assert_eq!(add(r(1.0, 2.0), r(10.0, 20.0)), r(11.0, 22.0));
        assert_eq!(sub(r(10.0, 20.0), r(1.0, 2.0)), r(8.0, 19.0));
    }

    #[test]
    fn mul_with_signs() {
        assert_eq!(mul(r(-2.0, 3.0), r(4.0, 5.0)), r(-10.0, 15.0));
        assert_eq!(mul(r(-2.0, -1.0), r(-3.0, -2.0)), r(2.0, 6.0));
    }

    #[test]
    fn mul_by_point_scalar() {
        // Q17-style: 0.2 * AVG range.
        let scaled = mul(VariationRange::point(0.2), r(21.1, 53.9));
        assert!((scaled.lo - 4.22).abs() < 1e-9);
        assert!((scaled.hi - 10.78).abs() < 1e-9);
    }

    #[test]
    fn div_straddling_zero_unbounded() {
        let q = div(r(1.0, 2.0), r(-1.0, 1.0));
        assert!(q.lo.is_infinite() && q.hi.is_infinite());
    }

    #[test]
    fn div_positive() {
        assert_eq!(div(r(10.0, 20.0), r(2.0, 5.0)), r(2.0, 10.0));
    }

    #[test]
    fn neg_flips() {
        assert_eq!(neg(r(1.0, 2.0)), r(-2.0, -1.0));
    }

    #[test]
    fn monotone_map() {
        let s = map_monotone(r(4.0, 9.0), f64::sqrt);
        assert_eq!(s, r(2.0, 3.0));
    }
}
