//! Variation ranges for uncertain attributes (§5.1).
//!
//! For an uncertain attribute `u`, the *variation range* `R(u)` is the set
//! of values `u` may take over the remaining online execution. iOLAP
//! approximates it from the bootstrap outputs `û` at each batch as
//!
//! ```text
//! R(u) = [min(û) − ε·stdev(û),  max(û) + ε·stdev(û)]
//! ```
//!
//! where `ε` is the user-tunable *slack*. Ranges are monotonically shrunk by
//! intersection across batches, and an *integrity check* guards correctness:
//! when a new batch's trial envelope escapes the previous range, the tracker
//! reports a failure and the controller recovers by replaying from the last
//! batch whose range still covers the new envelope (Theorem 1's
//! failure-recover case).

use crate::estimate::ErrorEstimate;

/// `(min, max, stdev)` over the finite entries of `xs`; `None` when nothing
/// is finite.
pub fn summary_of(xs: &[f64]) -> Option<(f64, f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut n = 0.0;
    let mut sum = 0.0;
    for &x in xs {
        if !x.is_finite() {
            continue;
        }
        lo = lo.min(x);
        hi = hi.max(x);
        n += 1.0;
        sum += x;
    }
    if n == 0.0 {
        return None;
    }
    let mean = sum / n;
    let var = xs
        .iter()
        .filter(|x| x.is_finite())
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    Some((lo, hi, var.sqrt()))
}

/// A closed interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariationRange {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl VariationRange {
    /// Construct; swaps ends if reversed.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            VariationRange { lo, hi }
        } else {
            VariationRange { lo: hi, hi: lo }
        }
    }

    /// Degenerate range of a deterministic value (`R(d) = {d}`, §5.1).
    pub fn point(v: f64) -> Self {
        VariationRange { lo: v, hi: v }
    }

    /// The everything range (used before any observation).
    pub fn unbounded() -> Self {
        VariationRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Range of the bootstrap outputs with slack `ε` (§5.1). Non-finite
    /// trial values (empty resamples of small groups produce NULL/NaN
    /// aggregates) are ignored; returns `None` when nothing finite remains.
    pub fn from_trials(trials: &[f64], slack: f64) -> Option<Self> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut n = 0.0;
        let mut sum = 0.0;
        for &t in trials {
            if !t.is_finite() {
                continue;
            }
            lo = lo.min(t);
            hi = hi.max(t);
            n += 1.0;
            sum += t;
        }
        if n == 0.0 {
            return None;
        }
        let mean = sum / n;
        let var = trials
            .iter()
            .filter(|t| t.is_finite())
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        let sd = var.sqrt();
        Some(VariationRange {
            lo: lo - slack * sd,
            hi: hi + slack * sd,
        })
    }

    /// True when `self ∩ other ≠ ∅`.
    pub fn overlaps(&self, other: &VariationRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// True when `other ⊆ self`.
    pub fn covers(&self, other: &VariationRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True when `v ∈ self`.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `self ∩ other`; `None` when disjoint.
    pub fn intersect(&self, other: &VariationRange) -> Option<VariationRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(VariationRange { lo, hi })
        } else {
            None
        }
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Outcome of observing a new batch of bootstrap outputs for one uncertain
/// attribute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RangeOutcome {
    /// Integrity held; the range was tightened (or unchanged).
    Ok,
    /// Integrity failed: the new trial envelope escaped the tracked range.
    /// Recovery must replay from after `replay_from` (0-based batch index;
    /// the state *at the end of* `replay_from` is still valid). A
    /// `replay_from` of `None` means no prior range covers the new envelope
    /// — replay from scratch.
    Failure {
        /// Last batch whose range covers the new envelope.
        replay_from: Option<usize>,
    },
}

/// Tracks the variation range of one uncertain attribute across batches.
#[derive(Clone, Debug)]
pub struct RangeTracker {
    slack: f64,
    /// `(batch, range in effect after that batch)`, in batch order. Batches
    /// are global indices — an attribute first observed at batch 5 has no
    /// earlier entries.
    history: Vec<(usize, VariationRange)>,
}

impl RangeTracker {
    /// New tracker with slack `ε`.
    pub fn new(slack: f64) -> Self {
        RangeTracker {
            slack,
            history: Vec::new(),
        }
    }

    /// The slack parameter.
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Current range, if any batch has been observed.
    pub fn current(&self) -> Option<&VariationRange> {
        self.history.last().map(|(_, r)| r)
    }

    /// Number of observed batches.
    pub fn batches(&self) -> usize {
        self.history.len()
    }

    /// Observe the bootstrap outputs of batch 0 onwards, without global
    /// batch bookkeeping (tests, simple uses): batches are numbered by
    /// observation count.
    pub fn observe(&mut self, trials: &[f64]) -> RangeOutcome {
        let next = self.history.last().map(|(b, _)| b + 1).unwrap_or(0);
        self.observe_at(trials, next)
    }

    /// Observe the bootstrap outputs of global batch `batch`. Implements
    /// the §5.1 update-and-check procedure; `replay_from` in a failure
    /// outcome is a global batch index.
    pub fn observe_at(&mut self, trials: &[f64], batch: usize) -> RangeOutcome {
        match summary_of(trials) {
            Some((lo, hi, sd)) => self.observe_summary(lo, hi, sd, batch),
            None => {
                // No finite observations: adopt/keep the unbounded range.
                if self.history.is_empty() {
                    self.history.push((batch, VariationRange::unbounded()));
                }
                RangeOutcome::Ok
            }
        }
    }

    /// Observe a batch given only the envelope `[lo, hi]` and standard
    /// deviation of the (possibly rescaled) bootstrap outputs. Exactly
    /// equivalent to [`RangeTracker::observe_at`] — the §5.1 rule only ever
    /// reads min/max/stdev — and O(1), which lets the aggregate registry
    /// refresh untouched groups after a scale change without rebuilding
    /// trial vectors.
    pub fn observe_summary(&mut self, lo: f64, hi: f64, sd: f64, batch: usize) -> RangeOutcome {
        let fresh = VariationRange::new(lo - self.slack * sd, hi + self.slack * sd);
        match self.history.last().map(|(_, r)| *r) {
            None => {
                self.history.push((batch, fresh));
                RangeOutcome::Ok
            }
            Some(prev) => {
                // Integrity: the raw trial envelope must sit inside the
                // previous range.
                let envelope = VariationRange::new(lo, hi);
                if prev.covers(&envelope) {
                    let merged = fresh.intersect(&prev).unwrap_or(fresh);
                    self.history.push((batch, merged));
                    RangeOutcome::Ok
                } else {
                    // Trace up the history: last batch j with fresh ⊆ R_j.
                    let replay_from = self
                        .history
                        .iter()
                        .rev()
                        .find(|(_, r)| r.covers(&fresh))
                        .map(|(b, _)| *b);
                    // Reset history to the recovery point and adopt the
                    // fresh range for the replayed suffix.
                    match replay_from {
                        Some(j) => self.history.retain(|(b, _)| *b <= j),
                        None => self.history.clear(),
                    }
                    self.history.push((batch, fresh));
                    RangeOutcome::Failure { replay_from }
                }
            }
        }
    }

    /// Observe an [`ErrorEstimate`]'s trials through its raw values — see
    /// [`RangeTracker::observe`].
    pub fn observe_estimate(&mut self, est: &ErrorEstimate, trials: &[f64]) -> RangeOutcome {
        debug_assert!(est.std_error >= 0.0);
        self.observe(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_from_trials_has_slack() {
        let trials = [10.0, 12.0, 14.0];
        let r0 = VariationRange::from_trials(&trials, 0.0).unwrap();
        assert_eq!(r0, VariationRange::new(10.0, 14.0));
        let r2 = VariationRange::from_trials(&trials, 2.0).unwrap();
        assert!(r2.lo < 10.0 && r2.hi > 14.0);
        assert!(r2.covers(&r0));
    }

    #[test]
    fn overlap_and_cover() {
        let a = VariationRange::new(0.0, 10.0);
        let b = VariationRange::new(5.0, 15.0);
        let c = VariationRange::new(11.0, 12.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.covers(&VariationRange::new(1.0, 9.0)));
        assert!(!a.covers(&b));
    }

    #[test]
    fn point_range_of_deterministic_value() {
        let p = VariationRange::point(58.0);
        assert!(p.contains(58.0));
        assert_eq!(p.width(), 0.0);
        // Example 2 of the paper: buffer_time 58 vs R = [21.1, 53.9]:
        // disjoint ⇒ t2 is near-deterministic (always selected).
        assert!(!p.overlaps(&VariationRange::new(21.1, 53.9)));
    }

    #[test]
    fn tracker_shrinks_by_intersection() {
        let mut t = RangeTracker::new(1.0);
        assert_eq!(t.observe(&[30.0, 40.0]), RangeOutcome::Ok);
        let r1 = *t.current().unwrap();
        assert_eq!(t.observe(&[33.0, 38.0]), RangeOutcome::Ok);
        let r2 = *t.current().unwrap();
        assert!(r1.covers(&r2));
        assert!(r2.width() <= r1.width());
    }

    #[test]
    fn tracker_detects_failure_and_recovers() {
        let mut t = RangeTracker::new(0.0); // zero slack → fragile
        assert_eq!(t.observe(&[10.0, 11.0]), RangeOutcome::Ok);
        // Envelope [20, 21] escapes [10, 11] → failure; no earlier range
        // covers it, so replay from scratch.
        match t.observe(&[20.0, 21.0]) {
            RangeOutcome::Failure { replay_from } => assert_eq!(replay_from, None),
            other => panic!("expected failure, got {other:?}"),
        }
        // Tracker adopted the fresh range and keeps working.
        assert_eq!(t.observe(&[20.5, 20.8]), RangeOutcome::Ok);
    }

    #[test]
    fn tracker_recovers_to_intermediate_batch() {
        let mut t = RangeTracker::new(0.0);
        t.observe(&[0.0, 100.0]); // batch 0: wide
        t.observe(&[40.0, 50.0]); // batch 1: narrow
                                  // Batch 2 envelope [60, 70] escapes batch 1's range but fits batch
                                  // 0's → replay from after batch 0.
        match t.observe(&[60.0, 70.0]) {
            RangeOutcome::Failure { replay_from } => assert_eq!(replay_from, Some(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn larger_slack_fails_less() {
        // Trials hover around the true value 50 with varying spread, as a
        // converging running aggregate does. Zero slack makes the envelope
        // escape the intersected range; slack 2 absorbs the noise (§8.4:
        // "setting a slightly bigger slack can significantly reduce the
        // probability of failure-recovery").
        let center = [50.8, 49.2, 50.5, 49.5, 50.4, 49.6, 50.3, 49.8];
        let noise = [3.0, 2.8, 2.5, 2.2, 2.0, 1.8, 1.5, 1.2];
        let seqs: Vec<Vec<f64>> = center
            .iter()
            .zip(noise.iter())
            .map(|(c, n)| vec![c - n, *c, c + n])
            .collect();
        let mut fail0 = 0;
        let mut fail2 = 0;
        let mut t0 = RangeTracker::new(0.0);
        let mut t2 = RangeTracker::new(2.0);
        for s in &seqs {
            if matches!(t0.observe(s), RangeOutcome::Failure { .. }) {
                fail0 += 1;
            }
            if matches!(t2.observe(s), RangeOutcome::Failure { .. }) {
                fail2 += 1;
            }
        }
        assert!(fail0 > fail2, "fail0={fail0} fail2={fail2}");
        assert_eq!(fail2, 0);
    }
}
