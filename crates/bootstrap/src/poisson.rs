//! Poissonized bootstrap multiplicities.
//!
//! iOLAP piggybacks bootstrap onto normal query execution (§2, §7 step 2,
//! [8]): after scanning a streamed relation, each tuple is annotated with
//! per-trial multiplicities drawn i.i.d. from Poisson(1). Trial `j` of the
//! query is then the query evaluated with every tuple's weight multiplied by
//! its trial-`j` draw — a resample of the same size in expectation.
//!
//! Draws must be **deterministic per (seed, row, trial)**: delta update
//! re-evaluates saved rows across batches, and a row's trial weights must not
//! change between evaluations, otherwise the bootstrap distributions (and
//! hence variation ranges) would drift incoherently. We therefore derive
//! each draw from a counter-based SplitMix64 stream instead of a shared
//! stateful RNG.

/// Number of bootstrap trials used throughout the paper's experiments.
pub const DEFAULT_TRIALS: usize = 100;

/// SplitMix64 — tiny, high-quality counter-based generator.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `(0, 1]` from a counter.
#[inline]
fn uniform(seed: u64, counter: u64) -> f64 {
    let bits = splitmix64(seed ^ counter.wrapping_mul(0xA24B_AED4_963E_E407));
    // 53 random bits → (0, 1]; avoid exactly 0 for the Knuth product loop.
    (((bits >> 11) + 1) as f64) / ((1u64 << 53) as f64)
}

/// One Poisson(1) draw via Knuth's product method, deterministic in
/// `(seed, row_id, trial)`.
pub fn poisson1(seed: u64, row_id: u64, trial: u32) -> u32 {
    // L = e^{-1}
    const L: f64 = 0.367_879_441_171_442_33;
    let base = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(row_id.wrapping_mul(0xD134_2543_DE82_EF95))
        .wrapping_add((trial as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    let mut k: u32 = 0;
    let mut p: f64 = 1.0;
    loop {
        p *= uniform(base, k as u64);
        if p <= L {
            return k;
        }
        k += 1;
        debug_assert!(k < 64, "runaway Poisson draw");
    }
}

/// Per-trial weights for one row: `trials` Poisson(1) draws as `f64`.
pub fn trial_weights(seed: u64, row_id: u64, trials: usize) -> Vec<f64> {
    (0..trials)
        .map(|t| poisson1(seed, row_id, t as u32) as f64)
        .collect()
}

/// Block kernel: per-trial weights for `rows` consecutive row ids starting at
/// `first_row`, row-major (`result[r * trials + t] == trial_weights(seed,
/// first_row + r, trials)[t]`). One tight loop over the whole mini-batch
/// amortizes per-row allocation and call overhead on the scan hot path; the
/// draws are bit-identical to the per-row path by construction.
pub fn block_trial_weights(seed: u64, first_row: u64, rows: usize, trials: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows * trials);
    for r in 0..rows {
        let row_id = first_row + r as u64;
        for t in 0..trials {
            out.push(poisson1(seed, row_id, t as u32) as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        assert_eq!(poisson1(42, 7, 3), poisson1(42, 7, 3));
        let a = trial_weights(1, 100, 50);
        let b = trial_weights(1, 100, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rows_and_trials_differ() {
        let a = trial_weights(1, 0, 100);
        let b = trial_weights(1, 1, 100);
        assert_ne!(a, b);
        let c = trial_weights(2, 0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn block_weights_match_per_row() {
        let trials = 17;
        let block = block_trial_weights(9, 5, 4, trials);
        assert_eq!(block.len(), 4 * trials);
        for r in 0..4 {
            let per_row = trial_weights(9, 5 + r as u64, trials);
            assert_eq!(&block[r * trials..(r + 1) * trials], per_row.as_slice());
        }
        // Zero-trial and zero-row blocks are empty, not a panic.
        assert!(block_trial_weights(9, 5, 4, 0).is_empty());
        assert!(block_trial_weights(9, 5, 0, 7).is_empty());
    }

    #[test]
    fn poisson1_moments() {
        // Mean and variance of Poisson(1) are both 1.
        let n = 200_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let k = poisson1(7, i, 0) as f64;
            sum += k;
            sumsq += k * k;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn poisson1_distribution_shape() {
        // P(0) = P(1) = e^{-1} ≈ 0.368, P(2) ≈ 0.184.
        let n = 100_000u64;
        let mut counts = [0u64; 8];
        for i in 0..n {
            let k = poisson1(3, i, 5) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        let p0 = counts[0] as f64 / n as f64;
        let p1 = counts[1] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        assert!((p0 - 0.3679).abs() < 0.01, "p0={p0}");
        assert!((p1 - 0.3679).abs() < 0.01, "p1={p1}");
        assert!((p2 - 0.1839).abs() < 0.01, "p2={p2}");
    }
}
