//! Error estimates from bootstrap trial outputs.
//!
//! The collection of per-trial query results forms an empirical distribution
//! of the estimator (§2, "Error Estimation"); from it we report the standard
//! error, relative standard deviation (the y-axis of Figure 7(a)), and
//! percentile confidence intervals.

/// Summary statistics of one uncertain value's bootstrap distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorEstimate {
    /// Point estimate (the actual running result, not the trial mean).
    pub estimate: f64,
    /// Mean of the trial outputs.
    pub trial_mean: f64,
    /// Standard deviation of the trial outputs (the bootstrap standard
    /// error).
    pub std_error: f64,
    /// `std_error / |estimate|`; `f64::INFINITY` when the estimate is 0.
    pub relative_std: f64,
    /// Lower endpoint of the percentile confidence interval.
    pub ci_lo: f64,
    /// Upper endpoint of the percentile confidence interval.
    pub ci_hi: f64,
    /// Confidence level of `[ci_lo, ci_hi]`.
    pub confidence: f64,
}

impl ErrorEstimate {
    /// Build from a point estimate and its trial outputs, with a percentile
    /// CI at `confidence` (e.g. `0.95`).
    ///
    /// Returns `None` when there are no trials (nothing to estimate from).
    pub fn from_trials(estimate: f64, trials: &[f64], confidence: f64) -> Option<ErrorEstimate> {
        if trials.is_empty() {
            return None;
        }
        let n = trials.len() as f64;
        let mean = trials.iter().sum::<f64>() / n;
        let var = trials.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let std_error = var.sqrt();
        let mut sorted = trials.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let alpha = (1.0 - confidence) / 2.0;
        let ci_lo = percentile(&sorted, alpha)?;
        let ci_hi = percentile(&sorted, 1.0 - alpha)?;
        let relative_std = if estimate == 0.0 {
            f64::INFINITY
        } else {
            std_error / estimate.abs()
        };
        Some(ErrorEstimate {
            estimate,
            trial_mean: mean,
            std_error,
            relative_std,
            ci_lo,
            ci_hi,
            confidence,
        })
    }

    /// The half-width of the CI relative to the estimate, a user-facing
    /// "± x%" accuracy figure.
    pub fn relative_ci_halfwidth(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            ((self.ci_hi - self.ci_lo) / 2.0) / self.estimate.abs()
        }
    }
}

/// Linear-interpolated percentile of a sorted slice, `q ∈ [0, 1]`.
///
/// Follows the same degenerate-input policy as the metrics layer's
/// histogram quantile: an empty slice has nothing to estimate from
/// (`None`), and a single observation is returned exactly. The guard also
/// closes an underflow: `sorted.len() - 1` on an empty slice wrapped in
/// release builds and panicked in debug.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    let first = *sorted.first()?;
    if sorted.len() == 1 {
        return Some(first);
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trials_yields_none() {
        assert!(ErrorEstimate::from_trials(1.0, &[], 0.95).is_none());
    }

    #[test]
    fn constant_trials_zero_error() {
        let e = ErrorEstimate::from_trials(5.0, &[5.0; 30], 0.95).unwrap();
        assert_eq!(e.std_error, 0.0);
        assert_eq!(e.relative_std, 0.0);
        assert_eq!(e.ci_lo, 5.0);
        assert_eq!(e.ci_hi, 5.0);
    }

    #[test]
    fn symmetric_trials() {
        let trials: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let e = ErrorEstimate::from_trials(50.0, &trials, 0.9).unwrap();
        assert!((e.trial_mean - 50.0).abs() < 1e-9);
        assert!((e.ci_lo - 5.0).abs() < 1e-9);
        assert!((e.ci_hi - 95.0).abs() < 1e-9);
    }

    #[test]
    fn relative_std_of_zero_estimate() {
        let e = ErrorEstimate::from_trials(0.0, &[1.0, 2.0], 0.95).unwrap();
        assert!(e.relative_std.is_infinite());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert!((percentile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_guards_degenerate_inputs() {
        // Regression: `q * (len - 1)` underflowed on an empty slice.
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[], 0.0), None);
        // A single observation is its own percentile at every q.
        assert_eq!(percentile(&[7.5], 0.0), Some(7.5));
        assert_eq!(percentile(&[7.5], 0.5), Some(7.5));
        assert_eq!(percentile(&[7.5], 1.0), Some(7.5));
    }

    #[test]
    fn single_trial_estimate_is_exact() {
        let e = ErrorEstimate::from_trials(3.0, &[3.5], 0.95).unwrap();
        assert_eq!(e.ci_lo, 3.5);
        assert_eq!(e.ci_hi, 3.5);
        assert_eq!(e.std_error, 0.0);
    }
}
