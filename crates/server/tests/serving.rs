//! Integration tests for the serving layer's nastiest interleavings:
//! admission overflow, cancel racing a §5.1 recovery replay, EDF shedding
//! order, stop policies, and report-buffer backpressure.

use iolap_core::{Fault, FaultKind, FaultPlan, IolapConfig, IolapDriver};
use iolap_engine::plan_sql;
use iolap_server::{AdmitError, Server, ServerConfig, SessionEnd, SessionSpec, StopPolicy};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

/// Build a driver over the Conviva workload at a tiny pinned scale.
fn driver(query: &str, rows: usize, batches: usize, faults: Option<FaultPlan>) -> IolapDriver {
    let catalog = iolap_workloads::conviva_catalog(rows, 17);
    let registry = iolap_workloads::conviva_registry();
    let q = iolap_workloads::conviva_queries()
        .into_iter()
        .find(|q| q.id == query)
        .unwrap();
    let pq = plan_sql(q.sql, &catalog, &registry).unwrap();
    let mut cfg = IolapConfig::with_batches(batches).trials(12).seed(17);
    cfg.partition_mode = iolap_relation::PartitionMode::RowShuffle;
    if let Some(p) = faults {
        cfg = cfg.fault_plan(p);
    }
    IolapDriver::from_plan(&pq, &catalog, q.stream_table, cfg).unwrap()
}

#[test]
fn session_runs_to_completion_and_drains() {
    let server = Server::new(ServerConfig::with_workers(2));
    let h = server
        .submit(driver("C3", 300, 5, None), SessionSpec::named("basic"))
        .unwrap();
    let reports = h.drain(WAIT);
    assert_eq!(reports.len(), 5);
    // Reports arrive in batch order: a session is never scheduled on two
    // workers at once, whatever the pool size.
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.batch, i);
    }
    let s = h.summary();
    assert_eq!(s.state.as_str(), "done");
    assert_eq!(s.end, Some(SessionEnd::Completed));
    assert_eq!(s.batches_run, 5);
    assert!(s.elapsed.is_some());
}

#[test]
fn admission_rejects_explicitly_when_queue_full() {
    let server = Server::new(ServerConfig::with_workers(1).max_live(1).max_queued(1));
    // Pre-built drivers keep the three submits back to back, well inside
    // the first session's runtime.
    let d1 = driver("C2", 800, 10, None);
    let d2 = driver("C2", 800, 10, None);
    let d3 = driver("C2", 800, 10, None);
    let h1 = server.submit(d1, SessionSpec::named("live")).unwrap();
    let h2 = server.submit(d2, SessionSpec::named("queued")).unwrap();
    // Both capacity classes are full: the third submission must come back
    // as an error immediately — never block, never silently enqueue.
    match server.submit(d3, SessionSpec::named("over")) {
        Err(AdmitError::QueueFull { live, queued }) => {
            assert_eq!((live, queued), (1, 1));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(server.stats().rejected, 1);
    h1.cancel();
    h2.cancel();
    assert!(h1.join(WAIT) && h2.join(WAIT));
}

#[test]
fn cancel_during_recovery_replay_terminates_at_batch_boundary() {
    // Arm a forced range failure at batch 2: that batch runs the §5.1
    // checkpoint-restore + replay cascade inside `driver.step()`. The
    // client cancels as soon as it has the batch-1 report, so the cancel
    // flag is raised while the worker is (or is about to be) mid-recovery.
    let plan = FaultPlan {
        seed: 7,
        faults: vec![Fault {
            kind: FaultKind::FailRange {
                agg: None,
                column: None,
            },
            batch: 2,
        }],
    };
    // Solo run of the same seeded driver: the exactness reference.
    let solo = driver("C2", 500, 6, Some(plan.clone()))
        .run_to_completion()
        .unwrap();
    assert!(
        solo.iter().any(|r| r.recovered),
        "fault plan must actually trigger a recovery"
    );

    // A one-report buffer serializes worker and client: the worker parks
    // after each batch until the client pops, so popping batch 1 releases
    // the worker into batch 2 — the recovery batch — and the cancel lands
    // while that replay cascade is (most interleavings) mid-step.
    let server = Server::new(ServerConfig::with_workers(1).report_buffer(1));
    let h = server
        .submit(
            driver("C2", 500, 6, Some(plan)),
            SessionSpec::named("cancel-mid-recovery"),
        )
        .unwrap();
    let mut got = Vec::new();
    while let Some(r) = h.recv_timeout(WAIT) {
        let cancel_now = r.batch == 1;
        got.push(r);
        if cancel_now {
            std::thread::sleep(Duration::from_millis(2));
            h.cancel();
        }
    }
    let s = h.summary();
    assert_eq!(s.end, Some(SessionEnd::Cancelled), "{s:?}");
    assert!(s.state.is_terminal());
    // The in-flight batch (recovery and all) runs to its boundary and its
    // report is still delivered; nothing runs past the cancel after that:
    // 2 reports if the cancel won the race to the batch boundary, 3 if the
    // recovery batch was already mid-step (the interleaving under test).
    assert!(
        got.len() == 2 || got.len() == 3,
        "got {} reports",
        got.len()
    );
    // Every report delivered before the cancel took effect is exactly the
    // solo run's report for that batch — recovery replay included.
    for (i, r) in got.iter().enumerate() {
        assert_eq!(r.batch, solo[i].batch);
        assert_eq!(r.recovered, solo[i].recovered);
        assert_eq!(
            format!("{}", r.result.relation),
            format!("{}", solo[i].result.relation),
            "batch {i} diverged from solo run"
        );
    }
}

#[test]
fn memory_ceiling_sheds_queued_sessions_in_edf_order() {
    // One worker, one live slot, a 1-byte ceiling: the running session
    // breaches the ceiling at its first batch, and each scheduling event
    // sheds exactly one *queued* victim — earliest deadline first, the
    // running session never.
    let server = Server::new(
        ServerConfig::with_workers(1)
            .max_live(1)
            .max_queued(3)
            .memory_ceiling(1),
    );
    // Pre-build every driver so the four submits land microseconds apart —
    // all queued before the running session's first step (over 30 000 rows,
    // tens of milliseconds) ends and fires the first shed event. Memory is
    // recorded at step ends, so no submit-time shed can fire before then,
    // and the three victims are all queued when EDF selection starts.
    let da = driver("C3", 30_000, 6, None);
    let db = driver("C3", 300, 6, None);
    let dc = driver("C3", 300, 6, None);
    let dd = driver("C3", 300, 6, None);
    let a = server.submit(da, SessionSpec::named("running")).unwrap();
    let b = server
        .submit(
            db,
            SessionSpec::named("late-deadline").deadline(Duration::from_secs(500)),
        )
        .unwrap();
    let c = server
        .submit(
            dc,
            SessionSpec::named("early-deadline").deadline(Duration::from_secs(1)),
        )
        .unwrap();
    let d = server
        .submit(dd, SessionSpec::named("no-deadline"))
        .unwrap();
    for h in [&a, &b, &c, &d] {
        assert!(h.join(WAIT), "session wedged: {:?}", h.summary());
    }
    let (sa, sb, sc, sd) = (a.summary(), b.summary(), c.summary(), d.summary());
    // The running session is never shed: it completes all batches.
    assert_eq!(sa.end, Some(SessionEnd::Completed), "{sa:?}");
    for s in [&sb, &sc, &sd] {
        assert_eq!(s.end, Some(SessionEnd::Shed), "{s:?}");
        assert_eq!(s.batches_run, 0);
    }
    // EDF order: earliest deadline first, deadline-less work last.
    let (eb, ec, ed) = (
        sb.end_seq.unwrap(),
        sc.end_seq.unwrap(),
        sd.end_seq.unwrap(),
    );
    assert!(ec < eb && eb < ed, "shed order wrong: c={ec} b={eb} d={ed}");
    assert_eq!(server.stats().shed, 3);
}

#[test]
fn batch_budget_policy_stops_at_exact_count() {
    let server = Server::new(ServerConfig::with_workers(2));
    let h = server
        .submit(
            driver("C3", 300, 6, None),
            SessionSpec::named("budget").policy(StopPolicy::Batches(2)),
        )
        .unwrap();
    let reports = h.drain(WAIT);
    assert_eq!(reports.len(), 2);
    let s = h.summary();
    assert_eq!(s.end, Some(SessionEnd::TargetMet { batches: 2 }));
    assert!(s.stopped_early());
}

#[test]
fn relative_ci_policy_stops_strictly_before_completion() {
    let server = Server::new(ServerConfig::with_workers(2));
    let h = server
        .submit(
            driver("C2", 500, 8, None),
            SessionSpec::named("accuracy").policy(StopPolicy::RelativeCI {
                target: 0.5,
                confidence: 0.95,
            }),
        )
        .unwrap();
    let reports = h.drain(WAIT);
    let s = h.summary();
    assert!(s.stopped_early(), "{s:?}");
    assert!(
        s.batches_run < s.total_batches,
        "stopped at {}/{} — not early",
        s.batches_run,
        s.total_batches
    );
    // The stopping batch actually satisfies the contract.
    let last = reports.last().unwrap();
    let width = last.result.max_relative_ci_halfwidth().unwrap();
    assert!(width <= 0.5, "stopped at half-width {width}");
}

#[test]
fn deadline_policy_stops_at_first_boundary_past_the_deadline() {
    let server = Server::new(ServerConfig::with_workers(1));
    let h = server
        .submit(
            driver("C3", 300, 6, None),
            SessionSpec::named("latency").policy(StopPolicy::Deadline(Duration::ZERO)),
        )
        .unwrap();
    let reports = h.drain(WAIT);
    // A zero deadline is already expired at the first boundary: exactly
    // one batch runs (the one in flight when the deadline passed).
    assert_eq!(reports.len(), 1);
    assert_eq!(h.summary().end, Some(SessionEnd::TargetMet { batches: 1 }));
}

#[test]
fn full_report_buffer_parks_the_session_instead_of_dropping_reports() {
    // A one-report buffer and a deliberately lagging client: the scheduler
    // must park the session when the buffer is full (off the ready queue —
    // no busy spin) and re-ready it on every pop. All reports arrive, in
    // order, none dropped.
    let server = Server::new(ServerConfig::with_workers(2).report_buffer(1));
    let h = server
        .submit(
            driver("C3", 300, 6, None),
            SessionSpec::named("slow-client"),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut got = Vec::new();
    while let Some(r) = h.recv_timeout(WAIT) {
        got.push(r.batch);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(got, (0..6).collect::<Vec<_>>());
    assert_eq!(h.summary().end, Some(SessionEnd::Completed));
}

#[test]
fn priority_zero_preempts_at_batch_boundaries() {
    // One worker: a priority-0 session submitted after a priority-1 session
    // must win every boundary once admitted, so it finishes first even
    // though it started second.
    let server = Server::new(ServerConfig::with_workers(1));
    // The background session is large (tens of ms per batch) so the
    // foreground submit is guaranteed to land while it still has most of
    // its batches ahead of it, even if this thread is preempted.
    let dbg = driver("C3", 30_000, 8, None);
    let dfg = driver("C3", 400, 8, None);
    let bg = server
        .submit(dbg, SessionSpec::named("background").priority(1))
        .unwrap();
    let fg = server
        .submit(dfg, SessionSpec::named("foreground").priority(0))
        .unwrap();
    assert!(fg.join(WAIT) && bg.join(WAIT));
    let (sf, sb) = (fg.summary(), bg.summary());
    assert_eq!(sf.end, Some(SessionEnd::Completed));
    assert_eq!(sb.end, Some(SessionEnd::Completed));
    assert!(
        sf.end_seq.unwrap() < sb.end_seq.unwrap(),
        "priority 0 should finish first: fg={:?} bg={:?}",
        sf.end_seq,
        sb.end_seq
    );
}

#[test]
fn shutdown_refuses_new_sessions() {
    let server = Server::new(ServerConfig::with_workers(1));
    server.shutdown();
    match server.submit(driver("C3", 300, 4, None), SessionSpec::default()) {
        Err(AdmitError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}
