//! Line-protocol tests: the transport-free dispatcher round-trip, and a
//! real TCP socket session (skipped gracefully where the sandbox denies
//! loopback binds).

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::plan_sql;
use iolap_server::tcp::{handle_request, serve, SubmitFactory};
use iolap_server::wire::{parse, JVal};
use iolap_server::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::sync::Arc;
use std::time::Duration;

/// Factory over a pinned Conviva catalog: requests name the query id.
fn factory_sized(rows: usize, batches: usize) -> SubmitFactory {
    let catalog = iolap_workloads::conviva_catalog(rows, 17);
    let registry = iolap_workloads::conviva_registry();
    let queries = iolap_workloads::conviva_queries();
    Arc::new(move |req: &JVal| {
        let id = req
            .get("query")
            .and_then(JVal::as_str)
            .ok_or_else(|| "missing query".to_string())?;
        let q = queries
            .iter()
            .find(|q| q.id == id)
            .ok_or_else(|| format!("unknown query {id}"))?;
        let pq = plan_sql(q.sql, &catalog, &registry).map_err(|e| e.to_string())?;
        let mut cfg = IolapConfig::with_batches(batches).trials(10).seed(17);
        cfg.partition_mode = iolap_relation::PartitionMode::RowShuffle;
        let driver = IolapDriver::from_plan(&pq, &catalog, q.stream_table, cfg)
            .map_err(|e| e.to_string())?;
        Ok((driver, iolap_server::tcp::spec_from_request(req)))
    })
}

fn factory() -> SubmitFactory {
    factory_sized(300, 4)
}

fn field_u64(resp: &JVal, key: &str) -> Option<u64> {
    resp.get(key).and_then(JVal::as_u64)
}

#[test]
fn dispatcher_round_trip_submit_poll_summary_cancel() {
    let server = Server::new(ServerConfig::with_workers(2));
    let f = factory();
    let mut sessions = BTreeMap::new();

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"u1"}"#,
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
    let id = field_u64(&v, "session").unwrap();

    // Poll until the session is done; every response parses and report
    // batches arrive in order.
    let mut batches = Vec::new();
    for _ in 0..200 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":8}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
        if let Some(JVal::Arr(reports)) = v.get("reports") {
            for r in reports {
                batches.push(r.get("batch").and_then(JVal::as_u64).unwrap());
            }
        }
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(batches, vec![0, 1, 2, 3]);

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"summary","session":{id}}}"#),
    );
    let v = parse(&resp).unwrap();
    let summary = v.get("summary").unwrap();
    assert_eq!(summary.get("state").and_then(JVal::as_str), Some("done"));
    assert_eq!(summary.get("end").and_then(JVal::as_str), Some("completed"));
    assert_eq!(field_u64(summary, "batches_run"), Some(4));

    let resp = handle_request(&server, &f, &mut sessions, r#"{"op":"stats"}"#);
    let v = parse(&resp).unwrap();
    assert_eq!(field_u64(v.get("stats").unwrap(), "admitted"), Some(1));
}

#[test]
fn dispatcher_rejects_malformed_and_unknown() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    for (line, kind) in [
        ("{not json", "bad_json"),
        (r#"{"op":"frobnicate"}"#, "bad_request"),
        (r#"{"op":"submit","query":"NOPE"}"#, "bad_request"),
        (r#"{"op":"poll","session":99}"#, "unknown_session"),
    ] {
        let resp = handle_request(&server, &f, &mut sessions, line);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(false), "{resp}");
        assert_eq!(v.get("kind").and_then(JVal::as_str), Some(kind), "{resp}");
    }
}

#[test]
fn dispatcher_reports_queue_full_as_protocol_error() {
    let server = Server::new(ServerConfig::with_workers(1).max_live(1).max_queued(1));
    // Each submit plans its query inline, so the first session must outlast
    // two plan-and-admit round trips: size the workload well past that.
    let f = factory_sized(4000, 24);
    let mut sessions = BTreeMap::new();
    let mut kinds = Vec::new();
    for i in 0..3 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"submit","query":"C2","label":"s{i}"}}"#),
        );
        let v = parse(&resp).unwrap();
        kinds.push(match v.get("ok").and_then(JVal::as_bool) {
            Some(true) => "ok".to_string(),
            _ => v
                .get("kind")
                .and_then(JVal::as_str)
                .unwrap_or("?")
                .to_string(),
        });
    }
    assert_eq!(kinds, vec!["ok", "ok", "queue_full"]);
    // Cancel the admitted sessions so teardown does not wait out 24 batches.
    for id in 0..2 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"cancel","session":{id}}}"#),
        );
        assert!(resp.contains("true"), "{resp}");
    }
}

#[test]
fn tcp_socket_round_trip() {
    // Loopback bind can be denied in sandboxed environments; skip (rather
    // than fail) when it is — the dispatcher tests above cover the
    // protocol itself.
    let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("skipping tcp_socket_round_trip: cannot bind loopback");
        return;
    };
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(ServerConfig::with_workers(2)));
    let f = factory();
    std::thread::spawn(move || serve(listener, server, f));

    let stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut request = |req: &str, line: &mut String| {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(line).unwrap();
        parse(line.trim()).unwrap()
    };

    let v = request(
        r#"{"op":"submit","query":"C3","label":"net","policy":{"kind":"batches","n":2}}"#,
        &mut line,
    );
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true));
    let id = v.get("session").and_then(JVal::as_u64).unwrap();

    let mut got = 0u64;
    for _ in 0..200 {
        let v = request(
            &format!(r#"{{"op":"poll","session":{id},"max":8}}"#),
            &mut line,
        );
        if let Some(JVal::Arr(reports)) = v.get("reports") {
            got += reports.len() as u64;
        }
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // The batches(2) stop policy retired the session after two reports.
    assert_eq!(got, 2);
    let v = request(&format!(r#"{{"op":"summary","session":{id}}}"#), &mut line);
    assert_eq!(
        v.get("summary")
            .and_then(|s| s.get("end"))
            .and_then(JVal::as_str),
        Some("target_met")
    );
}

#[test]
fn poll_with_max_zero_returns_empty_without_consuming() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"z"}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();

    // Let at least one report land, then poll with max:0 twice — both
    // must be ok with an empty report array and leave the buffer intact.
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..2 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":0}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
        match v.get("reports") {
            Some(JVal::Arr(reports)) => assert!(reports.is_empty(), "{resp}"),
            other => panic!("reports: {other:?}"),
        }
    }
    // A real poll still sees batch 0: max:0 consumed nothing.
    let mut first = None;
    for _ in 0..200 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":1}}"#),
        );
        let v = parse(&resp).unwrap();
        if let Some(JVal::Arr(reports)) = v.get("reports") {
            if let Some(r) = reports.first() {
                first = r.get("batch").and_then(JVal::as_u64);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(first, Some(0));
    let _ = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"cancel","session":{id}}}"#),
    );
}

#[test]
fn dispatcher_reports_shutdown_as_protocol_error() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    server.shutdown();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"late"}"#,
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(false), "{resp}");
    assert_eq!(
        v.get("kind").and_then(JVal::as_str),
        Some("shutting_down"),
        "{resp}"
    );
}

#[test]
fn sessions_are_scoped_to_their_connection() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    // Connection A submits; connection B (a different handle table) must
    // not see the session — even cancel is connection-scoped.
    let mut conn_a = BTreeMap::new();
    let mut conn_b = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut conn_a,
        r#"{"op":"submit","query":"C3","label":"a"}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
    for op in ["poll", "summary", "cancel"] {
        let resp = handle_request(
            &server,
            &f,
            &mut conn_b,
            &format!(r#"{{"op":"{op}","session":{id}}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("kind").and_then(JVal::as_str),
            Some("unknown_session"),
            "{op}: {resp}"
        );
    }
    // The owning connection can still cancel it; afterwards the handle is
    // still *known* to A (summaries of finished sessions remain useful).
    let resp = handle_request(
        &server,
        &f,
        &mut conn_a,
        &format!(r#"{{"op":"cancel","session":{id}}}"#),
    );
    assert!(parse(&resp).unwrap().get("ok").and_then(JVal::as_bool) == Some(true));
    let resp = handle_request(
        &server,
        &f,
        &mut conn_a,
        &format!(r#"{{"op":"summary","session":{id}}}"#),
    );
    assert_eq!(
        parse(&resp).unwrap().get("ok").and_then(JVal::as_bool),
        Some(true)
    );
}

#[test]
fn spec_from_request_clamps_batch_policy() {
    use iolap_server::tcp::spec_from_request;
    use iolap_server::StopPolicy;
    let spec = |doc: &str| spec_from_request(&parse(doc).unwrap());

    let s = spec(r#"{"op":"submit","policy":{"kind":"batches","n":4}}"#);
    assert_eq!(s.policy, StopPolicy::Batches(4));
    // 2^53 — largest exactly-representable power region; must not truncate.
    let s = spec(r#"{"op":"submit","policy":{"kind":"batches","n":9007199254740992}}"#);
    assert_eq!(s.policy, StopPolicy::Batches(9007199254740992));
    // 2^64 is out of u64 range → treated as "run to completion", never a
    // silently wrapped small budget.
    let s = spec(r#"{"op":"submit","policy":{"kind":"batches","n":18446744073709551616}}"#);
    assert_eq!(s.policy, StopPolicy::Batches(usize::MAX));
    // Negative and fractional are equally unusable → completion.
    let s = spec(r#"{"op":"submit","policy":{"kind":"batches","n":-3}}"#);
    assert_eq!(s.policy, StopPolicy::Batches(usize::MAX));
    let s = spec(r#"{"op":"submit","policy":{"kind":"batches","n":2.5}}"#);
    assert_eq!(s.policy, StopPolicy::Batches(usize::MAX));
}

/// The tentpole determinism claim at the protocol level: a sharded server
/// publishes byte-identical report lines to an unsharded one.
#[test]
fn sharded_server_reports_are_byte_identical() {
    let drain = |shards: usize| -> Vec<String> {
        let server = Server::new(ServerConfig::with_workers(1).shards(shards));
        let f = factory_sized(2600, 3);
        let mut sessions = BTreeMap::new();
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            r#"{"op":"submit","query":"C2","label":"det"}"#,
        );
        let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
        let mut reports = Vec::new();
        for _ in 0..400 {
            let resp = handle_request(
                &server,
                &f,
                &mut sessions,
                &format!(r#"{{"op":"poll","session":{id},"max":8}}"#),
            );
            let v = parse(&resp).unwrap();
            if let Some(JVal::Arr(rs)) = v.get("reports") {
                // Raw JSON bytes, not parsed floats: byte identity is the
                // contract (elapsed_ms is wall clock — mask it out).
                for r in rs {
                    reports.push(render_report_stable(r));
                }
            }
            if v.get("state").and_then(JVal::as_str) == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        reports
    };
    let baseline = drain(0);
    assert_eq!(baseline.len(), 3, "session must complete");
    for shards in [1, 2, 4] {
        assert_eq!(drain(shards), baseline, "shards={shards}");
    }
}

/// Re-serialize a parsed report with the timing field pinned, preserving
/// every value byte exactly as the wire carried it (floats re-render via
/// the same `num` policy both servers used).
fn render_report_stable(r: &JVal) -> String {
    fn render(v: &JVal, out: &mut String) {
        use std::fmt::Write as _;
        match v {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JVal::Num(n) => out.push_str(&iolap_server::wire::num(*n)),
            JVal::Str(s) => {
                let _ = write!(out, "\"{}\"", iolap_server::wire::escape(s));
            }
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JVal::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", iolap_server::wire::escape(k));
                    render(v, out);
                }
                out.push('}');
            }
        }
    }
    let mut masked = r.clone();
    if let JVal::Obj(members) = &mut masked {
        for (k, v) in members.iter_mut() {
            if k == "elapsed_ms" {
                *v = JVal::Num(0.0);
            }
        }
    }
    let mut out = String::new();
    render(&masked, &mut out);
    out
}

/// The `metrics` op: a Prometheus-style exposition plus the structured
/// telemetry summary, from one consistent snapshot. Canonical mode must
/// strip every wall-clock family so the exposition byte-compares.
#[test]
fn metrics_op_exposes_fleet_state() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"acme","policy":{"kind":"relative_ci","target":0.5}}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
    for _ in 0..200 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":8}}"#),
        );
        let v = parse(&resp).unwrap();
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let resp = handle_request(&server, &f, &mut sessions, r#"{"op":"metrics"}"#);
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
    let full = v.get("exposition").and_then(JVal::as_str).unwrap();
    assert!(full.contains("iolap_sessions_admitted_total 1"), "{full}");
    assert!(full.contains("iolap_slo_ci_sessions_total 1"), "{full}");
    assert!(full.contains("tenant=\"acme\""), "{full}");
    let summary = v.get("summary").unwrap();
    let sess = match summary.get("sessions") {
        Some(JVal::Arr(s)) => s,
        other => panic!("sessions must be an array: {other:?}"),
    };
    assert_eq!(sess.len(), 1);
    assert_eq!(sess[0].get("tenant").and_then(JVal::as_str), Some("acme"));
    assert!(field_u64(&sess[0], "batches").unwrap() >= 1);
    assert!(summary.get("slo").is_some());

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"metrics","canonical":true}"#,
    );
    let v = parse(&resp).unwrap();
    let canon = v.get("exposition").and_then(JVal::as_str).unwrap();
    assert!(
        !canon.contains("_ns\""),
        "canonical kept wall-clock: {canon}"
    );
    assert!(
        !canon.contains(".ns\""),
        "canonical kept wall-clock: {canon}"
    );
    assert!(!canon.contains("mem_bytes"), "{canon}");
    // Canonical mode is a pure filter: the same snapshot, fewer families.
    assert!(canon.len() < full.len());
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SCRATCH: AtomicUsize = AtomicUsize::new(0);
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("iolap-proto-{}-{n}-{name}", std::process::id()))
}

/// Malformed `append` frames are protocol errors, never queued rows; an
/// append naming a table no live session streams is `unknown_table`.
#[test]
fn append_rejects_malformed_frames_and_unknown_tables() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    // No session at all: every table is unknown.
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"append","table":"sessions","rows":[[1,2,3]]}"#,
    );
    let v = parse(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JVal::as_str),
        Some("unknown_table"),
        "{resp}"
    );

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"app"}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
    for (line, kind) in [
        // Structural errors are rejected at the wire, before any routing.
        (r#"{"op":"append","rows":[[1]]}"#, "bad_request"),
        (r#"{"op":"append","table":"sessions"}"#, "bad_request"),
        (
            r#"{"op":"append","table":"sessions","rows":"nope"}"#,
            "bad_request",
        ),
        (
            r#"{"op":"append","table":"sessions","rows":[]}"#,
            "bad_request",
        ),
        (
            r#"{"op":"append","table":"sessions","rows":[1,2]}"#,
            "bad_request",
        ),
        // A well-formed append to a table nobody streams.
        (
            r#"{"op":"append","table":"nonesuch","rows":[[1,2]]}"#,
            "unknown_table",
        ),
    ] {
        let resp = handle_request(&server, &f, &mut sessions, line);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(false), "{resp}");
        assert_eq!(v.get("kind").and_then(JVal::as_str), Some(kind), "{resp}");
    }
    let _ = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"cancel","session":{id}}}"#),
    );
}

/// `resume` without a durable store (or with an id the manifest never
/// admitted) is `unknown_session`; resuming a session whose `'D'` record
/// exists is `session_finished` — there is nothing left to replay.
#[test]
fn resume_distinguishes_unknown_from_finished_sessions() {
    // No durable store at all.
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    let resp = handle_request(&server, &f, &mut sessions, r#"{"op":"resume","session":0}"#);
    let v = parse(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JVal::as_str),
        Some("unknown_session"),
        "{resp}"
    );
    let resp = handle_request(&server, &f, &mut sessions, r#"{"op":"resume"}"#);
    assert_eq!(
        parse(&resp).unwrap().get("kind").and_then(JVal::as_str),
        Some("bad_request"),
        "{resp}"
    );
    drop(server);

    // Run a session to completion under a durable store, then restart.
    let dir = scratch_dir("resume-done");
    let cfg = || ServerConfig::with_workers(1).durable(dir.clone());
    let server = Server::new(cfg());
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"fin"}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
    for _ in 0..400 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":8}}"#),
        );
        if parse(&resp).unwrap().get("state").and_then(JVal::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(server);

    let server = Server::new(cfg());
    let recovered = server.recover(&f);
    assert!(recovered.resumed.is_empty(), "{recovered:?}");
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"resume","session":{id}}}"#),
    );
    let v = parse(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JVal::as_str),
        Some("session_finished"),
        "{resp}"
    );
    assert!(
        v.get("error")
            .and_then(JVal::as_str)
            .is_some_and(|m| m.contains("completed")),
        "{resp}"
    );
    // An id past everything the manifest admitted is still unknown.
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"resume","session":99}"#,
    );
    assert_eq!(
        parse(&resp).unwrap().get("kind").and_then(JVal::as_str),
        Some("unknown_session"),
        "{resp}"
    );
}

/// Streaming append mid-run: the server folds the new rows in as an extra
/// mini-batch, and the resulting report stream is byte-identical (modulo
/// wall clock) to a driver-level run that appends the same rows at the
/// same position — Theorem 1's exact final answer now covers the appended
/// rows (`fraction` returns to 1.0 on the last batch).
#[test]
fn append_mid_run_extends_the_session_exactly() {
    let rows = 300usize;
    let batches = 3usize;
    let appended = r#"[[901,1,"cdn-x","SFO","US","isp-a","vod",12.5,3.5,1.25,2400,0],[902,2,"cdn-y","LAX","US","isp-b","live",2.5,7.25,0.5,3200,1]]"#;

    // Driver-level oracle: step once, append after the first batch (the
    // position the parked server applies it at below), run to the end.
    let catalog = iolap_workloads::conviva_catalog(rows, 17);
    let registry = iolap_workloads::conviva_registry();
    let queries = iolap_workloads::conviva_queries();
    let q = queries.iter().find(|q| q.id == "C3").unwrap();
    let pq = plan_sql(q.sql, &catalog, &registry).unwrap();
    let mut cfg = IolapConfig::with_batches(batches).trials(10).seed(17);
    cfg.partition_mode = iolap_relation::PartitionMode::RowShuffle;
    let mut driver = IolapDriver::from_plan(&pq, &catalog, q.stream_table, cfg).unwrap();
    let mut oracle = Vec::new();
    oracle.push(driver.step().unwrap().unwrap());
    let rel = iolap_server::durable::rows_to_relation(
        &parse(appended).unwrap(),
        &driver.stream_schema().clone(),
    )
    .unwrap();
    driver.append_rows(rel).unwrap();
    while let Some(r) = driver.step() {
        oracle.push(r.unwrap());
    }
    assert_eq!(oracle.len(), batches + 1, "append adds one mini-batch");
    let oracle: Vec<String> = oracle
        .iter()
        .map(|r| render_report_stable(&parse(&iolap_server::tcp::report_json(r)).unwrap()))
        .collect();

    // Server run: buffer=1 parks the worker after each batch, so the
    // append lands deterministically between batch 0 and batch 1.
    let server = Server::new(ServerConfig::with_workers(1).report_buffer(1));
    let f = factory_sized(rows, batches);
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"grow"}"#,
    );
    let id = field_u64(&parse(&resp).unwrap(), "session").unwrap();
    let handle = sessions.get(&id).unwrap();
    for _ in 0..1000 {
        if handle.summary().pending_reports == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(handle.summary().pending_reports, 1, "worker must be parked");

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"append","table":"sessions","rows":{appended}}}"#),
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
    assert_eq!(field_u64(&v, "sessions"), Some(1), "{resp}");

    let mut got = Vec::new();
    for _ in 0..1000 {
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":1}}"#),
        );
        let v = parse(&resp).unwrap();
        if let Some(JVal::Arr(rs)) = v.get("reports") {
            for r in rs {
                got.push(render_report_stable(r));
            }
        }
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(got, oracle, "server stream must match the driver oracle");
    // Theorem-1 agreement: the last batch scales by 1.0 again — its
    // fraction covers the full (grown) stream.
    let last = parse(got.last().unwrap()).unwrap();
    assert_eq!(last.get("fraction").and_then(JVal::as_f64), Some(1.0));
}

/// Hostile labels — quotes, backslashes, control characters — must round
/// trip bytewise through submit → summary and appear correctly escaped in
/// both the JSON telemetry summary and the Prometheus exposition.
#[test]
fn hostile_labels_round_trip_through_summary_and_exposition() {
    let server = Server::new(ServerConfig::with_workers(1));
    let f = factory();
    let mut sessions = BTreeMap::new();
    // JSON-decodes to: he"said\ <newline> tab<tab>!
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        r#"{"op":"submit","query":"C3","label":"he\"said\\ \n tab\t!"}"#,
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
    let id = field_u64(&v, "session").unwrap();
    let hostile = "he\"said\\ \n tab\t!";

    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"summary","session":{id}}}"#),
    );
    let v = parse(&resp).unwrap();
    assert_eq!(
        v.get("summary")
            .and_then(|s| s.get("label"))
            .and_then(JVal::as_str),
        Some(hostile),
        "label must round trip bytewise: {resp}"
    );

    let resp = handle_request(&server, &f, &mut sessions, r#"{"op":"metrics"}"#);
    let v = parse(&resp).unwrap();
    let summary = v.get("summary").unwrap();
    let sess = match summary.get("sessions") {
        Some(JVal::Arr(s)) => s,
        other => panic!("sessions must be an array: {other:?}"),
    };
    assert_eq!(sess[0].get("tenant").and_then(JVal::as_str), Some(hostile));
    let exposition = v.get("exposition").and_then(JVal::as_str).unwrap();
    // Prometheus escaping: backslash, quote, newline; tab passes through.
    assert!(
        exposition.contains("tenant=\"he\\\"said\\\\ \\n tab\t!\""),
        "{exposition}"
    );
}
