//! Kill-and-recover integration: the crash-point matrix.
//!
//! A durable server is killed (dropped without a clean finish) at every
//! batch boundary of a session, restarted over the same log directory,
//! and the session replayed through [`Server::recover`]. The pinned
//! contract is the tentpole invariant: the report stream a resumed
//! client sees is **byte-identical** (modulo the masked wall clock) to
//! an uninterrupted run, and recovery metrics stay monotone — a restart
//! never loses or rewrites progress, it only re-derives it.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::plan_sql;
use iolap_server::tcp::{handle_request, SubmitFactory};
use iolap_server::wire::{parse, JVal};
use iolap_server::{Server, ServerConfig, SessionHandle};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 240;
const BATCHES: usize = 4;

/// Factory over a pinned Conviva catalog, identical on every restart —
/// recovery re-derives drivers from origin requests, so determinism of
/// this closure *is* the recovery contract.
fn factory() -> SubmitFactory {
    let catalog = iolap_workloads::conviva_catalog(ROWS, 17);
    let registry = iolap_workloads::conviva_registry();
    let queries = iolap_workloads::conviva_queries();
    Arc::new(move |req: &JVal| {
        let id = req
            .get("query")
            .and_then(JVal::as_str)
            .ok_or_else(|| "missing query".to_string())?;
        let q = queries
            .iter()
            .find(|q| q.id == id)
            .ok_or_else(|| format!("unknown query {id}"))?;
        let pq = plan_sql(q.sql, &catalog, &registry).map_err(|e| e.to_string())?;
        let mut cfg = IolapConfig::with_batches(BATCHES).trials(10).seed(17);
        cfg.partition_mode = iolap_relation::PartitionMode::RowShuffle;
        let driver = IolapDriver::from_plan(&pq, &catalog, q.stream_table, cfg)
            .map_err(|e| e.to_string())?;
        Ok((driver, iolap_server::tcp::spec_from_request(req)))
    })
}

fn scratch_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SCRATCH: AtomicUsize = AtomicUsize::new(0);
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("iolap-restart-{}-{n}-{name}", std::process::id()))
}

/// `workers=1, report_buffer=1` parks the lone worker after every batch,
/// so "killed at batch boundary `m`" is a deterministic machine state:
/// `m` batches stepped and logged, `m-1` reports delivered.
fn cfg(dir: &Path) -> ServerConfig {
    ServerConfig::with_workers(1)
        .report_buffer(1)
        .durable(dir.to_path_buf())
}

/// Re-render a report with `elapsed_ms` pinned to 0 so streams from
/// different processes compare bytewise.
fn masked(r: &JVal) -> String {
    fn render(v: &JVal, out: &mut String) {
        use std::fmt::Write as _;
        match v {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JVal::Num(n) => out.push_str(&iolap_server::wire::num(*n)),
            JVal::Str(s) => {
                let _ = write!(out, "\"{}\"", iolap_server::wire::escape(s));
            }
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JVal::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", iolap_server::wire::escape(k));
                    render(v, out);
                }
                out.push('}');
            }
        }
    }
    let mut pinned = r.clone();
    if let JVal::Obj(members) = &mut pinned {
        for (k, v) in members.iter_mut() {
            if k == "elapsed_ms" {
                *v = JVal::Num(0.0);
            }
        }
    }
    let mut out = String::new();
    render(&pinned, &mut out);
    out
}

fn submit(server: &Server, f: &SubmitFactory, sessions: &mut BTreeMap<u64, SessionHandle>) -> u64 {
    let resp = handle_request(
        server,
        f,
        sessions,
        r#"{"op":"submit","query":"C3","label":"crash"}"#,
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
    v.get("session").and_then(JVal::as_u64).unwrap()
}

/// Poll with `max:1` until exactly one report arrives; panics if the
/// session ends first.
fn poll_one(
    server: &Server,
    f: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    id: u64,
) -> String {
    for _ in 0..2000 {
        let resp = handle_request(
            server,
            f,
            sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":1}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
        if let Some(JVal::Arr(rs)) = v.get("reports") {
            if let Some(r) = rs.first() {
                return masked(r);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("no report arrived for session {id}");
}

/// Drain the session to `done`, returning every masked report line.
fn poll_to_done(
    server: &Server,
    f: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    id: u64,
) -> Vec<String> {
    let mut lines = Vec::new();
    for _ in 0..4000 {
        let resp = handle_request(
            server,
            f,
            sessions,
            &format!(r#"{{"op":"poll","session":{id},"max":1}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
        if let Some(JVal::Arr(rs)) = v.get("reports") {
            for r in rs {
                lines.push(masked(r));
            }
        }
        if v.get("state").and_then(JVal::as_str) == Some("done") {
            return lines;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("session {id} never finished");
}

/// Block until the parked worker has buffered one report and stepped
/// `batches` batches in total — the deterministic crash point.
fn wait_for_boundary(handle: &SessionHandle, batches: usize) {
    for _ in 0..2000 {
        let s = handle.summary();
        if s.pending_reports == 1 && s.batches_run == batches {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let s = handle.summary();
    panic!(
        "never reached boundary {batches}: batches_run={} pending={}",
        s.batches_run, s.pending_reports
    );
}

fn uninterrupted_baseline(f: &SubmitFactory) -> Vec<String> {
    let dir = scratch_dir("baseline");
    let server = Server::new(cfg(&dir));
    let mut sessions = BTreeMap::new();
    let id = submit(&server, f, &mut sessions);
    let lines = poll_to_done(&server, f, &mut sessions, id);
    assert_eq!(lines.len(), BATCHES);
    lines
}

/// The matrix itself: kill at every batch boundary `m in 1..BATCHES`,
/// restart, recover, resume — the pre-crash prefix and the full resumed
/// stream must both match the uninterrupted baseline bytewise.
#[test]
fn crash_at_every_batch_boundary_preserves_the_report_stream() {
    let f = factory();
    let baseline = uninterrupted_baseline(&f);

    for m in 1..BATCHES {
        let dir = scratch_dir(&format!("cell{m}"));
        let pre = {
            let server = Server::new(cfg(&dir));
            let mut sessions = BTreeMap::new();
            let id = submit(&server, &f, &mut sessions);
            let mut pre = Vec::new();
            for k in 0..m {
                // Each delivered report un-parks the worker for exactly
                // one more batch; stop one short so report `m-1` is still
                // buffered (spilled, never delivered) when we kill.
                wait_for_boundary(sessions.get(&id).unwrap(), k + 1);
                if k + 1 < m {
                    pre.push(poll_one(&server, &f, &mut sessions, id));
                }
            }
            pre
            // `server` dropped here without finish(): the kill. No 'D'
            // record is written; the log ends at batch m-1's checkpoint.
        };
        assert_eq!(pre, baseline[..m - 1], "cell {m}: pre-crash prefix");

        let server = Server::new(cfg(&dir));
        let recovered = server.recover(&f);
        assert_eq!(recovered.resumed.len(), 1, "cell {m}: {recovered:?}");
        assert_eq!(recovered.replayed_batches, m, "cell {m}");
        assert_eq!(recovered.stale_digests, 0, "cell {m}");
        let id = recovered.resumed[0];

        let mut sessions = BTreeMap::new();
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"resume","session":{id}}}"#),
        );
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true), "{resp}");
        // Monotone: a restart never loses batches — the resumed frontier
        // equals the crash boundary, and every replayed report is
        // re-deliverable.
        assert_eq!(v.get("batches_run").and_then(JVal::as_u64), Some(m as u64));
        assert_eq!(
            v.get("pending_reports").and_then(JVal::as_u64),
            Some(m as u64)
        );
        let expo = server.exposition(true);
        assert!(
            expo.contains("iolap_durable_resumed_sessions_total 1"),
            "cell {m}: {expo}"
        );
        assert!(
            expo.contains(&format!("iolap_durable_replayed_batches_total {m}")),
            "cell {m}"
        );

        let post = poll_to_done(&server, &f, &mut sessions, id);
        assert_eq!(post, baseline, "cell {m}: resumed stream diverged");
    }
}

/// Killing the server *between* recovery replay and any new progress
/// (a crash mid-recovery, after the log was read but before the session
/// advanced) must itself be recoverable: the log is replay-idempotent.
#[test]
fn restart_during_recovery_replay_is_idempotent() {
    let f = factory();
    let baseline = uninterrupted_baseline(&f);
    let m = 2;

    let dir = scratch_dir("double");
    let id = {
        let server = Server::new(cfg(&dir));
        let mut sessions = BTreeMap::new();
        let id = submit(&server, &f, &mut sessions);
        wait_for_boundary(sessions.get(&id).unwrap(), 1);
        let _ = poll_one(&server, &f, &mut sessions, id);
        wait_for_boundary(sessions.get(&id).unwrap(), m);
        id
    };

    // First restart: recover, then kill again before anything is polled.
    {
        let server = Server::new(cfg(&dir));
        let recovered = server.recover(&f);
        assert_eq!(recovered.resumed, vec![id], "{recovered:?}");
        assert_eq!(recovered.replayed_batches, m);
    }

    // Second restart over the identical log: same frontier, same stream.
    let server = Server::new(cfg(&dir));
    let recovered = server.recover(&f);
    assert_eq!(recovered.resumed, vec![id], "{recovered:?}");
    assert_eq!(recovered.replayed_batches, m);
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"resume","session":{id}}}"#),
    );
    assert_eq!(
        parse(&resp).unwrap().get("ok").and_then(JVal::as_bool),
        Some(true),
        "{resp}"
    );
    let post = poll_to_done(&server, &f, &mut sessions, id);
    assert_eq!(post, baseline);
}

/// The final matrix cell: a session that *completed* before the kill has
/// its 'D' record on disk; restart must not resurrect it, and `resume`
/// reports it finished rather than unknown.
#[test]
fn completed_sessions_stay_finished_across_restart() {
    let f = factory();
    let dir = scratch_dir("done");
    let id = {
        let server = Server::new(cfg(&dir));
        let mut sessions = BTreeMap::new();
        let id = submit(&server, &f, &mut sessions);
        let lines = poll_to_done(&server, &f, &mut sessions, id);
        assert_eq!(lines.len(), BATCHES);
        id
    };

    let server = Server::new(cfg(&dir));
    let recovered = server.recover(&f);
    assert!(recovered.resumed.is_empty(), "{recovered:?}");
    assert!(recovered.skipped.is_empty(), "{recovered:?}");
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"resume","session":{id}}}"#),
    );
    let v = parse(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JVal::as_str),
        Some("session_finished"),
        "{resp}"
    );
    // Recovered ids stay reserved: a fresh submission must not collide
    // with the finished session's on-disk log.
    let fresh = submit(&server, &f, &mut sessions);
    assert!(fresh > id, "fresh id {fresh} collides with recovered {id}");
}

/// Appends are part of the durable event order: a session killed *after*
/// an append was applied and logged must replay the append at the same
/// position and resume to the identical grown stream.
#[test]
fn appends_survive_restart_at_their_original_position() {
    let f = factory();
    let appended = r#"[[901,1,"cdn-x","SFO","US","isp-a","vod",12.5,3.5,1.25,2400,0],[902,2,"cdn-y","LAX","US","isp-b","live",2.5,7.25,0.5,3200,1]]"#;

    // Uninterrupted grown run: append lands while parked after batch 0.
    let grown = {
        let dir = scratch_dir("grown-base");
        let server = Server::new(cfg(&dir));
        let mut sessions = BTreeMap::new();
        let id = submit(&server, &f, &mut sessions);
        wait_for_boundary(sessions.get(&id).unwrap(), 1);
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"append","table":"sessions","rows":{appended}}}"#),
        );
        assert_eq!(
            parse(&resp).unwrap().get("sessions").and_then(JVal::as_u64),
            Some(1),
            "{resp}"
        );
        let lines = poll_to_done(&server, &f, &mut sessions, id);
        assert_eq!(lines.len(), BATCHES + 1, "append adds one mini-batch");
        lines
    };

    // Same run, killed two batches after the append, then recovered.
    let dir = scratch_dir("grown-crash");
    let id = {
        let server = Server::new(cfg(&dir));
        let mut sessions = BTreeMap::new();
        let id = submit(&server, &f, &mut sessions);
        wait_for_boundary(sessions.get(&id).unwrap(), 1);
        let resp = handle_request(
            &server,
            &f,
            &mut sessions,
            &format!(r#"{{"op":"append","table":"sessions","rows":{appended}}}"#),
        );
        assert_eq!(
            parse(&resp).unwrap().get("sessions").and_then(JVal::as_u64),
            Some(1),
            "{resp}"
        );
        let _ = poll_one(&server, &f, &mut sessions, id);
        wait_for_boundary(sessions.get(&id).unwrap(), 2);
        let _ = poll_one(&server, &f, &mut sessions, id);
        wait_for_boundary(sessions.get(&id).unwrap(), 3);
        id
    };

    let server = Server::new(cfg(&dir));
    let recovered = server.recover(&f);
    assert_eq!(recovered.resumed, vec![id], "{recovered:?}");
    assert_eq!(recovered.replayed_batches, 3);
    assert_eq!(recovered.reapplied_appends, 1);
    let mut sessions = BTreeMap::new();
    let resp = handle_request(
        &server,
        &f,
        &mut sessions,
        &format!(r#"{{"op":"resume","session":{id}}}"#),
    );
    assert_eq!(
        parse(&resp).unwrap().get("ok").and_then(JVal::as_bool),
        Some(true),
        "{resp}"
    );
    let post = poll_to_done(&server, &f, &mut sessions, id);
    assert_eq!(post, grown, "replayed append diverged from live apply");
}
