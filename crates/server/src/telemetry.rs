//! Fleet telemetry plane: per-session / per-tenant / per-shard rollups,
//! CI-convergence SLO tracking, and a zero-dependency Prometheus-style
//! text exposition.
//!
//! The scheduler feeds this module from inside its state lock (no second
//! mutex, no new lock order): every delivered batch report merges its
//! [`Metrics`] into the fleet and tenant rollups and appends the batch's
//! relative-CI half-width to the session's bounded trajectory ring; every
//! session end updates the stop-policy burn counters. Because `Metrics`
//! merge is pointwise-additive and commutative, the rollups are
//! independent of worker interleaving — the exposition of a fixed-seed
//! run is byte-identical across repeated runs (canonical mode; wall-clock
//! families are excluded there).
//!
//! The CI trajectory ring also powers the *predicted time-to-target*
//! estimate: the bootstrap half-width of an additive aggregate shrinks as
//! `c/√n` in the number of processed batches (§4.2's CLT scaling), so a
//! single observed `(batch, rel_ci)` point pins `c` and extrapolates how
//! many more batches a `RelativeCI` session needs. ROADMAP item 5's
//! accuracy-as-a-resource scheduler will consume exactly this estimate.

use crate::policy::StopPolicy;
use crate::session::SessionEnd;
use iolap_core::{Metrics, ShardWorkerStats};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Bound on each session's CI trajectory ring: enough to see the `c/√n`
/// tail flatten, small enough to never matter for memory accounting.
pub const CI_RING_CAPACITY: usize = 64;

/// Per-session SLO/convergence state tracked by the telemetry plane.
#[derive(Clone, Debug, Default)]
pub struct SessionSlo {
    /// Tenant label from the [`crate::session::SessionSpec`] (`"default"`
    /// when the client sent none).
    pub label: String,
    /// Bounded `(batch index, relative-CI half-width)` trajectory, oldest
    /// first; batches without error estimates are not appended.
    pub ring: VecDeque<(usize, f64)>,
    /// Batches delivered so far.
    pub batches: usize,
    /// Total mini-batches the driver was built with.
    pub total_batches: usize,
    /// `RelativeCI` stop-policy target, when that policy governs.
    pub ci_target: Option<f64>,
    /// `Deadline` stop-policy budget in milliseconds, when that policy
    /// governs.
    pub deadline_ms: Option<u64>,
    /// End label once finished (`completed` / `target_met` / …).
    pub end: Option<&'static str>,
}

impl SessionSlo {
    /// Last observed relative-CI half-width, if any batch carried one.
    pub fn last_rel_ci(&self) -> Option<(usize, f64)> {
        self.ring.back().copied()
    }

    /// Predicted number of *additional* batches needed to reach this
    /// session's `RelativeCI` target (see [`predict_batches_remaining`]).
    /// `None` without a target or an observed trajectory point.
    pub fn predicted_remaining(&self) -> Option<u64> {
        let target = self.ci_target?;
        predict_batches_remaining(&self.ring, target)
    }
}

/// Extrapolate the bootstrap's `c/√n` convergence: the newest ring point
/// `(b, ci)` pins `c = ci·√(b+1)`, the target needs `n ≥ (c/target)²`
/// processed batches, and the prediction is the shortfall from `b+1`.
/// `Some(0)` when the target is already met; `None` when the ring is
/// empty, the target is non-positive, or the half-width is not finite.
pub fn predict_batches_remaining(ring: &VecDeque<(usize, f64)>, target: f64) -> Option<u64> {
    let &(b, ci) = ring.back()?;
    if target.is_nan() || target <= 0.0 || !ci.is_finite() || ci < 0.0 {
        return None;
    }
    if ci <= target {
        return Some(0);
    }
    let c = ci * ((b as f64) + 1.0).sqrt();
    let need = (c / target).powi(2).ceil();
    if !need.is_finite() {
        return None;
    }
    Some((need as u64).saturating_sub(b as u64 + 1))
}

/// Burn-rate counters for the accuracy/latency stop policies: how many
/// sessions ran under each contract, how many met it, and what the early
/// stops saved. All counters are monotonic and saturating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloCounters {
    /// Sessions governed by [`StopPolicy::RelativeCI`].
    pub ci_sessions: u64,
    /// `RelativeCI` sessions that stopped early with the target met.
    pub ci_met: u64,
    /// Batches `RelativeCI` sessions actually ran.
    pub ci_batches: u64,
    /// Batches early-stopped `RelativeCI` sessions did *not* run
    /// (total minus delivered — the accuracy contract's compute dividend).
    pub ci_batches_saved: u64,
    /// Sessions governed by [`StopPolicy::Deadline`].
    pub deadline_sessions: u64,
    /// `Deadline` sessions that completed every batch inside the budget.
    pub deadline_met: u64,
    /// `Deadline` sessions cut short by the budget (the policy fired).
    pub deadline_overrun: u64,
}

/// Durability-plane counters: spilled records, streaming appends, and
/// what recovery replayed. All monotonic and saturating, all free of
/// wall-clock content — they render in canonical exposition mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableCounters {
    /// Records written to the durable store (manifest + session logs).
    pub records: u64,
    /// Durable writes that failed with an I/O error (the session keeps
    /// running; its recoverability degrades).
    pub write_errors: u64,
    /// Streaming append batches applied to a live driver.
    pub appends_applied: u64,
    /// Streaming append batches dropped (parse, schema, or driver
    /// rejection) — the session is never poisoned by a bad append.
    pub appends_rejected: u64,
    /// Sessions rebuilt from the durable log by `Server::recover`.
    pub resumed_sessions: u64,
    /// Mini-batches re-run during recovery replay.
    pub replayed_batches: u64,
    /// Appends re-applied at their logged positions during replay.
    pub reapplied_appends: u64,
    /// Logged checkpoint digests that disagreed with re-derived state.
    pub stale_digests: u64,
}

/// The fleet rollup state. Owned by the scheduler's `State` (updated
/// under the existing lock), cloned out for exposition and wire replies.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    fleet: Metrics,
    tenants: BTreeMap<String, Metrics>,
    sessions: BTreeMap<u64, SessionSlo>,
    shards: BTreeMap<usize, ShardWorkerStats>,
    slo: SloCounters,
    durable: DurableCounters,
}

impl Telemetry {
    /// Register a session at admission time.
    pub fn observe_submit(
        &mut self,
        id: u64,
        label: &str,
        total_batches: usize,
        policy: &StopPolicy,
    ) {
        let mut slo = SessionSlo {
            label: if label.is_empty() {
                "default".to_string()
            } else {
                label.to_string()
            },
            total_batches,
            ..SessionSlo::default()
        };
        match policy {
            StopPolicy::RelativeCI { target, .. } => {
                slo.ci_target = Some(*target);
                self.slo.ci_sessions = self.slo.ci_sessions.saturating_add(1);
            }
            StopPolicy::Deadline(d) => {
                slo.deadline_ms = Some(u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
                self.slo.deadline_sessions = self.slo.deadline_sessions.saturating_add(1);
            }
            StopPolicy::Batches(_) => {}
        }
        self.sessions.insert(id, slo);
    }

    /// Fold one delivered batch into the rollups: fleet + tenant metrics
    /// merge, CI ring append, batch counters.
    pub fn observe_batch(
        &mut self,
        id: u64,
        batches_run: usize,
        rel_ci: Option<f64>,
        metrics: &Metrics,
    ) {
        let Some(slo) = self.sessions.get_mut(&id) else {
            return;
        };
        slo.batches = batches_run;
        if let Some(ci) = rel_ci {
            if slo.ring.len() >= CI_RING_CAPACITY {
                slo.ring.pop_front();
            }
            slo.ring.push_back((batches_run.saturating_sub(1), ci));
        }
        if slo.ci_target.is_some() {
            self.slo.ci_batches = self.slo.ci_batches.saturating_add(1);
        }
        self.fleet.merge(metrics);
        self.tenants
            .entry(slo.label.clone())
            .or_default()
            .merge(metrics);
    }

    /// Record a session end: burn-counter updates keyed on the governing
    /// policy. A `Deadline` session that ran out of budget ends in
    /// `TargetMet` (the policy fired) and counts as an overrun; one that
    /// finished all its batches first counts as met.
    pub fn observe_finish(&mut self, id: u64, end: &SessionEnd) {
        let Some(slo) = self.sessions.get_mut(&id) else {
            return;
        };
        slo.end = Some(end.label());
        if slo.ci_target.is_some() {
            if let SessionEnd::TargetMet { batches } = end {
                self.slo.ci_met = self.slo.ci_met.saturating_add(1);
                self.slo.ci_batches_saved = self
                    .slo
                    .ci_batches_saved
                    .saturating_add(slo.total_batches.saturating_sub(*batches) as u64);
            }
        }
        if slo.deadline_ms.is_some() {
            match end {
                SessionEnd::Completed => {
                    self.slo.deadline_met = self.slo.deadline_met.saturating_add(1)
                }
                SessionEnd::TargetMet { .. } => {
                    self.slo.deadline_overrun = self.slo.deadline_overrun.saturating_add(1)
                }
                _ => {}
            }
        }
    }

    /// Accumulate per-worker shard counters harvested from a finishing
    /// driver's pool (pointwise-additive by shard index).
    pub fn observe_workers(&mut self, stats: &[ShardWorkerStats]) {
        for w in stats {
            let slot = self.shards.entry(w.shard).or_insert(ShardWorkerStats {
                shard: w.shard,
                ..ShardWorkerStats::default()
            });
            slot.folds = slot.folds.saturating_add(w.folds);
            slot.acked = slot.acked.saturating_add(w.acked);
            slot.response_bytes = slot.response_bytes.saturating_add(w.response_bytes);
        }
    }

    /// Fleet-wide metric rollup (every delivered batch merged).
    pub fn fleet(&self) -> &Metrics {
        &self.fleet
    }

    /// Per-tenant metric rollups, keyed by session label.
    pub fn tenants(&self) -> &BTreeMap<String, Metrics> {
        &self.tenants
    }

    /// Per-session SLO/convergence state.
    pub fn sessions(&self) -> &BTreeMap<u64, SessionSlo> {
        &self.sessions
    }

    /// Accumulated per-shard worker counters.
    pub fn shards(&self) -> &BTreeMap<usize, ShardWorkerStats> {
        &self.shards
    }

    /// Stop-policy burn counters.
    pub fn slo(&self) -> &SloCounters {
        &self.slo
    }

    /// Record durable-store write outcomes (spilled records vs errors).
    pub fn observe_durable(&mut self, records: u64, errors: u64) {
        self.durable.records = self.durable.records.saturating_add(records);
        self.durable.write_errors = self.durable.write_errors.saturating_add(errors);
    }

    /// Record streaming-append application outcomes.
    pub fn observe_appends(&mut self, applied: u64, rejected: u64) {
        self.durable.appends_applied = self.durable.appends_applied.saturating_add(applied);
        self.durable.appends_rejected = self.durable.appends_rejected.saturating_add(rejected);
    }

    /// Record one session restored by recovery replay.
    pub fn observe_resume(&mut self, replayed: u64, reapplied: u64, stale: u64) {
        self.durable.resumed_sessions = self.durable.resumed_sessions.saturating_add(1);
        self.durable.replayed_batches = self.durable.replayed_batches.saturating_add(replayed);
        self.durable.reapplied_appends = self.durable.reapplied_appends.saturating_add(reapplied);
        self.durable.stale_digests = self.durable.stale_digests.saturating_add(stale);
    }

    /// Durability-plane counters.
    pub fn durable(&self) -> &DurableCounters {
        &self.durable
    }
}

/// Escape a Prometheus label value: backslash, double quote, newline.
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Whether a metric name survives canonical mode: wall-clock families
/// (`*_ns` / `*.ns` sums and their histograms) and shard-topology
/// counters (`shard.*`) are excluded so the exposition is byte-identical
/// across repeated runs and across shard counts — the metrics analogue of
/// `iolap_core::trace::canonical_events`.
fn canonical_metric(name: &str) -> bool {
    !name.ends_with("_ns") && !name.ends_with(".ns") && !name.starts_with("shard.")
}

fn render_metric_family(
    out: &mut String,
    family: &str,
    label: &str,
    value: &str,
    metrics: &Metrics,
    canonical: bool,
) {
    for (name, v) in metrics.iter() {
        if canonical && !canonical_metric(name) {
            continue;
        }
        let _ = writeln!(
            out,
            "{family}{{{label}=\"{}\",name=\"{}\"}} {v}",
            label_escape(value),
            label_escape(name)
        );
    }
    if !canonical {
        for (name, h) in metrics.histograms() {
            for (q, tag) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                if let Some(ns) = h.quantile(q) {
                    let _ = writeln!(
                        out,
                        "{family}_{tag}_ns{{{label}=\"{}\",name=\"{}\"}} {ns}",
                        label_escape(value),
                        label_escape(name)
                    );
                }
            }
        }
    }
}

/// Render the fleet state as Prometheus-style text exposition (strictly
/// deterministic ordering: fixed section order, `BTreeMap` iteration
/// within). `canonical` drops every wall-clock and shard-topology family
/// so the output byte-compares across repeated fixed-seed runs and across
/// shard counts; the full form adds quantiles, memory, and shard counters
/// for human/scrape consumption.
pub fn render_exposition(
    t: &Telemetry,
    stats: &crate::scheduler::ServerStats,
    canonical: bool,
) -> String {
    let mut out = String::new();
    out.push_str("# iolap fleet telemetry exposition\n");
    out.push_str("# TYPE iolap_sessions_live gauge\n");
    let _ = writeln!(out, "iolap_sessions_live {}", stats.live);
    let _ = writeln!(out, "iolap_sessions_queued {}", stats.queued);
    out.push_str("# TYPE iolap_sessions_admitted_total counter\n");
    let _ = writeln!(out, "iolap_sessions_admitted_total {}", stats.admitted);
    let _ = writeln!(out, "iolap_sessions_rejected_total {}", stats.rejected);
    let _ = writeln!(out, "iolap_sessions_shed_total {}", stats.shed);
    if !canonical {
        let _ = writeln!(out, "iolap_sessions_mem_bytes {}", stats.mem_bytes);
    }

    out.push_str("# TYPE iolap_slo counter\n");
    let s = t.slo();
    let _ = writeln!(out, "iolap_slo_ci_sessions_total {}", s.ci_sessions);
    let _ = writeln!(out, "iolap_slo_ci_met_total {}", s.ci_met);
    let _ = writeln!(out, "iolap_slo_ci_batches_total {}", s.ci_batches);
    let _ = writeln!(
        out,
        "iolap_slo_ci_batches_saved_total {}",
        s.ci_batches_saved
    );
    let _ = writeln!(
        out,
        "iolap_slo_deadline_sessions_total {}",
        s.deadline_sessions
    );
    let _ = writeln!(out, "iolap_slo_deadline_met_total {}", s.deadline_met);
    let _ = writeln!(
        out,
        "iolap_slo_deadline_overrun_total {}",
        s.deadline_overrun
    );

    out.push_str("# TYPE iolap_durable counter\n");
    let d = t.durable();
    let _ = writeln!(out, "iolap_durable_records_total {}", d.records);
    let _ = writeln!(out, "iolap_durable_write_errors_total {}", d.write_errors);
    let _ = writeln!(
        out,
        "iolap_durable_appends_applied_total {}",
        d.appends_applied
    );
    let _ = writeln!(
        out,
        "iolap_durable_appends_rejected_total {}",
        d.appends_rejected
    );
    let _ = writeln!(
        out,
        "iolap_durable_resumed_sessions_total {}",
        d.resumed_sessions
    );
    let _ = writeln!(
        out,
        "iolap_durable_replayed_batches_total {}",
        d.replayed_batches
    );
    let _ = writeln!(
        out,
        "iolap_durable_reapplied_appends_total {}",
        d.reapplied_appends
    );
    let _ = writeln!(out, "iolap_durable_stale_digests_total {}", d.stale_digests);

    out.push_str("# TYPE iolap_session gauge\n");
    for (id, slo) in t.sessions() {
        let tenant = label_escape(&slo.label);
        let _ = writeln!(
            out,
            "iolap_session_batches_total{{session=\"{id}\",tenant=\"{tenant}\"}} {}",
            slo.batches
        );
        if let Some((batch, ci)) = slo.last_rel_ci() {
            let _ = writeln!(
                out,
                "iolap_session_rel_ci{{session=\"{id}\",tenant=\"{tenant}\",batch=\"{batch}\"}} {ci}"
            );
        }
        if let Some(rem) = slo.predicted_remaining() {
            let _ = writeln!(
                out,
                "iolap_session_predicted_remaining{{session=\"{id}\",tenant=\"{tenant}\"}} {rem}"
            );
        }
        if let Some(end) = slo.end {
            let _ = writeln!(
                out,
                "iolap_session_end_info{{session=\"{id}\",tenant=\"{tenant}\",end=\"{end}\"}} 1"
            );
        }
    }

    out.push_str("# TYPE iolap_tenant_metric_total counter\n");
    for (tenant, metrics) in t.tenants() {
        render_metric_family(
            &mut out,
            "iolap_tenant_metric_total",
            "tenant",
            tenant,
            metrics,
            canonical,
        );
    }

    out.push_str("# TYPE iolap_fleet_metric_total counter\n");
    render_metric_family(
        &mut out,
        "iolap_fleet_metric_total",
        "scope",
        "fleet",
        t.fleet(),
        canonical,
    );

    if !canonical {
        out.push_str("# TYPE iolap_shard counter\n");
        for (shard, w) in t.shards() {
            let _ = writeln!(
                out,
                "iolap_shard_folds_total{{shard=\"{shard}\"}} {}",
                w.folds
            );
            let _ = writeln!(
                out,
                "iolap_shard_acked_total{{shard=\"{shard}\"}} {}",
                w.acked
            );
            let _ = writeln!(
                out,
                "iolap_shard_response_bytes_total{{shard=\"{shard}\"}} {}",
                w.response_bytes
            );
        }
    }
    out
}

/// Canonical form of a scheduler trace journal: stable-sort by
/// `(session id, seq)` — every scheduler event carries the session id in
/// `n` — then renumber `seq` contiguously. Grouping by session removes
/// the only nondeterminism in a fixed-seed run (the interleaving of one
/// session's picks with another's submits across threads); each session's
/// own lifecycle order is fixed by the state lock. Export the result with
/// `iolap_core::export_jsonl(&events, true)` for byte comparison.
pub fn canonical_trace(events: &[iolap_core::TraceEvent]) -> Vec<iolap_core::TraceEvent> {
    let mut evs: Vec<iolap_core::TraceEvent> = events.to_vec();
    evs.sort_by_key(|e| (e.n, e.seq));
    for (i, e) in evs.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    evs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ring(points: &[(usize, f64)]) -> VecDeque<(usize, f64)> {
        points.iter().copied().collect()
    }

    #[test]
    fn prediction_extrapolates_sqrt_convergence() {
        // ci(b=3) = 0.2 → c = 0.4; target 0.1 needs n ≥ 16 → 12 more.
        assert_eq!(predict_batches_remaining(&ring(&[(3, 0.2)]), 0.1), Some(12));
        // Already met.
        assert_eq!(predict_batches_remaining(&ring(&[(5, 0.05)]), 0.1), Some(0));
        // Degenerate inputs.
        assert_eq!(predict_batches_remaining(&ring(&[]), 0.1), None);
        assert_eq!(
            predict_batches_remaining(&ring(&[(1, f64::NAN)]), 0.1),
            None
        );
        assert_eq!(predict_batches_remaining(&ring(&[(1, 0.2)]), 0.0), None);
    }

    #[test]
    fn ci_ring_is_bounded() {
        let mut t = Telemetry::default();
        t.observe_submit(
            0,
            "u1",
            1000,
            &StopPolicy::RelativeCI {
                target: 0.01,
                confidence: 0.95,
            },
        );
        let m = Metrics::new();
        for b in 0..CI_RING_CAPACITY + 10 {
            t.observe_batch(0, b + 1, Some(1.0 / (b as f64 + 1.0)), &m);
        }
        let slo = &t.sessions()[&0];
        assert_eq!(slo.ring.len(), CI_RING_CAPACITY);
        assert_eq!(slo.batches, CI_RING_CAPACITY + 10);
        assert_eq!(t.slo().ci_batches, (CI_RING_CAPACITY + 10) as u64);
    }

    #[test]
    fn burn_counters_track_policy_outcomes() {
        let mut t = Telemetry::default();
        let ci = StopPolicy::RelativeCI {
            target: 0.05,
            confidence: 0.95,
        };
        t.observe_submit(0, "a", 10, &ci);
        t.observe_finish(0, &SessionEnd::TargetMet { batches: 4 });
        t.observe_submit(1, "a", 10, &ci);
        t.observe_finish(1, &SessionEnd::Completed);
        t.observe_submit(2, "b", 8, &StopPolicy::Deadline(Duration::from_millis(5)));
        t.observe_finish(2, &SessionEnd::TargetMet { batches: 3 });
        t.observe_submit(3, "b", 8, &StopPolicy::Deadline(Duration::from_secs(60)));
        t.observe_finish(3, &SessionEnd::Completed);
        let s = t.slo();
        assert_eq!(s.ci_sessions, 2);
        assert_eq!(s.ci_met, 1);
        assert_eq!(s.ci_batches_saved, 6);
        assert_eq!(s.deadline_sessions, 2);
        assert_eq!(s.deadline_met, 1);
        assert_eq!(s.deadline_overrun, 1);
        assert_eq!(t.sessions()[&0].end, Some("target_met"));
    }

    #[test]
    fn worker_stats_accumulate_by_shard() {
        let mut t = Telemetry::default();
        let w = |shard, folds| ShardWorkerStats {
            shard,
            folds,
            acked: 1,
            response_bytes: 10,
        };
        t.observe_workers(&[w(0, 2), w(1, 3)]);
        t.observe_workers(&[w(0, 5)]);
        assert_eq!(t.shards()[&0].folds, 7);
        assert_eq!(t.shards()[&0].response_bytes, 20);
        assert_eq!(t.shards()[&1].folds, 3);
    }

    #[test]
    fn exposition_is_deterministic_and_canonical_strips_clocks() {
        let mut t = Telemetry::default();
        t.observe_submit(0, "he\"said\\", 4, &StopPolicy::complete());
        let mut m = Metrics::new();
        m.add("agg.fold_rows", 100);
        m.record_ns("agg.fold_ns", 12345);
        m.add("shard.partials", 2);
        t.observe_batch(0, 1, Some(0.25), &m);
        t.observe_workers(&[ShardWorkerStats {
            shard: 0,
            folds: 1,
            acked: 0,
            response_bytes: 8,
        }]);
        let stats = crate::scheduler::ServerStats {
            admitted: 1,
            ..Default::default()
        };
        let canon = render_exposition(&t, &stats, true);
        let full = render_exposition(&t, &stats, false);
        assert_eq!(canon, render_exposition(&t, &stats, true));
        // Canonical drops clocks and shard topology; full keeps them.
        assert!(!canon.contains("_ns"));
        assert!(!canon.contains("shard"));
        assert!(full.contains("agg.fold_ns"));
        assert!(full.contains("iolap_shard_folds_total{shard=\"0\"} 1"));
        // Hostile tenant labels are escaped, never raw.
        assert!(canon.contains("tenant=\"he\\\"said\\\\\""));
        assert!(canon.contains("iolap_session_rel_ci"));
        assert!(canon.contains("agg.fold_rows"));
    }

    #[test]
    fn canonical_trace_groups_by_session() {
        use iolap_core::{EventKind, TraceEvent};
        let ev = |seq, n, name: &'static str| TraceEvent {
            seq,
            ts_ns: seq * 10,
            kind: EventKind::Mark,
            span: iolap_core::SpanId::NONE,
            parent: iolap_core::SpanId::NONE,
            batch: usize::MAX,
            name,
            n,
            detail: String::new(),
        };
        // Two interleavings of the same per-session histories.
        let a = vec![
            ev(0, 0, "sess.submit"),
            ev(1, 1, "sess.submit"),
            ev(2, 0, "sched.pick"),
            ev(3, 1, "sched.pick"),
        ];
        let b = vec![
            ev(0, 0, "sess.submit"),
            ev(1, 0, "sched.pick"),
            ev(2, 1, "sess.submit"),
            ev(3, 1, "sched.pick"),
        ];
        let ca = iolap_core::export_jsonl(&canonical_trace(&a), true);
        let cb = iolap_core::export_jsonl(&canonical_trace(&b), true);
        assert_eq!(ca, cb);
    }
}
