//! Dependency-free JSON for the newline-delimited line protocol.
//!
//! The repo's benchmark emitter (`bench/src/json.rs`) already hand-rolls
//! JSON *encoding*; the TCP front-end additionally needs *parsing* for
//! request lines. Both directions live here so there is exactly one
//! escaping/number policy in the tree — the bench emitter delegates its
//! `escape` to [`escape`] below, and non-finite floats become `null` in
//! both emitters ([`num`]).
//!
//! The parser is a small recursive-descent over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, literals). Documents
//! are request lines a few hundred bytes long; no streaming, no zero-copy.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their document order (the
/// protocol never relies on it, but determinism is free this way).
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object, in document order.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte position plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<JVal, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            pos,
            msg: "trailing characters after document",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError {
            pos: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(JVal::Str),
        Some(b't') => parse_literal(b, pos, "true", JVal::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JVal::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JVal::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(ParseError {
            pos: *pos,
            msg: "expected a JSON value",
        }),
    }
}

fn parse_literal(
    b: &[u8],
    pos: &mut usize,
    lit: &'static str,
    v: JVal,
) -> Result<JVal, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError {
            pos: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JVal::Num)
        .ok_or(ParseError {
            pos: start,
            msg: "invalid number",
        })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                pos: *pos,
                                msg: "invalid \\u escape",
                            })?;
                        // Surrogate pairs are not reassembled; lone
                        // surrogates map to U+FFFD. Protocol strings are
                        // ASCII identifiers in practice.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            msg: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // already valid: the input is a &str).
                let s = &b[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .map(|c| c.len_utf8())
                    .ok_or(ParseError {
                        pos: *pos,
                        msg: "invalid utf-8 in string",
                    })?;
                out.push_str(std::str::from_utf8(&s[..ch_len]).expect("validated utf-8"));
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JVal::Arr(items));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JVal::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(ParseError {
                pos: *pos,
                msg: "expected object key",
            });
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(ParseError {
                pos: *pos,
                msg: "expected ':'",
            });
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JVal::Obj(members));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

/// Escape a string for a JSON string literal (quotes not included). The
/// canonical implementation for the whole tree — `bench`'s emitter
/// delegates here.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite JSON number; non-finite floats become `null` (JSON has no
/// NaN) — the same policy the benchmark record uses.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Encode one relation cell for the wire: `Null`/`Bool`/`Int`/`Float` map
/// to their JSON natives, strings are escaped, and the internal lineage
/// variants (`Ref`, `Pending` — never user-visible in a published result)
/// fall back to their debug rendering as strings.
pub fn value_json(v: &iolap_relation::Value) -> String {
    use iolap_relation::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => num(*f),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        other => format!("\"{}\"", escape(&format!("{other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JVal::Null);
        assert_eq!(parse("true").unwrap(), JVal::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JVal::Bool(false));
        assert_eq!(parse("42").unwrap(), JVal::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JVal::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), JVal::Str("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"op":"submit","query":"C2","opts":{"batches":8,"tags":["a","b"]},"x":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(JVal::as_str), Some("submit"));
        assert_eq!(
            v.get("opts")
                .and_then(|o| o.get("batches"))
                .and_then(JVal::as_u64),
            Some(8)
        );
        assert_eq!(v.get("x"), Some(&JVal::Null));
        match v.get("opts").and_then(|o| o.get("tags")) {
            Some(JVal::Arr(items)) => assert_eq!(items.len(), 2),
            other => panic!("tags: {other:?}"),
        }
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            JVal::Str("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn escape_then_parse_roundtrips() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JVal::Str(nasty.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn value_json_covers_variants() {
        use iolap_relation::Value;
        assert_eq!(value_json(&Value::Null), "null");
        assert_eq!(value_json(&Value::Int(-3)), "-3");
        assert_eq!(value_json(&Value::Bool(true)), "true");
        assert_eq!(value_json(&Value::Float(1.5)), "1.5");
        assert_eq!(value_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_json(&Value::str("a\"b")), "\"a\\\"b\"");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JVal::Num(3.5).as_u64(), None);
        assert_eq!(JVal::Num(-1.0).as_u64(), None);
        assert_eq!(JVal::Num(7.0).as_u64(), Some(7));
    }
}
