//! Dependency-free JSON for the newline-delimited line protocol.
//!
//! The repo's benchmark emitter (`bench/src/json.rs`) already hand-rolls
//! JSON *encoding*; the TCP front-end additionally needs *parsing* for
//! request lines. Both directions live here so there is exactly one
//! escaping/number policy in the tree — the bench emitter delegates its
//! `escape` to [`escape`] below, and non-finite floats become `null` in
//! both emitters ([`num`]).
//!
//! The parser is a small recursive-descent over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, literals). Documents
//! are request lines a few hundred bytes long; no streaming, no zero-copy.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their document order (the
/// protocol never relies on it, but determinism is free this way).
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object, in document order.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, when non-negative, integral, and in
    /// range. The bound is strict: `u64::MAX as f64` rounds *up* to 2^64,
    /// which is one past the last representable `u64`, so an inclusive
    /// comparison would admit 18446744073709551616.0 and silently
    /// saturate it to `u64::MAX`. Every finite f64 strictly below 2^64 is
    /// exact under `as u64`.
    pub fn as_u64(&self) -> Option<u64> {
        const TWO_POW_64: f64 = u64::MAX as f64; // == 2^64 exactly
        match self {
            JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < TWO_POW_64 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object from `(key, value)` pairs, in order — the builder the TCP
    /// front-end assembles every response from, so reply framing is
    /// structurally correct by construction (hostile labels and error
    /// strings go through [`escape`], numbers through [`num`]).
    pub fn obj(members: Vec<(&str, JVal)>) -> JVal {
        JVal::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> JVal {
        JVal::Str(s.into())
    }

    /// Render as a compact one-line JSON document: canonical [`escape`]
    /// for strings (keys included), the [`num`] policy for numbers
    /// (non-finite becomes `null`). [`parse`] round-trips the output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            JVal::Num(n) => out.push_str(&num(*n)),
            JVal::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JVal::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_to(out);
                }
                out.push(']');
            }
            JVal::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A parse failure: byte position plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<JVal, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            pos,
            msg: "trailing characters after document",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError {
            pos: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(JVal::Str),
        Some(b't') => parse_literal(b, pos, "true", JVal::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JVal::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JVal::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(ParseError {
            pos: *pos,
            msg: "expected a JSON value",
        }),
    }
}

fn parse_literal(
    b: &[u8],
    pos: &mut usize,
    lit: &'static str,
    v: JVal,
) -> Result<JVal, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError {
            pos: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    // Strict RFC 8259 grammar: `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`.
    // The structure is validated *before* `f64::from_str`, so lenient forms
    // Rust's float parser accepts ("1.", ".5", "inf", "1e") can never leak
    // in: two shard peers must agree byte-for-byte on what a valid frame is.
    let start = *pos;
    let err = ParseError {
        pos: start,
        msg: "invalid number",
    };
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(err),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(err);
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(err);
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JVal::Num)
        .ok_or(err)
}

/// Exactly four ASCII hex digits starting at `at`. `from_str_radix` alone
/// would also accept a leading `+`, so digits are checked explicitly.
fn hex4(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at + 4)
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = hex4(b, *pos + 1).ok_or(ParseError {
                            pos: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        match hi {
                            // High surrogate: a low-surrogate escape must
                            // follow immediately; together they name one
                            // astral-plane scalar.
                            0xD800..=0xDBFF => {
                                if b.get(*pos + 1) != Some(&b'\\') || b.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(ParseError {
                                        pos: *pos,
                                        msg: "lone high surrogate in \\u escape",
                                    });
                                }
                                let lo = hex4(b, *pos + 3).ok_or(ParseError {
                                    pos: *pos,
                                    msg: "invalid \\u escape",
                                })?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(ParseError {
                                        pos: *pos,
                                        msg: "lone high surrogate in \\u escape",
                                    });
                                }
                                *pos += 6;
                                let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(scalar).expect("valid surrogate pair"));
                            }
                            0xDC00..=0xDFFF => {
                                return Err(ParseError {
                                    pos: *pos,
                                    msg: "lone low surrogate in \\u escape",
                                });
                            }
                            _ => out.push(char::from_u32(hi).expect("non-surrogate BMP scalar")),
                        }
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            msg: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole unescaped run in one slice. `"` and
                // `\` are ASCII, so a byte scan can never split a
                // multi-byte UTF-8 sequence, and validating only the run
                // keeps the parser linear (validating the remaining input
                // per character made megabyte shard frames quadratic).
                let start = *pos;
                while matches!(b.get(*pos), Some(&c) if c != b'"' && c != b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos]).map_err(|_| ParseError {
                    pos: start,
                    msg: "invalid utf-8 in string",
                })?;
                out.push_str(run);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JVal::Arr(items));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JVal::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(ParseError {
                pos: *pos,
                msg: "expected object key",
            });
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(ParseError {
                pos: *pos,
                msg: "expected ':'",
            });
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JVal::Obj(members));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

/// Escape a string for a JSON string literal (quotes not included). The
/// canonical implementation for the whole tree — `bench`'s emitter
/// delegates here.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite JSON number; non-finite floats become `null` (JSON has no
/// NaN) — the same policy the benchmark record uses.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Exact `f64` transport for shard frames: the 16 lowercase hex digits of
/// the IEEE-754 bit pattern. JSON numbers round-trip through decimal and
/// cannot carry NaN or distinguish `-0.0`; shard partial-state shipping
/// needs bit-exactness, so floats cross the wire as bit patterns.
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decode a [`f64_to_hex`] string. Exactly 16 hex digits; case-insensitive
/// on input, but a leading sign is rejected (`from_str_radix` would accept
/// `+`).
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encode one relation cell for the wire: `Null`/`Bool`/`Int`/`Float` map
/// to their JSON natives, strings are escaped, and the internal lineage
/// variants (`Ref`, `Pending` — never user-visible in a published result)
/// fall back to their debug rendering as strings.
pub fn value_json(v: &iolap_relation::Value) -> String {
    use iolap_relation::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => num(*f),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        other => format!("\"{}\"", escape(&format!("{other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Shard RPC frames (§8 scale-out: plan-fragment dispatch / partial-state ship)
// ---------------------------------------------------------------------------
//
// Frames must be *exact*: a decoded fragment folds on the shard and its
// partial merges into the coordinator's float state, so every number
// crosses as either a decimal integer string (i64) or an IEEE-754 bit
// pattern ([`f64_to_hex`]). Cells use tagged arrays — `["i","-42"]`,
// `["f","3ff8000000000000"]`, `["s","txt"]`, `["b",true]`, bare `null` —
// so the type survives independently of JSON number semantics. Lineage
// cells (`Ref`/`Pending`) are not shippable: encoders return `None` and
// the coordinator folds that batch locally (the `Ok(None)` contract of
// `ShardExec::fold`).

use iolap_core::{
    AccState, FoldFragment, FoldPartial, FragKind, FragSrc, ORow, PartialCall, PartialGroup,
};
use iolap_relation::Value;

/// Encode one relation cell as an exact tagged frame; `None` for lineage
/// variants (those rows cannot leave the coordinator).
pub fn cell_json(v: &Value) -> Option<String> {
    Some(match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("[\"b\",{b}]"),
        Value::Int(i) => format!("[\"i\",\"{i}\"]"),
        Value::Float(f) => format!("[\"f\",\"{}\"]", f64_to_hex(*f)),
        Value::Str(s) => format!("[\"s\",\"{}\"]", escape(s)),
        Value::Ref(_) | Value::Pending(_) => return None,
    })
}

/// Decode a [`cell_json`] frame. Strict: integer strings are canonical
/// decimal (no leading `+`), float strings are 16-hex-digit bit patterns.
pub fn cell_from_json(v: &JVal) -> Option<Value> {
    match v {
        JVal::Null => Some(Value::Null),
        JVal::Arr(items) => {
            let tag = items.first()?.as_str()?;
            match (tag, items.get(1)?) {
                ("b", JVal::Bool(b)) => Some(Value::Bool(*b)),
                ("i", JVal::Str(s)) if !s.starts_with('+') => s.parse::<i64>().ok().map(Value::Int),
                ("f", JVal::Str(s)) => f64_from_hex(s).map(Value::Float),
                ("s", JVal::Str(s)) => Some(Value::str(s)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn hex_vec(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", f64_to_hex(*x));
    }
    out.push(']');
}

fn hex_vec_from(v: &JVal) -> Option<Vec<f64>> {
    match v {
        JVal::Arr(items) => items
            .iter()
            .map(|w| w.as_str().and_then(f64_from_hex))
            .collect(),
        _ => None,
    }
}

/// Encode a row batch for `shard.fold`: each row is
/// `{"m":"<hexf64>","w":["hex",...]|null,"v":[cells]}` (multiplicity,
/// per-trial Poisson weights, values). `None` when any cell is lineage.
pub fn rows_json(rows: &[ORow]) -> Option<String> {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"m\":\"");
        out.push_str(&f64_to_hex(r.mult));
        out.push_str("\",\"w\":");
        match &r.weights {
            None => out.push_str("null"),
            Some(ws) => hex_vec(&mut out, ws),
        }
        out.push_str(",\"v\":[");
        for (j, v) in r.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&cell_json(v)?);
        }
        out.push_str("]}");
    }
    out.push(']');
    Some(out)
}

/// Decode a [`rows_json`] batch.
pub fn rows_from_json(v: &JVal) -> Option<Vec<ORow>> {
    let JVal::Arr(items) = v else { return None };
    let mut rows = Vec::with_capacity(items.len());
    for item in items {
        let mult = f64_from_hex(item.get("m")?.as_str()?)?;
        let weights = match item.get("w")? {
            JVal::Null => None,
            ws => Some(std::sync::Arc::from(hex_vec_from(ws)?)),
        };
        let JVal::Arr(vs) = item.get("v")? else {
            return None;
        };
        let values: Vec<Value> = vs.iter().map(cell_from_json).collect::<Option<_>>()?;
        rows.push(ORow {
            values: std::sync::Arc::from(values),
            mult,
            weights,
        });
    }
    Some(rows)
}

/// Encode a fold fragment for dispatch: aggregate id, group columns, and
/// per-call `[kind, srckind, arg]` triples. `None` when a literal argument
/// carries lineage (cannot happen for compiled fast plans; defensive).
pub fn frag_json(frag: &FoldFragment) -> Option<String> {
    let mut out = format!("{{\"agg\":{},\"g\":[", frag.agg_id);
    for (i, g) in frag.group_cols.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{g}");
    }
    out.push_str("],\"calls\":[");
    for (i, (k, s)) in frag.kinds.iter().zip(&frag.srcs).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match k {
            FragKind::Count => "c",
            FragKind::Sum => "s",
            FragKind::Avg => "a",
        };
        match s {
            FragSrc::Col(j) => {
                let _ = write!(out, "[\"{kind}\",\"c\",{j}]");
            }
            FragSrc::Lit(v) => {
                let _ = write!(out, "[\"{kind}\",\"l\",{}]", cell_json(v)?);
            }
        }
    }
    let _ = write!(out, "],\"trials\":{}}}", frag.trials);
    Some(out)
}

/// Decode a [`frag_json`] frame.
pub fn frag_from_json(v: &JVal) -> Option<FoldFragment> {
    let agg_id = u32::try_from(v.get("agg")?.as_u64()?).ok()?;
    let JVal::Arr(gs) = v.get("g")? else {
        return None;
    };
    let group_cols: Vec<usize> = gs
        .iter()
        .map(|g| g.as_u64().and_then(|n| usize::try_from(n).ok()))
        .collect::<Option<_>>()?;
    let JVal::Arr(calls) = v.get("calls")? else {
        return None;
    };
    let mut kinds = Vec::with_capacity(calls.len());
    let mut srcs = Vec::with_capacity(calls.len());
    for call in calls {
        let JVal::Arr(parts) = call else { return None };
        kinds.push(match parts.first()?.as_str()? {
            "c" => FragKind::Count,
            "s" => FragKind::Sum,
            "a" => FragKind::Avg,
            _ => return None,
        });
        srcs.push(match parts.get(1)?.as_str()? {
            "c" => FragSrc::Col(usize::try_from(parts.get(2)?.as_u64()?).ok()?),
            "l" => FragSrc::Lit(cell_from_json(parts.get(2)?)?),
            _ => return None,
        });
    }
    let trials = usize::try_from(v.get("trials")?.as_u64()?).ok()?;
    Some(FoldFragment {
        agg_id,
        group_cols,
        kinds,
        srcs,
        trials,
    })
}

/// Encode one partition partial for the ship leg: group keys as cells,
/// accumulator state and trial vectors as bit patterns.
pub fn partial_json(p: &FoldPartial) -> Option<String> {
    let mut out = format!("{{\"p\":{},\"groups\":[", p.partition);
    for (i, g) in p.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"k\":[");
        for (j, k) in g.key.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&cell_json(k)?);
        }
        let _ = write!(out, "],\"hc\":{},\"calls\":[", g.has_certain);
        for (j, c) in g.calls.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"acc\":");
            match &c.acc {
                AccState::Count { n } => {
                    let _ = write!(out, "[\"c\",\"{}\"]", f64_to_hex(*n));
                }
                AccState::Sum { sum, any } => {
                    let _ = write!(out, "[\"s\",\"{}\",{}]", f64_to_hex(*sum), any);
                }
                AccState::Avg { sum, n } => {
                    let _ = write!(
                        out,
                        "[\"a\",\"{}\",\"{}\"]",
                        f64_to_hex(*sum),
                        f64_to_hex(*n)
                    );
                }
            }
            out.push_str(",\"a\":");
            hex_vec(&mut out, &c.a);
            out.push_str(",\"b\":");
            hex_vec(&mut out, &c.b);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Some(out)
}

/// Decode a [`partial_json`] frame.
pub fn partial_from_json(v: &JVal) -> Option<FoldPartial> {
    let partition = usize::try_from(v.get("p")?.as_u64()?).ok()?;
    let JVal::Arr(gs) = v.get("groups")? else {
        return None;
    };
    let mut groups = Vec::with_capacity(gs.len());
    for g in gs {
        let JVal::Arr(ks) = g.get("k")? else {
            return None;
        };
        let key: Vec<Value> = ks.iter().map(cell_from_json).collect::<Option<_>>()?;
        let has_certain = g.get("hc")?.as_bool()?;
        let JVal::Arr(cs) = g.get("calls")? else {
            return None;
        };
        let mut calls = Vec::with_capacity(cs.len());
        for c in cs {
            let JVal::Arr(acc) = c.get("acc")? else {
                return None;
            };
            let state = match acc.first()?.as_str()? {
                "c" => AccState::Count {
                    n: f64_from_hex(acc.get(1)?.as_str()?)?,
                },
                "s" => AccState::Sum {
                    sum: f64_from_hex(acc.get(1)?.as_str()?)?,
                    any: acc.get(2)?.as_bool()?,
                },
                "a" => AccState::Avg {
                    sum: f64_from_hex(acc.get(1)?.as_str()?)?,
                    n: f64_from_hex(acc.get(2)?.as_str()?)?,
                },
                _ => return None,
            };
            calls.push(PartialCall {
                acc: state,
                a: hex_vec_from(c.get("a")?)?,
                b: hex_vec_from(c.get("b")?)?,
            });
        }
        groups.push(PartialGroup {
            key,
            has_certain,
            calls,
        });
    }
    Some(FoldPartial { partition, groups })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_round_trips_through_parse() {
        let v = JVal::obj(vec![
            ("ok", JVal::Bool(true)),
            ("label", JVal::str("he\"said\\\n\t\u{1}done")),
            ("n", JVal::Num(42.0)),
            ("f", JVal::Num(1.5)),
            ("nan", JVal::Num(f64::NAN)),
            ("list", JVal::Arr(vec![JVal::Null, JVal::str("x")])),
        ]);
        let line = v.render();
        // One line, no raw control characters on the wire.
        assert!(!line.contains('\n'));
        assert!(line.bytes().all(|b| b >= 0x20));
        let back = parse(&line).unwrap();
        assert_eq!(
            back.get("label").and_then(JVal::as_str),
            Some("he\"said\\\n\t\u{1}done")
        );
        assert_eq!(back.get("n").and_then(JVal::as_u64), Some(42));
        // Non-finite numbers render as null (the shared `num` policy).
        assert_eq!(back.get("nan"), Some(&JVal::Null));
        assert_eq!(v.to_string(), line);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JVal::Null);
        assert_eq!(parse("true").unwrap(), JVal::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JVal::Bool(false));
        assert_eq!(parse("42").unwrap(), JVal::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JVal::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), JVal::Str("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"op":"submit","query":"C2","opts":{"batches":8,"tags":["a","b"]},"x":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(JVal::as_str), Some("submit"));
        assert_eq!(
            v.get("opts")
                .and_then(|o| o.get("batches"))
                .and_then(JVal::as_u64),
            Some(8)
        );
        assert_eq!(v.get("x"), Some(&JVal::Null));
        match v.get("opts").and_then(|o| o.get("tags")) {
            Some(JVal::Arr(items)) => assert_eq!(items.len(), 2),
            other => panic!("tags: {other:?}"),
        }
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            JVal::Str("a\"b\\c\ndA".into())
        );
    }

    /// Unescaped runs are consumed slice-at-a-time, with escapes and
    /// multi-byte scalars at the run boundaries. The content check is the
    /// correctness guard; the megabyte scale is the performance guard —
    /// the per-character variant re-validated the remaining input on
    /// every byte, turning shard-sized fold frames quadratic (minutes to
    /// parse a 2.6 MB frame, timing out the coordinator's read).
    #[test]
    fn parses_long_strings_in_linear_time() {
        let chunk = "päy\\load\t→\u{1F300}";
        let body = chunk.repeat(120_000);
        let doc = format!("[\"{}\",\"{}\"]", escape(&body), escape(chunk));
        assert!(doc.len() > 2_000_000);
        match parse(&doc).unwrap() {
            JVal::Arr(items) => {
                assert_eq!(items[0], JVal::Str(body));
                assert_eq!(items[1], JVal::Str(chunk.into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_then_parse_roundtrips() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JVal::Str(nasty.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn value_json_covers_variants() {
        use iolap_relation::Value;
        assert_eq!(value_json(&Value::Null), "null");
        assert_eq!(value_json(&Value::Int(-3)), "-3");
        assert_eq!(value_json(&Value::Bool(true)), "true");
        assert_eq!(value_json(&Value::Float(1.5)), "1.5");
        assert_eq!(value_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_json(&Value::str("a\"b")), "\"a\\\"b\"");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JVal::Num(3.5).as_u64(), None);
        assert_eq!(JVal::Num(-1.0).as_u64(), None);
        assert_eq!(JVal::Num(7.0).as_u64(), Some(7));
    }

    #[test]
    fn as_u64_boundaries_are_exact() {
        // 2^53: the f64 integer-precision edge is still well inside u64.
        assert_eq!(JVal::Num(9007199254740992.0).as_u64(), Some(1u64 << 53));
        // Largest f64 strictly below 2^64 (2^64 - 2^11) converts exactly.
        let top = 18446744073709549568.0f64;
        assert_eq!(JVal::Num(top).as_u64(), Some(18446744073709549568));
        // 2^64 itself (== `u64::MAX as f64` after rounding) must NOT
        // saturate to u64::MAX — the old inclusive bound admitted it.
        assert_eq!(JVal::Num(18446744073709551616.0).as_u64(), None);
        assert_eq!(JVal::Num(u64::MAX as f64).as_u64(), None);
        // Negative zero is a representation of zero ("-0" is valid JSON).
        assert_eq!(JVal::Num(-0.0).as_u64(), Some(0));
        assert_eq!(JVal::Num(f64::NAN).as_u64(), None);
        assert_eq!(JVal::Num(f64::INFINITY).as_u64(), None);
    }

    #[test]
    fn parse_number_enforces_json_grammar() {
        // Forms f64::from_str would happily take but RFC 8259 rejects.
        for bad in [
            "1.", ".5", "1e", "1e+", "1e-", "-", "+1", "1.e3", "0x10", "inf", "nan", "--1", "-.5",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Leading zeros split into two tokens → trailing-garbage error.
        assert!(parse("01").is_err());
        assert!(parse("-01").is_err());
        // Digit-soup inside a composite document fails at the number.
        assert!(parse("[1-2]").is_err());
        assert!(parse("[1e+,2]").is_err());
        // The strict grammar still admits every legitimate shape.
        assert_eq!(parse("0").unwrap(), JVal::Num(0.0));
        assert_eq!(parse("-0").unwrap(), JVal::Num(-0.0));
        assert_eq!(parse("10.25").unwrap(), JVal::Num(10.25));
        assert_eq!(parse("1e3").unwrap(), JVal::Num(1000.0));
        assert_eq!(parse("1E+2").unwrap(), JVal::Num(100.0));
        assert_eq!(parse("-2.5e-1").unwrap(), JVal::Num(-0.25));
        assert_eq!(parse("0.125").unwrap(), JVal::Num(0.125));
    }

    #[test]
    fn parse_string_reassembles_surrogate_pairs() {
        // 😀 is U+1F600 = \uD83D\uDE00 — one scalar, not two U+FFFD.
        assert_eq!(
            parse(r#""\uD83D\uDE00""#).unwrap(),
            JVal::Str("\u{1F600}".into())
        );
        // Lowercase hex and a BMP neighbour in the same string.
        assert_eq!(
            parse(r#""x\ud83d\ude00y\u00e9""#).unwrap(),
            JVal::Str("x\u{1F600}y\u{e9}".into())
        );
    }

    #[test]
    fn parse_string_rejects_lone_surrogates() {
        // High surrogate with no continuation, wrong continuation, or a
        // bare low surrogate: all hard errors, never U+FFFD smoothing.
        for bad in [
            r#""\uD83D""#,
            r#""\uD83Dx""#,
            r#""\uD83D\u0041""#,
            r#""\uDC00""#,
            r#""a\uDE00b""#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Sign-bearing hex is not hex ('+' sneaks through from_str_radix).
        assert!(parse(r#""\u+123""#).is_err());
    }

    #[test]
    fn escape_parse_roundtrip_astral_and_control_property() {
        // Deterministic property sweep: strings drawn from an alphabet
        // that mixes ASCII, control chars, BMP accents, and astral-plane
        // scalars must survive escape → quote → parse unchanged.
        let alphabet: Vec<char> = ('\u{0}'..='\u{1f}')
            .chain(['"', '\\', '/', 'a', 'Z', '\u{e9}', '\u{2603}', '\u{fffd}'])
            .chain(['\u{1F600}', '\u{1F680}', '\u{10FFFF}', '\u{10000}'])
            .collect();
        let mut state = 0x243F6A8885A308D3u64; // fixed seed: π digits
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        for len in 0..64usize {
            let s: String = (0..len).map(|_| alphabet[next(alphabet.len())]).collect();
            let doc = format!("\"{}\"", escape(&s));
            assert_eq!(parse(&doc).unwrap(), JVal::Str(s.clone()), "doc {doc:?}");
        }
        // And explicitly through the \u path: escaped control char plus a
        // raw astral char in the same document.
        let doc = "\"\\u0001\u{1F600}\"";
        assert_eq!(parse(doc).unwrap(), JVal::Str("\u{1}\u{1F600}".into()));
    }

    #[test]
    fn f64_hex_roundtrip_is_bit_exact() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let hex = f64_to_hex(x);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {hex}");
        }
        // NaN payload bits survive (equality on bits, not value).
        let nan = f64::from_bits(0x7ff8000000abcdef);
        assert_eq!(
            f64_from_hex(&f64_to_hex(nan)).unwrap().to_bits(),
            nan.to_bits()
        );
        // -0.0 and 0.0 stay distinguishable.
        assert_ne!(f64_to_hex(0.0), f64_to_hex(-0.0));
        assert_eq!(f64_from_hex("xyz"), None);
        assert_eq!(f64_from_hex("+ff8000000abcdef"), None);
        assert_eq!(f64_from_hex("00"), None);
    }

    #[test]
    fn cell_frames_roundtrip_exactly() {
        let cells = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::Float(-0.0),
            Value::Float(1.0 / 3.0),
            Value::str("a\"b\n😀"),
        ];
        for v in &cells {
            let doc = cell_json(v).unwrap();
            let back = cell_from_json(&parse(&doc).unwrap()).unwrap();
            // Bit-level float equality, not PartialEq smoothing.
            match (v, &back) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(*v, back, "via {doc}"),
            }
        }
        // Lineage cells are unshippable by contract.
        let r = Value::Ref(iolap_relation::AggRef {
            agg: 0,
            column: 0,
            key: std::sync::Arc::from(Vec::new()),
        });
        assert_eq!(cell_json(&r), None);
        // Decoder rejects sign-lenient integer strings.
        assert_eq!(cell_from_json(&parse("[\"i\",\"+3\"]").unwrap()), None);
        assert_eq!(cell_from_json(&parse("[\"f\",\"zz\"]").unwrap()), None);
    }

    #[test]
    fn row_frames_roundtrip_exactly() {
        let rows = vec![
            ORow {
                values: std::sync::Arc::from(vec![Value::Int(1), Value::Float(2.5)]),
                mult: 1.0,
                weights: None,
            },
            ORow {
                values: std::sync::Arc::from(vec![Value::str("k"), Value::Null]),
                mult: -1.0,
                weights: Some(std::sync::Arc::from(vec![0.0, 2.0, 1.0])),
            },
        ];
        let doc = rows_json(&rows).unwrap();
        let back = rows_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].values[..], rows[0].values[..]);
        assert_eq!(back[1].mult.to_bits(), (-1.0f64).to_bits());
        assert_eq!(back[1].weights.as_deref(), Some(&[0.0, 2.0, 1.0][..]));
        // A lineage cell anywhere poisons the whole batch → None.
        let tainted = vec![ORow {
            values: std::sync::Arc::from(vec![Value::Ref(iolap_relation::AggRef {
                agg: 1,
                column: 0,
                key: std::sync::Arc::from(Vec::new()),
            })]),
            mult: 1.0,
            weights: None,
        }];
        assert_eq!(rows_json(&tainted), None);
    }

    #[test]
    fn frag_and_partial_frames_roundtrip() {
        let frag = FoldFragment {
            agg_id: 9,
            group_cols: vec![0, 2],
            kinds: vec![FragKind::Count, FragKind::Sum, FragKind::Avg],
            srcs: vec![
                FragSrc::Col(1),
                FragSrc::Lit(Value::Float(0.5)),
                FragSrc::Col(3),
            ],
            trials: 4,
        };
        let doc = frag_json(&frag).unwrap();
        assert_eq!(frag_from_json(&parse(&doc).unwrap()).unwrap(), frag);

        let partial = FoldPartial {
            partition: 3,
            groups: vec![PartialGroup {
                key: vec![Value::str("g"), Value::Int(2)],
                has_certain: true,
                calls: vec![
                    PartialCall {
                        acc: AccState::Count { n: 5.0 },
                        a: vec![4.0, 6.0],
                        b: vec![0.0, 0.0],
                    },
                    PartialCall {
                        acc: AccState::Sum {
                            sum: -0.0,
                            any: false,
                        },
                        a: vec![1.5, 2.5],
                        b: vec![1.0, 1.0],
                    },
                    PartialCall {
                        acc: AccState::Avg { sum: 7.0, n: 2.0 },
                        a: vec![],
                        b: vec![],
                    },
                ],
            }],
        };
        let doc = partial_json(&partial).unwrap();
        let back = partial_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back, partial);
        // -0.0 survived as a bit pattern (PartialEq would also pass for
        // +0.0 — check the bits explicitly).
        match back.groups[0].calls[1].acc {
            AccState::Sum { sum, any } => {
                assert_eq!(sum.to_bits(), (-0.0f64).to_bits());
                assert!(!any);
            }
            _ => panic!("wrong acc kind"),
        }
    }
}
