//! Client-facing session surface: specs, lifecycle states, handles.
//!
//! A session wraps one `IolapDriver` behind the lifecycle
//! `Queued → Running → Draining → Done` (or the terminal `Cancelled` /
//! `Failed`). Clients never touch the driver: they hold a [`SessionHandle`]
//! and poll ([`SessionHandle::try_recv`]) or block with a bound
//! ([`SessionHandle::recv_timeout`]) for per-batch reports, cancel at any
//! point (including mid-recovery — the in-flight batch, replays and all,
//! runs to its boundary and its report is still delivered), and read a
//! [`SessionSummary`] at the end.
//!
//! Every blocking client call in this module is timeout-bounded
//! (`Condvar::wait_timeout` in a deadline loop) — srclint rule L006 rejects
//! unbounded parks anywhere outside the scheduler's worker-pool core.

use crate::policy::StopPolicy;
use crate::scheduler::Shared;
use iolap_core::BatchReport;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted; waiting for a slot or for its first batch to be scheduled.
    Queued,
    /// At least one batch dispatched; the driver still has work.
    Running,
    /// All compute finished (completed, target met) but undelivered reports
    /// remain in the buffer. The slot and driver memory are already freed.
    Draining,
    /// Finished and fully drained.
    Done,
    /// Cancelled by the client or shed by admission control.
    Cancelled,
    /// The driver returned an error or panicked through recovery.
    Failed,
}

impl SessionState {
    /// Stable lowercase name (wire protocol, reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Draining => "draining",
            SessionState::Done => "done",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed => "failed",
        }
    }

    /// No further reports will ever be produced. Reports already buffered
    /// (e.g. the in-flight batch of a cancelled session) remain receivable
    /// via `try_recv`/`recv_timeout`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionState::Done | SessionState::Cancelled | SessionState::Failed
        )
    }

    /// No further compute will happen (terminal, or draining a buffer).
    pub fn is_finished(&self) -> bool {
        self.is_terminal() || matches!(self, SessionState::Draining)
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a session ended (more detail than the terminal [`SessionState`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEnd {
    /// Every mini-batch ran; the final answer is exact.
    Completed,
    /// The [`StopPolicy`] was satisfied after `batches` batches, strictly
    /// before full-data completion.
    TargetMet {
        /// Number of batches delivered when the policy fired.
        batches: usize,
    },
    /// Cancelled by the client.
    Cancelled,
    /// Shed from the wait queue by the memory-ceiling EDF policy.
    Shed,
    /// Driver error or panic; the message is the driver's own.
    Failed(String),
}

impl SessionEnd {
    /// Stable lowercase label (wire protocol, reports).
    pub fn label(&self) -> &'static str {
        match self {
            SessionEnd::Completed => "completed",
            SessionEnd::TargetMet { .. } => "target_met",
            SessionEnd::Cancelled => "cancelled",
            SessionEnd::Shed => "shed",
            SessionEnd::Failed(_) => "failed",
        }
    }
}

/// Everything a client declares about a session at submit time.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Human-readable label carried through reports and the load generator.
    pub label: String,
    /// When to retire the session early (default: run to completion).
    pub policy: StopPolicy,
    /// Scheduling priority: *lower is more urgent* (0 preempts 1 at every
    /// batch boundary). Within a priority class scheduling is round-robin.
    pub priority: u8,
    /// Optional deadline used **only** by the memory-ceiling shedding
    /// policy (earliest deadline shed first); it does not stop a running
    /// session — use [`StopPolicy::Deadline`] for that. Expressed relative
    /// to submit time.
    pub deadline: Option<Duration>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            label: String::new(),
            policy: StopPolicy::complete(),
            priority: 1,
            deadline: None,
        }
    }
}

impl SessionSpec {
    /// Spec with a label and all defaults.
    pub fn named(label: impl Into<String>) -> Self {
        SessionSpec {
            label: label.into(),
            ..SessionSpec::default()
        }
    }

    /// Set the stop policy.
    pub fn policy(mut self, policy: StopPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the priority (lower = more urgent).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Set the shedding deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why `Server::submit` refused a session. Admission *rejects explicitly*
/// rather than blocking the caller — backpressure is visible, never silent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Live slots and the wait queue are both full.
    QueueFull {
        /// Sessions currently holding live slots.
        live: usize,
        /// Sessions currently waiting for a slot.
        queued: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull { live, queued } => write!(
                f,
                "admission rejected: {live} live sessions and {queued} queued (both at capacity)"
            ),
            AdmitError::ShuttingDown => write!(f, "admission rejected: server is shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// End-of-life snapshot of a session (also readable mid-flight).
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Server-assigned session id (admission order).
    pub id: u64,
    /// The label from the [`SessionSpec`].
    pub label: String,
    /// Current lifecycle state.
    pub state: SessionState,
    /// End reason, once finished.
    pub end: Option<SessionEnd>,
    /// Batches delivered so far.
    pub batches_run: usize,
    /// Total mini-batches the driver was built with.
    pub total_batches: usize,
    /// Reports buffered but not yet received by the client.
    pub pending_reports: usize,
    /// Wall-clock from submit to finish (`None` while still working) —
    /// the "time to target" axis of the serving benchmark.
    pub elapsed: Option<Duration>,
    /// Global finish-order sequence number (deterministic under one
    /// worker; used by the shed-order tests).
    pub end_seq: Option<u64>,
    /// Last memory-accounting reading (checkpoints + operator state).
    pub mem_bytes: usize,
}

impl SessionSummary {
    /// True when the session stopped strictly before full-data completion
    /// because its accuracy/latency contract was met.
    pub fn stopped_early(&self) -> bool {
        matches!(self.end, Some(SessionEnd::TargetMet { .. }))
    }
}

/// A client's handle to one submitted session. Cloneable and `Send`; all
/// methods are safe to call from any thread at any lifecycle point.
#[derive(Clone)]
pub struct SessionHandle {
    pub(crate) shared: Arc<Shared>,
    pub(crate) id: u64,
}

impl SessionHandle {
    /// Server-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pop the next buffered batch report, if any (never blocks).
    pub fn try_recv(&self) -> Option<BatchReport> {
        self.shared.pop_report(self.id)
    }

    /// Block (bounded) for the next batch report. Returns `None` when the
    /// timeout elapses *or* when the session is terminal and drained — use
    /// [`SessionHandle::state`] to tell the two apart.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<BatchReport> {
        self.shared.recv_report(self.id, timeout)
    }

    /// Collect every remaining report until the session is terminal,
    /// waiting at most `step_timeout` for each. Stops early (returning what
    /// it has) if a wait times out with no progress and no finished state —
    /// a liveness escape hatch, not the normal exit.
    pub fn drain(&self, step_timeout: Duration) -> Vec<BatchReport> {
        let mut out = Vec::new();
        loop {
            match self.recv_timeout(step_timeout) {
                Some(r) => out.push(r),
                None => {
                    if self.state().is_terminal() {
                        return out;
                    }
                    if !self.state().is_finished() && self.try_recv().is_none() {
                        // Timed out while the session still runs: give the
                        // caller what exists rather than spinning forever.
                        return out;
                    }
                }
            }
        }
    }

    /// Request cancellation. Queued (or buffered-waiting) sessions die
    /// immediately; a session whose batch is mid-step — including one
    /// replaying a fault-recovery cascade — finishes that batch boundary,
    /// delivers its report, and then terminalizes.
    pub fn cancel(&self) {
        self.shared.cancel(self.id);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.shared.session_state(self.id)
    }

    /// Block (bounded) until no further compute will happen (`Draining` or
    /// terminal). Returns whether that point was reached within `timeout`.
    pub fn join(&self, timeout: Duration) -> bool {
        self.shared.wait_finished(self.id, timeout)
    }

    /// Snapshot of the session's bookkeeping.
    pub fn summary(&self) -> SessionSummary {
        self.shared.summary(self.id)
    }
}

impl fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .finish()
    }
}
