//! Shard pools: scale-out execution of aggregate fold fragments (§8).
//!
//! Two [`ShardExec`] implementations share one partitioning discipline
//! (the `iolap_core::shard` grid — see its module docs for the
//! bit-identity rules):
//!
//! * [`ThreadShardPool`] — in-process shards on scoped threads. Each
//!   shard owns a contiguous *block* of grid partitions and returns one
//!   partial per partition; "bytes shipped" is the estimated serialized
//!   size of those partials.
//! * [`TcpShardPool`] — the same topology over the NDJSON wire: worker
//!   processes run [`serve_shard`] accept loops, the coordinator holds
//!   one persistent connection per worker and dispatches
//!   `shard.fold` frames ([`wire::frag_json`] + [`wire::rows_json`]),
//!   receiving partial-state frames back ([`wire::partial_json`]).
//!   "Bytes shipped" is the measured byte length of the partial-state
//!   response lines — the paper's data-shipped axis.
//!
//! Both pools honor the `Ok(None)` fallback contract: anything that
//! cannot be shipped (lineage cells in a row, an unencodable literal)
//! makes `fold` return `Ok(None)` and the coordinator folds the same
//! grid locally. Shard-side failures (dead connection, malformed frame)
//! are `Err`: silently degrading to a different merge tree is exactly
//! what the determinism contract forbids, so the batch fails loudly
//! instead.

use crate::wire::{
    self, escape, frag_from_json, frag_json, partial_from_json, partial_json, rows_from_json,
    rows_json, JVal,
};
use iolap_core::shard::partition_bounds;
use iolap_core::trace::{SpanId, Tracer};
use iolap_core::{
    EngineError, FoldFragment, FoldPartial, ORow, ShardExec, ShardTraceCtx, ShardWorkerStats,
};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One worker-journal span summary, as shipped back over the wire:
/// `(name, payload count, detail)`. No timestamps cross the shard
/// boundary — the coordinator stitches these as instants under the
/// dispatching operator span, so normalized exports stay byte-stable.
type SpanSummary = (String, u64, String);

/// A remote fold's yield: `None` when the block cannot ride the wire and
/// the coordinator must fold locally on the same grid.
type RemoteFold = Result<Option<(Vec<FoldPartial>, Vec<SpanSummary>)>, EngineError>;

/// Map a wire span name back to the static name table. Unknown names
/// (a newer worker) degrade to a generic label instead of an error.
fn summary_name(name: &str) -> &'static str {
    match name {
        "shard.worker.fold" => "shard.worker.fold",
        "shard.worker.partials" => "shard.worker.partials",
        _ => "shard.worker.span",
    }
}

/// Stitch worker span summaries under the coordinator's trace context.
/// Called after *all* blocks have joined, in block order, so the journal
/// is deterministic for a fixed topology.
fn stitch_summaries(trace: &ShardTraceCtx<'_>, summaries: &[SpanSummary]) {
    for (name, n, detail) in summaries {
        trace.tracer.instant(
            summary_name(name),
            trace.batch,
            trace.parent,
            *n,
            detail.clone(),
        );
    }
}

// ---------------------------------------------------------------------------
// In-process pool
// ---------------------------------------------------------------------------

/// In-process shard pool: `n` scoped threads, each folding a contiguous
/// block of grid partitions via `fold_fragment_partition`. The partials
/// carry global partition indices, so the coordinator's partition-order
/// merge is identical to any other topology.
#[derive(Debug)]
pub struct ThreadShardPool {
    shards: usize,
    shipped: AtomicU64,
    stats: Mutex<Vec<ShardWorkerStats>>,
}

impl ThreadShardPool {
    /// A pool of `shards` workers (clamped to at least 1).
    pub fn new(shards: usize) -> ThreadShardPool {
        let shards = shards.max(1);
        ThreadShardPool {
            shards,
            shipped: AtomicU64::new(0),
            stats: Mutex::new(
                (0..shards)
                    .map(|shard| ShardWorkerStats {
                        shard,
                        ..ShardWorkerStats::default()
                    })
                    .collect(),
            ),
        }
    }

    /// Shared body of `fold`/`fold_traced`: fold every partition block
    /// (threaded when there is more than one), then — only on full
    /// success — account per-shard counters and stitch trace summaries
    /// in block order.
    fn fold_impl(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
        trace: Option<&ShardTraceCtx<'_>>,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        let bounds: Vec<(usize, usize)> = partition_bounds(rows.len()).collect();
        if bounds.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let per = bounds.len().div_ceil(self.shards).max(1);
        let blocks: Vec<&[(usize, usize)]> = bounds.chunks(per).collect();
        let results: Vec<Option<Vec<FoldPartial>>> = if blocks.len() == 1 {
            vec![fold_block(frag, rows, certain, blocks[0], 0)]
        } else {
            // One scoped thread per partition block. A panic in a shard
            // thread surfaces through `join` and becomes an EngineError,
            // mirroring the in-operator worker pool.
            std::thread::scope(|scope| {
                let handles: Vec<_> = blocks
                    .iter()
                    .enumerate()
                    .map(|(b, block)| {
                        scope.spawn(move || fold_block(frag, rows, certain, block, b * per))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => Ok(r),
                        Err(payload) => Err(EngineError::Plan(format!(
                            "shard worker panicked: {}",
                            iolap_core::faults::panic_message(payload)
                        ))),
                    })
                    .collect::<Result<Vec<_>, EngineError>>()
            })?
        };
        // Any unfoldable block means the whole fold falls back locally:
        // no counters move, exactly as if the pool was never consulted.
        let mut per_block = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Some(ps) => per_block.push(ps),
                None => return Ok(None),
            }
        }
        let mut out = Vec::with_capacity(bounds.len());
        let mut stats = lock_stats(&self.stats);
        for (b, mut ps) in per_block.into_iter().enumerate() {
            let bytes: u64 = ps.iter().map(|p| p.approx_bytes() as u64).sum();
            self.shipped.fetch_add(bytes, Ordering::Relaxed);
            let w = &mut stats[b];
            w.folds += 1;
            w.acked += ps.len() as u64;
            w.response_bytes += bytes;
            if let Some(t) = trace {
                t.tracer.instant(
                    "shard.worker.fold",
                    t.batch,
                    t.parent,
                    b as u64,
                    format!("partitions={} partials={}", blocks[b].len(), ps.len()),
                );
            }
            out.append(&mut ps);
        }
        Ok(Some(out))
    }
}

/// Poison-recovering stats lock: a panicked fold thread never holds this
/// (accounting happens after `join`), so the data is always consistent.
fn lock_stats(
    m: &Mutex<Vec<ShardWorkerStats>>,
) -> std::sync::MutexGuard<'_, Vec<ShardWorkerStats>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Fold a contiguous block of grid partitions; partials are re-indexed
/// from block-local to global partition numbers. `None` bubbles up from
/// any partition the interpreter cannot take (lineage cells).
fn fold_block(
    frag: &FoldFragment,
    rows: &[ORow],
    certain: bool,
    block: &[(usize, usize)],
    first_partition: usize,
) -> Option<Vec<FoldPartial>> {
    let mut out = Vec::with_capacity(block.len());
    for (off, &(s, e)) in block.iter().enumerate() {
        // One grid slice at a time: the interpreter sees ≤ PARTITION_ROWS
        // rows and labels the result partition 0; re-index to global.
        let mut partials = iolap_core::fold_fragment_partition(frag, &rows[s..e], certain)?;
        for p in &mut partials {
            p.partition = first_partition + off;
        }
        out.append(&mut partials);
    }
    Some(out)
}

impl ShardExec for ThreadShardPool {
    fn shards(&self) -> usize {
        self.shards
    }

    fn fold(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        self.fold_impl(frag, rows, certain, None)
    }

    fn fold_traced(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
        trace: Option<&ShardTraceCtx<'_>>,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        self.fold_impl(frag, rows, certain, trace)
    }

    fn bytes_shipped(&self) -> u64 {
        self.shipped.load(Ordering::Relaxed)
    }

    fn worker_stats(&self) -> Vec<ShardWorkerStats> {
        lock_stats(&self.stats).clone()
    }
}

// ---------------------------------------------------------------------------
// Worker side of the wire protocol
// ---------------------------------------------------------------------------

/// Per-connection worker-side counters, reported by `shard.stats`.
#[derive(Debug, Default)]
pub struct ShardWorkerState {
    /// `shard.fold` requests served.
    pub folds: u64,
    /// Partials acknowledged as merged by the coordinator (`shard.ack`).
    pub acked: u64,
    /// Bytes of response lines written back to the coordinator.
    pub response_bytes: u64,
}

fn err_frame(kind: &str, msg: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"msg\":\"{}\"}}}}",
        escape(kind),
        escape(msg)
    )
}

/// Handle one NDJSON request line of the shard worker protocol. Pure
/// dispatch over `state`, so it is unit-testable without sockets:
///
/// * `{"op":"shard.ping"}` → `{"ok":true,"pong":true}`
/// * `{"op":"shard.fold","base":B,"certain":C,"frag":F,"rows":R}` →
///   `{"ok":true,"partials":[...]}` — folds the rows on the grid and
///   returns one partial per partition, indices offset by `base` (the
///   global index of the block's first partition). An optional
///   `"trace":{"span":S,"batch":B}` member makes the worker run the fold
///   under a local journal and append `"spans":[{"name","n","d"}]`
///   summaries (no timestamps) for the coordinator to stitch.
/// * `{"op":"shard.ack","partials":N}` → `{"ok":true}` — coordinator
///   merged `N` partials from this connection.
/// * `{"op":"shard.stats"}` → `{"ok":true,"stats":{...}}`.
pub fn handle_shard_request(state: &mut ShardWorkerState, line: &str) -> String {
    let req = match wire::parse(line) {
        Ok(v) => v,
        Err(e) => return err_frame("bad_json", &e.to_string()),
    };
    match req.get("op").and_then(JVal::as_str) {
        Some("shard.ping") => "{\"ok\":true,\"pong\":true}".to_string(),
        Some("shard.stats") => format!(
            "{{\"ok\":true,\"stats\":{{\"folds\":{},\"acked\":{},\"response_bytes\":{}}}}}",
            state.folds, state.acked, state.response_bytes
        ),
        Some("shard.ack") => {
            state.acked += req
                .get("partials")
                .and_then(JVal::as_u64)
                .unwrap_or_default();
            "{\"ok\":true}".to_string()
        }
        Some("shard.fold") => {
            let Some(frag) = req.get("frag").and_then(frag_from_json) else {
                return err_frame("bad_request", "missing or malformed frag");
            };
            let Some(rows) = req.get("rows").and_then(rows_from_json) else {
                return err_frame("bad_request", "missing or malformed rows");
            };
            let Some(certain) = req.get("certain").and_then(JVal::as_bool) else {
                return err_frame("bad_request", "missing certain flag");
            };
            let base = match req.get("base").and_then(JVal::as_u64) {
                Some(b) => b as usize,
                None => return err_frame("bad_request", "missing base partition"),
            };
            // A traced fold runs under a worker-local journal: no shared
            // clock with the coordinator, so only name/count/detail (never
            // timestamps) flow back as compact span summaries.
            let trace_parent = req.get("trace").map(|t| {
                (
                    t.get("span").and_then(JVal::as_u64).unwrap_or(0),
                    t.get("batch").and_then(JVal::as_u64).unwrap_or(0) as usize,
                )
            });
            let journal = trace_parent.map(|(_, batch)| {
                let t = Tracer::new();
                let span = t.begin("shard.worker.fold", batch, SpanId::NONE);
                (t, span, batch)
            });
            let Some(mut partials) = iolap_core::fold_fragment_partition(&frag, &rows, certain)
            else {
                // Decoded rows can never carry lineage (the codec rejects
                // it), so this is defensive — but the coordinator must
                // hear "unfoldable", not a partial, to fall back.
                return err_frame("unfoldable", "fragment not interpretable over these rows");
            };
            state.folds += 1;
            let mut out = String::from("{\"ok\":true,\"partials\":[");
            for (i, p) in partials.iter_mut().enumerate() {
                p.partition += base;
                if i > 0 {
                    out.push(',');
                }
                match partial_json(p) {
                    Some(frame) => out.push_str(&frame),
                    None => return err_frame("unfoldable", "partial not encodable"),
                }
            }
            out.push(']');
            if let Some((t, span, batch)) = journal {
                t.instant(
                    "shard.worker.partials",
                    batch,
                    span,
                    partials.len() as u64,
                    format!("base={base}"),
                );
                t.end(
                    "shard.worker.fold",
                    batch,
                    span,
                    SpanId::NONE,
                    rows.len() as u64,
                );
                let spans = JVal::Arr(
                    t.events()
                        .iter()
                        .filter(|e| e.kind != iolap_core::trace::EventKind::Begin)
                        .map(|e| {
                            JVal::obj(vec![
                                ("name", JVal::str(e.name)),
                                ("n", JVal::Num(e.n as f64)),
                                ("d", JVal::str(&e.detail)),
                            ])
                        })
                        .collect(),
                );
                out.push_str(",\"spans\":");
                out.push_str(&spans.render());
            }
            out.push('}');
            out
        }
        _ => err_frame("bad_request", "unknown op"),
    }
}

/// Worker accept loop: one thread per coordinator connection, each line
/// through [`handle_shard_request`]. Runs until the listener errors.
pub fn serve_shard(listener: TcpListener) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        std::thread::spawn(move || {
            let mut state = ShardWorkerState::default();
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_shard_request(&mut state, line.trim());
                state.response_bytes += response.len() as u64;
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    break;
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Coordinator side of the wire protocol
// ---------------------------------------------------------------------------

/// How long the coordinator waits on a worker response before declaring
/// the shard dead. Bounded blocking: no indefinite `read_line`.
const SHARD_READ_TIMEOUT: Duration = Duration::from_secs(30);

struct ShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ShardConn {
    /// One request/response exchange. Returns the response line and its
    /// byte length (response bytes are the shipped partial state).
    fn exchange(&mut self, request: &str) -> Result<String, EngineError> {
        let io_err = |e: std::io::Error| EngineError::Plan(format!("shard connection: {e}"));
        self.writer.write_all(request.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(EngineError::Plan("shard connection closed".to_string()));
        }
        Ok(line)
    }
}

/// Coordinator-side pool over persistent TCP connections to
/// [`serve_shard`] workers. Partition blocks are assigned to workers
/// round-robin-contiguously (worker `i` gets block `i`), requests run
/// concurrently on scoped threads, and the measured response-line bytes
/// accumulate into [`ShardExec::bytes_shipped`].
pub struct TcpShardPool {
    conns: Vec<Mutex<ShardConn>>,
    shipped: AtomicU64,
    stats: Mutex<Vec<ShardWorkerStats>>,
}

impl TcpShardPool {
    /// Connect to every worker address; fails if any is unreachable.
    pub fn connect<A: std::net::ToSocketAddrs>(addrs: &[A]) -> std::io::Result<TcpShardPool> {
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(SHARD_READ_TIMEOUT))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            conns.push(Mutex::new(ShardConn {
                writer: stream,
                reader,
            }));
        }
        let stats = (0..conns.len())
            .map(|shard| ShardWorkerStats {
                shard,
                ..ShardWorkerStats::default()
            })
            .collect();
        Ok(TcpShardPool {
            conns,
            shipped: AtomicU64::new(0),
            stats: Mutex::new(stats),
        })
    }

    /// Round-trip a `shard.ping` on every connection.
    pub fn ping(&self) -> Result<(), EngineError> {
        for conn in &self.conns {
            let mut conn = conn
                .lock()
                .map_err(|_| EngineError::Plan("shard connection poisoned".to_string()))?;
            let line = conn.exchange("{\"op\":\"shard.ping\"}")?;
            let ok = wire::parse(line.trim())
                .ok()
                .and_then(|v| v.get("ok").and_then(JVal::as_bool))
                .unwrap_or(false);
            if !ok {
                return Err(EngineError::Plan("shard ping rejected".to_string()));
            }
        }
        Ok(())
    }

    /// Dispatch one partition block to one worker; parse the partials
    /// (and, when `trace_field` is set, the worker's span summaries).
    #[allow(clippy::too_many_arguments)] // internal dispatch plumbing
    fn fold_block_remote(
        &self,
        conn_idx: usize,
        frag_frame: &str,
        rows: &[ORow],
        certain: bool,
        block: &[(usize, usize)],
        first_partition: usize,
        trace_field: Option<&str>,
    ) -> RemoteFold {
        let (lo, hi) = (block[0].0, block[block.len() - 1].1);
        let Some(rows_frame) = rows_json(&rows[lo..hi]) else {
            return Ok(None); // lineage cell → coordinator folds locally
        };
        let trace = trace_field.unwrap_or("");
        let request = format!(
            "{{\"op\":\"shard.fold\",\"base\":{first_partition},\"certain\":{certain}{trace},\"frag\":{frag_frame},\"rows\":{rows_frame}}}"
        );
        // A poisoned lock means another dispatch thread died mid-exchange;
        // the stream may hold a half-written frame, so fail the fold
        // rather than panic (or worse, desync the line protocol).
        let mut conn = self.conns[conn_idx]
            .lock()
            .map_err(|_| EngineError::Plan("shard connection poisoned".to_string()))?;
        let line = conn.exchange(&request)?;
        // The response line *is* the shipped partial state.
        self.shipped.fetch_add(line.len() as u64, Ordering::Relaxed);
        let resp = wire::parse(line.trim())
            .map_err(|e| EngineError::Plan(format!("shard response: {e}")))?;
        if resp.get("ok").and_then(JVal::as_bool) != Some(true) {
            let kind = resp
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JVal::as_str)
                .unwrap_or("unknown");
            if kind == "unfoldable" {
                return Ok(None);
            }
            return Err(EngineError::Plan(format!("shard fold failed: {kind}")));
        }
        let Some(JVal::Arr(items)) = resp.get("partials") else {
            return Err(EngineError::Plan("shard response missing partials".into()));
        };
        let partials: Option<Vec<FoldPartial>> = items.iter().map(partial_from_json).collect();
        let partials =
            partials.ok_or_else(|| EngineError::Plan("malformed shard partial".to_string()))?;
        let summaries: Vec<SpanSummary> = match resp.get("spans") {
            Some(JVal::Arr(spans)) => spans
                .iter()
                .map(|s| {
                    (
                        s.get("name")
                            .and_then(JVal::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        s.get("n").and_then(JVal::as_u64).unwrap_or_default(),
                        s.get("d")
                            .and_then(JVal::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        let n = partials.len();
        let ack = format!("{{\"op\":\"shard.ack\",\"partials\":{n}}}");
        conn.exchange(&ack)?;
        drop(conn);
        {
            let mut stats = lock_stats(&self.stats);
            let w = &mut stats[conn_idx];
            w.folds += 1;
            w.acked += n as u64;
            w.response_bytes += line.len() as u64;
        }
        Ok(Some((partials, summaries)))
    }

    /// Shared body of `fold`/`fold_traced` over the wire topology.
    fn fold_impl(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
        trace: Option<&ShardTraceCtx<'_>>,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        let Some(frag_frame) = frag_json(frag) else {
            return Ok(None);
        };
        let bounds: Vec<(usize, usize)> = partition_bounds(rows.len()).collect();
        if bounds.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let trace_field = trace.map(|t| {
            format!(
                ",\"trace\":{{\"span\":{},\"batch\":{}}}",
                t.parent.0, t.batch
            )
        });
        let per = bounds.len().div_ceil(self.conns.len());
        // All blocks in flight concurrently, one scoped thread per block;
        // every thread blocks on its own connection (bounded by the read
        // timeout), so wall clock is the slowest worker, not the sum.
        let results: Vec<RemoteFold> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .chunks(per)
                .enumerate()
                .map(|(b, block)| {
                    let frag_frame = &frag_frame;
                    let trace_field = trace_field.as_deref();
                    scope.spawn(move || {
                        self.fold_block_remote(
                            b % self.conns.len(),
                            frag_frame,
                            rows,
                            certain,
                            block,
                            b * per,
                            trace_field,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(EngineError::Plan(format!(
                        "shard dispatch panicked: {}",
                        iolap_core::faults::panic_message(payload)
                    ))),
                })
                .collect()
        });
        let mut out = Vec::with_capacity(bounds.len());
        let mut all_summaries = Vec::new();
        for r in results {
            match r? {
                Some((mut ps, summaries)) => {
                    out.append(&mut ps);
                    all_summaries.push(summaries);
                }
                None => return Ok(None),
            }
        }
        // Stitch after every block has joined, in block order: the trace
        // journal is deterministic for a fixed topology even though the
        // exchanges themselves raced.
        if let Some(t) = trace {
            for summaries in &all_summaries {
                stitch_summaries(t, summaries);
            }
        }
        Ok(Some(out))
    }
}

impl ShardExec for TcpShardPool {
    fn shards(&self) -> usize {
        self.conns.len()
    }

    fn fold(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        self.fold_impl(frag, rows, certain, None)
    }

    fn fold_traced(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
        trace: Option<&ShardTraceCtx<'_>>,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        self.fold_impl(frag, rows, certain, trace)
    }

    fn bytes_shipped(&self) -> u64 {
        self.shipped.load(Ordering::Relaxed)
    }

    fn worker_stats(&self) -> Vec<ShardWorkerStats> {
        lock_stats(&self.stats).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_core::{FragKind, FragSrc, LocalShardExec};
    use iolap_relation::Value;
    use std::sync::Arc;

    fn row(vals: Vec<Value>, mult: f64, weights: Option<Vec<f64>>) -> ORow {
        ORow {
            values: Arc::from(vals),
            mult,
            weights: weights.map(Arc::from),
        }
    }

    fn frag() -> FoldFragment {
        FoldFragment {
            agg_id: 1,
            group_cols: vec![0],
            kinds: vec![FragKind::Count, FragKind::Sum],
            srcs: vec![FragSrc::Col(1), FragSrc::Col(1)],
            trials: 3,
        }
    }

    fn sample_rows(n: usize) -> Vec<ORow> {
        (0..n)
            .map(|i| {
                row(
                    vec![Value::Int((i % 5) as i64), Value::Float(i as f64 * 0.25)],
                    1.0,
                    Some(vec![1.0, 0.0, 2.0]),
                )
            })
            .collect()
    }

    /// Every topology must produce the same partials as the single-shard
    /// reference, bit for bit.
    #[test]
    fn thread_pool_partials_match_reference_for_all_shard_counts() {
        let rows = sample_rows(3000); // 3 partitions
        let reference = LocalShardExec::default()
            .fold(&frag(), &rows, true)
            .unwrap()
            .unwrap();
        for shards in [1, 2, 4, 8] {
            let pool = ThreadShardPool::new(shards);
            let mut got = pool.fold(&frag(), &rows, true).unwrap().unwrap();
            got.sort_by_key(|p| p.partition);
            assert_eq!(got, reference, "shards={shards}");
            assert!(pool.bytes_shipped() > 0);
        }
    }

    /// Traced folds stitch per-worker span summaries under the parent
    /// span, account per-shard counters, and stay out of canonical
    /// exports (the `shard.` prefix is the strip marker).
    #[test]
    fn thread_pool_traced_fold_stitches_and_counts() {
        use iolap_core::trace::{canonical_events, Tracer};
        let rows = sample_rows(3000); // 3 partitions
        let pool = ThreadShardPool::new(2);
        let tracer = Tracer::new();
        let parent = tracer.begin("agg.fold", 0, iolap_core::SpanId::NONE);
        let ctx = iolap_core::ShardTraceCtx {
            tracer: &tracer,
            parent,
            batch: 0,
        };
        let got = pool
            .fold_traced(&frag(), &rows, true, Some(&ctx))
            .unwrap()
            .unwrap();
        assert!(!got.is_empty());
        let events = tracer.events();
        let worker_marks: Vec<_> = events
            .iter()
            .filter(|e| e.name == "shard.worker.fold")
            .collect();
        assert_eq!(worker_marks.len(), 2, "one summary per shard block");
        assert!(worker_marks.iter().all(|e| e.parent == parent));
        assert!(worker_marks[0].detail.contains("partitions="));
        // Canonical export strips every shard.* event.
        assert!(canonical_events(&events)
            .iter()
            .all(|e| !e.name.starts_with("shard.")));

        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|w| w.folds).sum::<u64>(), 2);
        assert_eq!(stats.iter().map(|w| w.acked).sum::<u64>(), got.len() as u64);
        assert!(stats.iter().all(|w| w.response_bytes > 0));
    }

    #[test]
    fn thread_pool_falls_back_on_lineage_rows() {
        let rows = vec![row(
            vec![
                Value::Int(0),
                Value::Ref(iolap_relation::AggRef {
                    agg: 0,
                    column: 0,
                    key: Arc::from(Vec::new()),
                }),
            ],
            1.0,
            None,
        )];
        let pool = ThreadShardPool::new(2);
        assert_eq!(pool.fold(&frag(), &rows, true).unwrap(), None);
        assert_eq!(pool.bytes_shipped(), 0);
    }

    #[test]
    fn worker_dispatch_folds_and_reindexes() {
        let mut state = ShardWorkerState::default();
        let rows = sample_rows(4);
        let request = format!(
            "{{\"op\":\"shard.fold\",\"base\":7,\"certain\":false,\"frag\":{},\"rows\":{}}}",
            frag_json(&frag()).unwrap(),
            rows_json(&rows).unwrap()
        );
        let response = handle_shard_request(&mut state, &request);
        let v = wire::parse(&response).unwrap();
        assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(true));
        let Some(JVal::Arr(items)) = v.get("partials") else {
            panic!("no partials in {response}");
        };
        let partial = partial_from_json(&items[0]).unwrap();
        assert_eq!(partial.partition, 7, "base offset applied");
        assert_eq!(partial.groups.len(), 4);
        assert_eq!(state.folds, 1);
        // Ack round-trip updates the counter.
        let ack = handle_shard_request(&mut state, "{\"op\":\"shard.ack\",\"partials\":1}");
        assert_eq!(ack, "{\"ok\":true}");
        assert_eq!(state.acked, 1);
        let stats = handle_shard_request(&mut state, "{\"op\":\"shard.stats\"}");
        assert!(stats.contains("\"folds\":1"), "{stats}");
    }

    #[test]
    fn worker_dispatch_rejects_malformed_frames() {
        let mut state = ShardWorkerState::default();
        for (line, kind) in [
            ("not json", "bad_json"),
            ("{\"op\":\"nope\"}", "bad_request"),
            ("{\"op\":\"shard.fold\",\"rows\":[]}", "bad_request"),
        ] {
            let resp = handle_shard_request(&mut state, line);
            let v = wire::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(JVal::as_bool), Some(false), "{line}");
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JVal::as_str),
                Some(kind),
                "{line}"
            );
        }
        assert_eq!(state.folds, 0);
    }

    /// Loopback integration: a real worker process boundary. Skipped when
    /// the sandbox denies loopback sockets (mirrors tcp.rs tests).
    #[test]
    fn tcp_pool_matches_thread_pool_over_loopback() {
        let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: loopback bind denied");
            return;
        };
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || serve_shard(listener));

        let rows = sample_rows(2500); // 3 partitions
        let reference = LocalShardExec::default()
            .fold(&frag(), &rows, false)
            .unwrap()
            .unwrap();

        let pool = TcpShardPool::connect(&[addr, addr]).unwrap();
        assert_eq!(pool.shards(), 2);
        pool.ping().unwrap();
        let mut got = pool.fold(&frag(), &rows, false).unwrap().unwrap();
        got.sort_by_key(|p| p.partition);
        assert_eq!(got, reference);
        assert!(pool.bytes_shipped() > 0, "response bytes must be measured");

        // Traced round-trip: the worker journal's summaries come back on
        // the wire and are stitched under the coordinator's parent span.
        let tracer = iolap_core::Tracer::new();
        let parent = tracer.begin("agg.fold", 1, iolap_core::SpanId::NONE);
        let ctx = iolap_core::ShardTraceCtx {
            tracer: &tracer,
            parent,
            batch: 1,
        };
        let mut traced = pool
            .fold_traced(&frag(), &rows, false, Some(&ctx))
            .unwrap()
            .unwrap();
        traced.sort_by_key(|p| p.partition);
        assert_eq!(traced, reference, "tracing must not change the partials");
        let events = tracer.events();
        assert!(
            events
                .iter()
                .any(|e| e.name == "shard.worker.fold" && e.parent == parent),
            "stitched worker span missing: {events:?}"
        );
        assert!(events
            .iter()
            .any(|e| e.name == "shard.worker.partials" && e.detail.starts_with("base=")));
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().map(|w| w.folds).sum::<u64>() >= 4);
        assert!(stats.iter().all(|w| w.response_bytes > 0));

        // The worker's own view: shard.stats now reports response bytes.
        let mut state = ShardWorkerState::default();
        handle_shard_request(&mut state, "{\"op\":\"shard.ping\"}");
        state.response_bytes = 42;
        let frame = handle_shard_request(&mut state, "{\"op\":\"shard.stats\"}");
        assert!(frame.contains("\"response_bytes\":42"), "{frame}");

        // Lineage rows cannot cross the wire: fallback, not error.
        let tainted = vec![row(
            vec![
                Value::Int(0),
                Value::Ref(iolap_relation::AggRef {
                    agg: 0,
                    column: 0,
                    key: Arc::from(Vec::new()),
                }),
            ],
            1.0,
            None,
        )];
        assert_eq!(pool.fold(&frag(), &tainted, true).unwrap(), None);
    }
}
