//! Newline-delimited JSON front-end over `std::net::TcpListener`.
//!
//! One request object per line, one response object per line:
//!
//! ```text
//! → {"op":"submit","query":"C2","batches":8,"label":"u1","policy":{"kind":"relative_ci","target":0.05}}
//! ← {"ok":true,"session":0}
//! → {"op":"poll","session":0,"max":4}
//! ← {"ok":true,"state":"running","batches_run":2,"reports":[{...},{...}]}
//! → {"op":"cancel","session":0}
//! ← {"ok":true}
//! ```
//!
//! The server crate knows nothing about workloads or SQL catalogs; a
//! [`SubmitFactory`] closure provided by the embedder (the `experiments`
//! binary wires the built-in workloads in) turns the raw `submit` request
//! into an `IolapDriver` plus a [`SessionSpec`]. Everything protocol-level
//! — `poll`, `summary`, `cancel`, `stats`, `metrics`, and the durable ops
//! `append` (stream rows into a live table: `{"op":"append","table":T,
//! "rows":[[...],...]}`) and `resume` (re-attach to a session restored
//! from the durable log after a restart) — is handled here.
//!
//! [`handle_request`] is the transport-free core (one request line in, one
//! response line out); [`serve`] is the accept loop that feeds it. Socket
//! reads block on the network by design, so this module is *not* part of
//! the srclint L006 scheduler/admission hot-path scope.

use crate::scheduler::Server;
use crate::session::{AdmitError, SessionHandle, SessionSpec, SessionSummary};
use crate::wire::{escape, num, parse, value_json, JVal};
use iolap_core::{BatchReport, IolapDriver};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Builds a driver + spec from a raw `submit` request object. Errors
/// become `{"ok":false,"kind":"bad_request"}` responses.
pub type SubmitFactory =
    Arc<dyn Fn(&JVal) -> Result<(IolapDriver, SessionSpec), String> + Send + Sync>;

/// Parse the protocol-level session knobs (`label`, `priority`,
/// `deadline_ms`, `policy`) out of a submit request, for factories that
/// only want to construct the driver. Unknown policy kinds fall back to
/// run-to-completion.
pub fn spec_from_request(req: &JVal) -> SessionSpec {
    let mut spec = SessionSpec::named(
        req.get("label")
            .and_then(JVal::as_str)
            .unwrap_or_default()
            .to_string(),
    );
    if let Some(p) = req.get("priority").and_then(JVal::as_u64) {
        spec.priority = p.min(u8::MAX as u64) as u8;
    }
    if let Some(ms) = req.get("deadline_ms").and_then(JVal::as_u64) {
        spec.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(policy) = req.get("policy") {
        let kind = policy.get("kind").and_then(JVal::as_str).unwrap_or("");
        spec.policy = match kind {
            // `usize::try_from`, not `as usize`: on a 32-bit target a
            // count above 2^32 must clamp to "run to completion", not
            // truncate to an arbitrary small batch budget.
            "batches" => crate::StopPolicy::Batches(
                policy
                    .get("n")
                    .and_then(JVal::as_u64)
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .unwrap_or(usize::MAX),
            ),
            "relative_ci" => crate::StopPolicy::RelativeCI {
                target: policy.get("target").and_then(JVal::as_f64).unwrap_or(0.05),
                confidence: policy
                    .get("confidence")
                    .and_then(JVal::as_f64)
                    .unwrap_or(0.95),
            },
            "deadline" => crate::StopPolicy::Deadline(Duration::from_millis(
                policy.get("ms").and_then(JVal::as_u64).unwrap_or(1_000),
            )),
            _ => crate::StopPolicy::complete(),
        };
    }
    spec
}

fn err_response(kind: &str, msg: &str) -> String {
    JVal::obj(vec![
        ("ok", JVal::Bool(false)),
        ("kind", JVal::str(kind)),
        ("error", JVal::str(msg)),
    ])
    .render()
}

/// One batch report as a wire object: identity, convergence, and the
/// visible rows. `max_rel_ci` is `null` when the batch carries no error
/// estimates (so accuracy-watching clients see the absence explicitly).
pub fn report_json(r: &BatchReport) -> String {
    let mut names = String::from("[");
    for (i, n) in r.result.names.iter().enumerate() {
        if i > 0 {
            names.push(',');
        }
        let _ = write!(names, "\"{}\"", escape(n));
    }
    names.push(']');
    let mut rows = String::from("[");
    for (i, row) in r.result.relation.rows().iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push('[');
        for (j, v) in row.values.iter().enumerate() {
            if j > 0 {
                rows.push(',');
            }
            rows.push_str(&value_json(v));
        }
        rows.push(']');
    }
    rows.push(']');
    let ci = r
        .result
        .max_relative_ci_halfwidth()
        .map(num)
        .unwrap_or_else(|| "null".to_string());
    format!(
        concat!(
            "{{\"batch\":{},\"fraction\":{},\"elapsed_ms\":{},",
            "\"recovered\":{},\"max_rel_ci\":{},\"names\":{},\"rows\":{}}}"
        ),
        r.batch,
        num(r.fraction),
        num(r.elapsed.as_secs_f64() * 1e3),
        r.recovered,
        ci,
        names,
        rows,
    )
}

fn summary_json(s: &SessionSummary) -> JVal {
    JVal::obj(vec![
        ("id", JVal::Num(s.id as f64)),
        ("label", JVal::str(&s.label)),
        ("state", JVal::str(s.state.as_str())),
        (
            "end",
            s.end
                .as_ref()
                .map(|e| JVal::str(e.label()))
                .unwrap_or(JVal::Null),
        ),
        ("batches_run", JVal::Num(s.batches_run as f64)),
        ("total_batches", JVal::Num(s.total_batches as f64)),
        ("pending_reports", JVal::Num(s.pending_reports as f64)),
        (
            "elapsed_ms",
            s.elapsed
                .map(|d| JVal::Num(d.as_secs_f64() * 1e3))
                .unwrap_or(JVal::Null),
        ),
        ("mem_bytes", JVal::Num(s.mem_bytes as f64)),
    ])
}

/// The `metrics` op's structured twin of the text exposition: per-session
/// convergence/SLO state, tenant list, burn counters, shard counters.
fn telemetry_summary_json(t: &crate::telemetry::Telemetry) -> JVal {
    let sessions = t
        .sessions()
        .iter()
        .map(|(id, s)| {
            JVal::obj(vec![
                ("id", JVal::Num(*id as f64)),
                ("tenant", JVal::str(&s.label)),
                ("batches", JVal::Num(s.batches as f64)),
                ("total_batches", JVal::Num(s.total_batches as f64)),
                (
                    "rel_ci",
                    s.last_rel_ci()
                        .map(|(_, ci)| JVal::Num(ci))
                        .unwrap_or(JVal::Null),
                ),
                (
                    "predicted_remaining",
                    s.predicted_remaining()
                        .map(|r| JVal::Num(r as f64))
                        .unwrap_or(JVal::Null),
                ),
                ("end", s.end.map(JVal::str).unwrap_or(JVal::Null)),
            ])
        })
        .collect();
    let slo = t.slo();
    let shards = t
        .shards()
        .values()
        .map(|w| {
            JVal::obj(vec![
                ("shard", JVal::Num(w.shard as f64)),
                ("folds", JVal::Num(w.folds as f64)),
                ("acked", JVal::Num(w.acked as f64)),
                ("response_bytes", JVal::Num(w.response_bytes as f64)),
            ])
        })
        .collect();
    JVal::obj(vec![
        ("sessions", JVal::Arr(sessions)),
        (
            "tenants",
            JVal::Arr(t.tenants().keys().map(JVal::str).collect()),
        ),
        (
            "slo",
            JVal::obj(vec![
                ("ci_sessions", JVal::Num(slo.ci_sessions as f64)),
                ("ci_met", JVal::Num(slo.ci_met as f64)),
                ("ci_batches", JVal::Num(slo.ci_batches as f64)),
                ("ci_batches_saved", JVal::Num(slo.ci_batches_saved as f64)),
                ("deadline_sessions", JVal::Num(slo.deadline_sessions as f64)),
                ("deadline_met", JVal::Num(slo.deadline_met as f64)),
                ("deadline_overrun", JVal::Num(slo.deadline_overrun as f64)),
            ]),
        ),
        ("shards", JVal::Arr(shards)),
    ])
}

/// Handle one request line, returning one response line (no trailing
/// newline). `sessions` is the connection's handle table: sessions are
/// scoped to the connection that submitted them.
pub fn handle_request(
    server: &Server,
    factory: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    line: &str,
) -> String {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return err_response("bad_json", &e.to_string()),
    };
    let op = req.get("op").and_then(JVal::as_str).unwrap_or("");
    match op {
        "submit" => match factory(&req) {
            Err(msg) => err_response("bad_request", &msg),
            Ok((mut driver, spec)) => {
                // Attach the configured shard pool before admission: the
                // pool changes where fold partitions execute, never the
                // merge tree, so the report stream stays byte-identical.
                let shard_workers = server.config().shard_workers;
                if shard_workers > 0 {
                    driver.set_shard_exec(std::sync::Arc::new(crate::shard::ThreadShardPool::new(
                        shard_workers,
                    )));
                }
                match server.submit_with_origin(driver, spec, Some(line)) {
                    Ok(handle) => {
                        let id = handle.id();
                        sessions.insert(id, handle);
                        JVal::obj(vec![
                            ("ok", JVal::Bool(true)),
                            ("session", JVal::Num(id as f64)),
                        ])
                        .render()
                    }
                    Err(AdmitError::QueueFull { live, queued }) => err_response(
                        "queue_full",
                        &format!("{live} live, {queued} queued — admission rejected"),
                    ),
                    Err(e @ AdmitError::ShuttingDown) => {
                        err_response("shutting_down", &e.to_string())
                    }
                }
            }
        },
        "append" => {
            let Some(table) = req.get("table").and_then(JVal::as_str) else {
                return err_response("bad_request", "append needs a \"table\" string");
            };
            let Some(rows @ JVal::Arr(_)) = req.get("rows") else {
                return err_response("bad_request", "append needs a \"rows\" array of arrays");
            };
            if let JVal::Arr(items) = rows {
                if items.is_empty() {
                    return err_response("bad_request", "append rows array is empty");
                }
                if items.iter().any(|r| !matches!(r, JVal::Arr(_))) {
                    return err_response("bad_request", "append rows must each be an array");
                }
            }
            // Re-render the parsed rows so the queued (and durably logged)
            // form is canonical regardless of client whitespace.
            let reached = server.append_rows(table, &rows.render());
            if reached == 0 {
                return err_response(
                    "unknown_table",
                    &format!("no live session streams table \"{table}\""),
                );
            }
            format!("{{\"ok\":true,\"sessions\":{reached}}}")
        }
        "resume" => {
            let Some(id) = req.get("session").and_then(JVal::as_u64) else {
                return err_response("bad_request", "resume needs a \"session\" id");
            };
            match server.resume_session(id) {
                crate::scheduler::ResumeStatus::Attached(handle) => {
                    let s = handle.summary();
                    sessions.insert(id, handle);
                    format!(
                        "{{\"ok\":true,\"session\":{id},\"state\":\"{}\",\"batches_run\":{},\"pending_reports\":{}}}",
                        s.state.as_str(),
                        s.batches_run,
                        s.pending_reports
                    )
                }
                crate::scheduler::ResumeStatus::Finished(end) => err_response(
                    "session_finished",
                    &format!("session {id} already finished (end={end}); nothing to resume"),
                ),
                crate::scheduler::ResumeStatus::Unknown => {
                    err_response("unknown_session", "no restorable session with that id")
                }
            }
        }
        "poll" | "cancel" | "summary" => {
            let Some(handle) = req
                .get("session")
                .and_then(JVal::as_u64)
                .and_then(|id| sessions.get(&id))
            else {
                return err_response("unknown_session", "no such session on this connection");
            };
            match op {
                "poll" => {
                    let max = req.get("max").and_then(JVal::as_u64).unwrap_or(16) as usize;
                    let mut reports = String::from("[");
                    for i in 0..max {
                        let Some(r) = handle.try_recv() else { break };
                        if i > 0 {
                            reports.push(',');
                        }
                        reports.push_str(&report_json(&r));
                    }
                    reports.push(']');
                    let s = handle.summary();
                    format!(
                        "{{\"ok\":true,\"state\":\"{}\",\"batches_run\":{},\"reports\":{}}}",
                        s.state.as_str(),
                        s.batches_run,
                        reports
                    )
                }
                "cancel" => {
                    handle.cancel();
                    "{\"ok\":true}".to_string()
                }
                _ => JVal::obj(vec![
                    ("ok", JVal::Bool(true)),
                    ("summary", summary_json(&handle.summary())),
                ])
                .render(),
            }
        }
        "stats" => {
            let s = server.stats();
            JVal::obj(vec![
                ("ok", JVal::Bool(true)),
                (
                    "stats",
                    JVal::obj(vec![
                        ("live", JVal::Num(s.live as f64)),
                        ("queued", JVal::Num(s.queued as f64)),
                        ("admitted", JVal::Num(s.admitted as f64)),
                        ("rejected", JVal::Num(s.rejected as f64)),
                        ("shed", JVal::Num(s.shed as f64)),
                        ("mem_bytes", JVal::Num(s.mem_bytes as f64)),
                    ]),
                ),
            ])
            .render()
        }
        "metrics" => {
            let canonical = req
                .get("canonical")
                .and_then(JVal::as_bool)
                .unwrap_or(false);
            JVal::obj(vec![
                ("ok", JVal::Bool(true)),
                ("exposition", JVal::str(server.exposition(canonical))),
                ("summary", telemetry_summary_json(&server.telemetry())),
            ])
            .render()
        }
        _ => err_response("bad_request", "unknown op"),
    }
}

fn handle_conn(stream: TcpStream, server: Arc<Server>, factory: SubmitFactory) {
    let mut sessions: BTreeMap<u64, SessionHandle> = BTreeMap::new();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_request(&server, &factory, &mut sessions, line.trim());
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    // Connection gone: cancel what it left running so slots free up.
    for handle in sessions.values() {
        if !handle.state().is_finished() {
            handle.cancel();
        }
    }
}

/// Accept loop: one thread per connection, each feeding
/// [`handle_request`]. Runs until the listener errors (e.g. is dropped).
pub fn serve(listener: TcpListener, server: Arc<Server>, factory: SubmitFactory) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let server = Arc::clone(&server);
        let factory = Arc::clone(&factory);
        std::thread::spawn(move || handle_conn(stream, server, factory));
    }
}
