//! Newline-delimited JSON front-end over `std::net::TcpListener`.
//!
//! One request object per line, one response object per line:
//!
//! ```text
//! → {"op":"submit","query":"C2","batches":8,"label":"u1","policy":{"kind":"relative_ci","target":0.05}}
//! ← {"ok":true,"session":0}
//! → {"op":"poll","session":0,"max":4}
//! ← {"ok":true,"state":"running","batches_run":2,"reports":[{...},{...}]}
//! → {"op":"cancel","session":0}
//! ← {"ok":true}
//! ```
//!
//! The server crate knows nothing about workloads or SQL catalogs; a
//! [`SubmitFactory`] closure provided by the embedder (the `experiments`
//! binary wires the built-in workloads in) turns the raw `submit` request
//! into an `IolapDriver` plus a [`SessionSpec`]. Everything protocol-level
//! — `poll`, `summary`, `cancel`, `stats` — is handled here.
//!
//! [`handle_request`] is the transport-free core (one request line in, one
//! response line out); [`serve`] is the accept loop that feeds it. Socket
//! reads block on the network by design, so this module is *not* part of
//! the srclint L006 scheduler/admission hot-path scope.

use crate::scheduler::Server;
use crate::session::{AdmitError, SessionHandle, SessionSpec, SessionSummary};
use crate::wire::{escape, num, parse, value_json, JVal};
use iolap_core::{BatchReport, IolapDriver};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Builds a driver + spec from a raw `submit` request object. Errors
/// become `{"ok":false,"kind":"bad_request"}` responses.
pub type SubmitFactory =
    Arc<dyn Fn(&JVal) -> Result<(IolapDriver, SessionSpec), String> + Send + Sync>;

/// Parse the protocol-level session knobs (`label`, `priority`,
/// `deadline_ms`, `policy`) out of a submit request, for factories that
/// only want to construct the driver. Unknown policy kinds fall back to
/// run-to-completion.
pub fn spec_from_request(req: &JVal) -> SessionSpec {
    let mut spec = SessionSpec::named(
        req.get("label")
            .and_then(JVal::as_str)
            .unwrap_or_default()
            .to_string(),
    );
    if let Some(p) = req.get("priority").and_then(JVal::as_u64) {
        spec.priority = p.min(u8::MAX as u64) as u8;
    }
    if let Some(ms) = req.get("deadline_ms").and_then(JVal::as_u64) {
        spec.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(policy) = req.get("policy") {
        let kind = policy.get("kind").and_then(JVal::as_str).unwrap_or("");
        spec.policy = match kind {
            // `usize::try_from`, not `as usize`: on a 32-bit target a
            // count above 2^32 must clamp to "run to completion", not
            // truncate to an arbitrary small batch budget.
            "batches" => crate::StopPolicy::Batches(
                policy
                    .get("n")
                    .and_then(JVal::as_u64)
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .unwrap_or(usize::MAX),
            ),
            "relative_ci" => crate::StopPolicy::RelativeCI {
                target: policy.get("target").and_then(JVal::as_f64).unwrap_or(0.05),
                confidence: policy
                    .get("confidence")
                    .and_then(JVal::as_f64)
                    .unwrap_or(0.95),
            },
            "deadline" => crate::StopPolicy::Deadline(Duration::from_millis(
                policy.get("ms").and_then(JVal::as_u64).unwrap_or(1_000),
            )),
            _ => crate::StopPolicy::complete(),
        };
    }
    spec
}

fn err_response(kind: &str, msg: &str) -> String {
    format!(
        "{{\"ok\":false,\"kind\":\"{}\",\"error\":\"{}\"}}",
        escape(kind),
        escape(msg)
    )
}

/// One batch report as a wire object: identity, convergence, and the
/// visible rows. `max_rel_ci` is `null` when the batch carries no error
/// estimates (so accuracy-watching clients see the absence explicitly).
pub fn report_json(r: &BatchReport) -> String {
    let mut names = String::from("[");
    for (i, n) in r.result.names.iter().enumerate() {
        if i > 0 {
            names.push(',');
        }
        let _ = write!(names, "\"{}\"", escape(n));
    }
    names.push(']');
    let mut rows = String::from("[");
    for (i, row) in r.result.relation.rows().iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push('[');
        for (j, v) in row.values.iter().enumerate() {
            if j > 0 {
                rows.push(',');
            }
            rows.push_str(&value_json(v));
        }
        rows.push(']');
    }
    rows.push(']');
    let ci = r
        .result
        .max_relative_ci_halfwidth()
        .map(num)
        .unwrap_or_else(|| "null".to_string());
    format!(
        concat!(
            "{{\"batch\":{},\"fraction\":{},\"elapsed_ms\":{},",
            "\"recovered\":{},\"max_rel_ci\":{},\"names\":{},\"rows\":{}}}"
        ),
        r.batch,
        num(r.fraction),
        num(r.elapsed.as_secs_f64() * 1e3),
        r.recovered,
        ci,
        names,
        rows,
    )
}

fn summary_json(s: &SessionSummary) -> String {
    format!(
        concat!(
            "{{\"id\":{},\"label\":\"{}\",\"state\":\"{}\",\"end\":{},",
            "\"batches_run\":{},\"total_batches\":{},\"pending_reports\":{},",
            "\"elapsed_ms\":{},\"mem_bytes\":{}}}"
        ),
        s.id,
        escape(&s.label),
        s.state.as_str(),
        s.end
            .as_ref()
            .map(|e| format!("\"{}\"", e.label()))
            .unwrap_or_else(|| "null".to_string()),
        s.batches_run,
        s.total_batches,
        s.pending_reports,
        s.elapsed
            .map(|d| num(d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "null".to_string()),
        s.mem_bytes,
    )
}

/// Handle one request line, returning one response line (no trailing
/// newline). `sessions` is the connection's handle table: sessions are
/// scoped to the connection that submitted them.
pub fn handle_request(
    server: &Server,
    factory: &SubmitFactory,
    sessions: &mut BTreeMap<u64, SessionHandle>,
    line: &str,
) -> String {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return err_response("bad_json", &e.to_string()),
    };
    let op = req.get("op").and_then(JVal::as_str).unwrap_or("");
    match op {
        "submit" => match factory(&req) {
            Err(msg) => err_response("bad_request", &msg),
            Ok((mut driver, spec)) => {
                // Attach the configured shard pool before admission: the
                // pool changes where fold partitions execute, never the
                // merge tree, so the report stream stays byte-identical.
                let shard_workers = server.config().shard_workers;
                if shard_workers > 0 {
                    driver.set_shard_exec(std::sync::Arc::new(crate::shard::ThreadShardPool::new(
                        shard_workers,
                    )));
                }
                match server.submit(driver, spec) {
                    Ok(handle) => {
                        let id = handle.id();
                        sessions.insert(id, handle);
                        format!("{{\"ok\":true,\"session\":{id}}}")
                    }
                    Err(AdmitError::QueueFull { live, queued }) => err_response(
                        "queue_full",
                        &format!("{live} live, {queued} queued — admission rejected"),
                    ),
                    Err(e @ AdmitError::ShuttingDown) => {
                        err_response("shutting_down", &e.to_string())
                    }
                }
            }
        },
        "poll" | "cancel" | "summary" => {
            let Some(handle) = req
                .get("session")
                .and_then(JVal::as_u64)
                .and_then(|id| sessions.get(&id))
            else {
                return err_response("unknown_session", "no such session on this connection");
            };
            match op {
                "poll" => {
                    let max = req.get("max").and_then(JVal::as_u64).unwrap_or(16) as usize;
                    let mut reports = String::from("[");
                    for i in 0..max {
                        let Some(r) = handle.try_recv() else { break };
                        if i > 0 {
                            reports.push(',');
                        }
                        reports.push_str(&report_json(&r));
                    }
                    reports.push(']');
                    let s = handle.summary();
                    format!(
                        "{{\"ok\":true,\"state\":\"{}\",\"batches_run\":{},\"reports\":{}}}",
                        s.state.as_str(),
                        s.batches_run,
                        reports
                    )
                }
                "cancel" => {
                    handle.cancel();
                    "{\"ok\":true}".to_string()
                }
                _ => format!(
                    "{{\"ok\":true,\"summary\":{}}}",
                    summary_json(&handle.summary())
                ),
            }
        }
        "stats" => {
            let s = server.stats();
            format!(
                concat!(
                    "{{\"ok\":true,\"stats\":{{\"live\":{},\"queued\":{},",
                    "\"admitted\":{},\"rejected\":{},\"shed\":{},\"mem_bytes\":{}}}}}"
                ),
                s.live, s.queued, s.admitted, s.rejected, s.shed, s.mem_bytes
            )
        }
        _ => err_response("bad_request", "unknown op"),
    }
}

fn handle_conn(stream: TcpStream, server: Arc<Server>, factory: SubmitFactory) {
    let mut sessions: BTreeMap<u64, SessionHandle> = BTreeMap::new();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_request(&server, &factory, &mut sessions, line.trim());
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    // Connection gone: cancel what it left running so slots free up.
    for handle in sessions.values() {
        if !handle.state().is_finished() {
            handle.cancel();
        }
    }
}

/// Accept loop: one thread per connection, each feeding
/// [`handle_request`]. Runs until the listener errors (e.g. is dropped).
pub fn serve(listener: TcpListener, server: Arc<Server>, factory: SubmitFactory) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let server = Arc::clone(&server);
        let factory = Arc::clone(&factory);
        std::thread::spawn(move || handle_conn(stream, server, factory));
    }
}
