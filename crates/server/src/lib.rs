//! Multi-tenant serving layer for the iOLAP reproduction.
//!
//! The paper's delivery model (§1, §6.4) is a user watching a single query
//! converge; BlinkDB's contract generalizes it to *bounded error or bounded
//! response time*. This crate is the layer between those two: it multiplexes
//! many concurrent incremental query sessions over a bounded worker pool,
//! delivering per-batch [`iolap_core::BatchReport`]s to each client while
//! enforcing admission control, memory-pressure shedding, and per-session
//! accuracy-target early stop.
//!
//! Architecture (one module per concern):
//!
//! * [`policy`] — [`StopPolicy`]: when a session's accuracy/latency contract
//!   is met and its slot can be freed early.
//! * [`session`] — the client-facing surface: [`SessionSpec`],
//!   [`SessionHandle`], lifecycle states, admission errors.
//! * [`scheduler`] — [`Server`]: the worker pool, the cooperative
//!   round-robin batch scheduler, admission control, and EDF shedding.
//! * [`wire`] — dependency-free newline-delimited JSON parsing/encoding for
//!   the line protocol (the canonical escape shared with `bench`'s emitter).
//! * [`tcp`] — the `std::net::TcpListener` front-end speaking [`wire`].
//! * [`shard`] — scale-out pools (§8): in-process thread shards and TCP
//!   worker shards executing aggregate fold fragments, merged by the
//!   coordinator on the partition-stable grid.
//! * [`durable`] — crash-consistent persistence: the session manifest and
//!   per-session append logs (`iolap-store` segments) that let a restarted
//!   server resume live sessions and re-deliver byte-identical reports.
//!
//! Scheduling is *cooperative*: a worker runs exactly one mini-batch
//! (`IolapDriver::step`) per dispatch, then requeues the session behind its
//! peers. The ready queue is ordered by `(priority, batches-done, session
//! id, seed)`, so with a single worker a fixed-seed multi-tenant run is
//! fully byte-reproducible, and with any worker count each session's report
//! stream is byte-identical to its solo run (drivers share nothing).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
pub mod policy;
pub mod scheduler;
pub mod session;
pub mod shard;
pub mod tcp;
pub mod telemetry;
pub mod wire;

pub use durable::{DurableStore, LogRecord, ManifestEntry};
pub use policy::StopPolicy;
pub use scheduler::{RecoveryReport, ResumeStatus, Server, ServerConfig, ServerStats};
pub use session::{
    AdmitError, SessionEnd, SessionHandle, SessionSpec, SessionState, SessionSummary,
};
pub use telemetry::{
    canonical_trace, predict_batches_remaining, render_exposition, DurableCounters, SessionSlo,
    SloCounters, Telemetry,
};
