//! Per-session stopping rules: the BlinkDB-style accuracy/latency contract.
//!
//! An iOLAP session streams partial answers whose bootstrap confidence
//! intervals tighten batch by batch (§6). Most clients do not want *all*
//! the batches — they want "±3% at 95% confidence" or "whatever you have in
//! two seconds". A [`StopPolicy`] captures that contract; the scheduler
//! evaluates it after every delivered batch and retires the session (state
//! `Draining`) the moment it is met, freeing its slot for queued work.

use std::fmt;
use std::time::Duration;

/// When to stop a session before its driver exhausts the stream table.
///
/// Evaluated by the scheduler after each successful batch, *before* the
/// session is requeued. Whichever policy a session carries, finishing all
/// batches always ends it with `SessionEnd::Completed`.
#[derive(Clone, Debug, PartialEq)]
pub enum StopPolicy {
    /// Stop after `n` delivered batches (use [`StopPolicy::complete`] for
    /// "run everything").
    Batches(usize),
    /// Stop as soon as every uncertain cell's relative confidence-interval
    /// half-width is `<= target` (e.g. `0.05` = ±5%). `confidence` records
    /// the interval level of the contract and must match the driver's
    /// `IolapConfig::confidence` — the bootstrap intervals are computed at
    /// the driver's level, not recomputed here. A batch with *no* error
    /// estimates (fully deterministic result, or estimate exactly zero →
    /// infinite relative width) never satisfies the target, so degenerate
    /// results cannot fake an accuracy contract.
    RelativeCI {
        /// Largest acceptable relative CI half-width, e.g. `0.05` for ±5%.
        target: f64,
        /// Confidence level of the contract (documents the driver's level).
        confidence: f64,
    },
    /// Stop at the first batch boundary after this much wall-clock time in
    /// the running state (time spent `Queued` does not count). Wall-clock
    /// by nature — sessions using it are excluded from byte-determinism
    /// guarantees.
    Deadline(Duration),
}

impl StopPolicy {
    /// Run every batch: `Batches(usize::MAX)` — no driver has that many.
    pub fn complete() -> Self {
        StopPolicy::Batches(usize::MAX)
    }

    /// Short machine-readable label for reports and the `--json` record.
    pub fn label(&self) -> String {
        match self {
            StopPolicy::Batches(n) if *n == usize::MAX => "complete".to_string(),
            StopPolicy::Batches(n) => format!("batches({n})"),
            StopPolicy::RelativeCI { target, confidence } => {
                format!("relative_ci({target},{confidence})")
            }
            StopPolicy::Deadline(d) => format!("deadline({}ms)", d.as_millis()),
        }
    }
}

impl fmt::Display for StopPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(StopPolicy::complete().label(), "complete");
        assert_eq!(StopPolicy::Batches(3).label(), "batches(3)");
        assert_eq!(
            StopPolicy::RelativeCI {
                target: 0.05,
                confidence: 0.95
            }
            .label(),
            "relative_ci(0.05,0.95)"
        );
        assert_eq!(
            StopPolicy::Deadline(Duration::from_millis(250)).label(),
            "deadline(250ms)"
        );
    }
}
