//! Durable session state: manifest + per-session append logs.
//!
//! The scheduler spills every admitted session into `iolap-store` segments
//! so a restarted server can rebuild its live sessions and re-deliver
//! byte-identical report streams (wall-clock fields excluded — see
//! `tests/restart.rs`):
//!
//! * `manifest.seg` — one `'S'` record per admitted session carrying the
//!   verbatim submit request (the *origin*), and one `'D'` record when the
//!   session finishes. Live sessions are exactly the `'S'` records without
//!   a matching `'D'`.
//! * `session-{id}.seg` — the session's event log, in application order:
//!   `'R'` (rendered batch-report line), `'C'` (checkpoint batch/digest/
//!   bytes — the digest is the driver's structural fingerprint from PR 3,
//!   reused here as the on-disk integrity check), and `'A'` (streaming
//!   append: the canonical rows JSON).
//!
//! Recovery never trusts the log blindly: reports are *re-derived* by
//! replaying batches through the driver (`IolapDriver::resume_replay`),
//! and each logged `'C'` digest is checked against the freshly re-derived
//! checkpoint fingerprint — a mismatch (the `stale_manifest` fault) is
//! counted, never silently believed. Torn and truncated logs are the
//! expected crash residue: the store's scanner hands recovery the longest
//! valid prefix and replay simply restarts the suffix.
//!
//! Lock order: the scheduler's state lock may be held when taking the
//! store lock (`finish` writes `'D'` under it); the store lock never
//! acquires the state lock. srclint L009 checks the scheduler side.

use crate::wire::JVal;
use iolap_relation::{DataType, Field, Relation, Schema, Value};
use iolap_store::{ensure_dir, scan_segment, truncate_tail, SegmentWriter, SEGMENT_HEADER_LEN};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Path of the manifest segment inside a durable directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.seg")
}

/// Path of one session's event-log segment.
pub fn session_log_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("session-{id}.seg"))
}

/// Open segment writers for the manifest and every live session log.
struct Inner {
    manifest: SegmentWriter,
    sessions: BTreeMap<u64, SegmentWriter>,
}

/// The server's handle on its durable directory: one manifest writer plus
/// lazily-opened per-session log writers, all behind one mutex (durable
/// writes are rare relative to compute; contention is not a concern).
pub struct DurableStore {
    dir: PathBuf,
    fsync: bool,
    inner: Mutex<Inner>,
}

impl DurableStore {
    /// Open (or create) the durable directory and its manifest. An existing
    /// manifest is resumed — its torn tail, if any, chopped to the valid
    /// prefix exactly as recovery will read it.
    pub fn open(dir: &Path, fsync: bool) -> io::Result<DurableStore> {
        ensure_dir(dir)?;
        let path = manifest_path(dir);
        let manifest = if path.exists() {
            SegmentWriter::resume(&path, fsync)?.0
        } else {
            SegmentWriter::create(&path, fsync)?
        };
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            fsync,
            inner: Mutex::new(Inner {
                manifest,
                sessions: BTreeMap::new(),
            }),
        })
    }

    /// The durable directory this store writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether every append is fsynced before returning.
    pub fn fsync(&self) -> bool {
        self.fsync
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn writer_for<'a>(&self, g: &'a mut Inner, id: u64) -> io::Result<&'a mut SegmentWriter> {
        match g.sessions.entry(id) {
            std::collections::btree_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::btree_map::Entry::Vacant(e) => {
                let path = session_log_path(&self.dir, id);
                let w = if path.exists() {
                    SegmentWriter::resume(&path, self.fsync)?.0
                } else {
                    SegmentWriter::create(&path, self.fsync)?
                };
                Ok(e.insert(w))
            }
        }
    }

    /// Record an admission: `'S'` + id + the verbatim submit request. Also
    /// creates the (empty) session log so a crash before the first batch
    /// still leaves a resumable session behind.
    pub fn log_submit(&self, id: u64, origin: &str) -> io::Result<()> {
        let mut g = self.lock();
        let payload = manifest_record(b'S', id, origin.as_bytes());
        g.manifest.append(&payload)?;
        let w = SegmentWriter::create(&session_log_path(&self.dir, id), self.fsync)?;
        g.sessions.insert(id, w);
        Ok(())
    }

    /// Record a session end: `'D'` + id + the end label. Drops the session
    /// log writer; the log file itself is kept for post-mortem reads.
    pub fn log_finish(&self, id: u64, end_label: &str) -> io::Result<()> {
        let mut g = self.lock();
        let payload = manifest_record(b'D', id, end_label.as_bytes());
        g.manifest.append(&payload)?;
        g.sessions.remove(&id);
        Ok(())
    }

    /// Spill one delivered batch report. `torn` is the `torn_write` fault
    /// hook: `Some(fraction)` writes only that leading fraction of the
    /// frame, after which the log's tail (this record and everything a
    /// still-running server appends after it) is lost to recovery.
    pub fn log_report(&self, id: u64, line: &str, torn: Option<f64>) -> io::Result<()> {
        let mut g = self.lock();
        let w = self.writer_for(&mut g, id)?;
        let mut payload = Vec::with_capacity(1 + line.len());
        payload.push(b'R');
        payload.extend_from_slice(line.as_bytes());
        match torn {
            Some(fraction) => w.append_partial(&payload, fraction),
            None => w.append(&payload),
        }
    }

    /// Spill one checkpoint fingerprint (`'C'` + batch + digest + bytes).
    /// The `stale_manifest` fault XORs the digest *before* this call — the
    /// store records what it is given; recovery detects the lie.
    pub fn log_checkpoint(&self, id: u64, batch: usize, digest: u64, bytes: u64) -> io::Result<()> {
        let mut g = self.lock();
        let w = self.writer_for(&mut g, id)?;
        let mut payload = Vec::with_capacity(25);
        payload.push(b'C');
        payload.extend_from_slice(&(batch as u64).to_le_bytes());
        payload.extend_from_slice(&digest.to_le_bytes());
        payload.extend_from_slice(&bytes.to_le_bytes());
        w.append(&payload)
    }

    /// Spill one applied streaming append (`'A'` + canonical rows JSON),
    /// written at apply time so replay order equals application order.
    pub fn log_append(&self, id: u64, rows_json: &str) -> io::Result<()> {
        let mut g = self.lock();
        let w = self.writer_for(&mut g, id)?;
        let mut payload = Vec::with_capacity(1 + rows_json.len());
        payload.push(b'A');
        payload.extend_from_slice(rows_json.as_bytes());
        w.append(&payload)
    }

    /// The `truncated_segment` fault: chop `fraction` of the log body off
    /// the session log's tail, as when a filesystem loses flushed bytes.
    /// The live writer keeps its old offset, so later appends land past a
    /// zero-filled hole and are equally unreachable to the scanner.
    pub fn damage_truncate(&self, id: u64, fraction: f64) -> io::Result<u64> {
        let mut g = self.lock();
        let len = self.writer_for(&mut g, id)?.len();
        let body = len.saturating_sub(SEGMENT_HEADER_LEN);
        if body == 0 {
            return Ok(len);
        }
        let chop = ((body as f64) * fraction.clamp(0.0, 1.0)) as u64;
        let chop = chop.clamp(1, body);
        truncate_tail(&session_log_path(&self.dir, id), chop)
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .finish()
    }
}

fn manifest_record(tag: u8, id: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.push(tag);
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

fn u64_at(frame: &[u8], off: usize) -> Option<u64> {
    let end = off.checked_add(8)?;
    let bytes: [u8; 8] = frame.get(off..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

fn body_string(frame: &[u8], off: usize) -> String {
    String::from_utf8_lossy(frame.get(off..).unwrap_or_default()).into_owned()
}

/// One session as the manifest remembers it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Server-assigned session id.
    pub id: u64,
    /// Verbatim submit request recorded at admission.
    pub origin: String,
    /// End label once a `'D'` record exists; `None` means the session was
    /// live when the process stopped and is a recovery candidate.
    pub end: Option<String>,
}

/// Read the manifest's valid prefix. A missing manifest is an empty fleet,
/// not an error; a foreign or headerless file *is* an error.
pub fn read_manifest(dir: &Path) -> io::Result<Vec<ManifestEntry>> {
    let path = manifest_path(dir);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let scan = scan_segment(&path)?;
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for frame in &scan.frames {
        let Some((&tag, _)) = frame.split_first() else {
            continue;
        };
        let Some(id) = u64_at(frame, 1) else {
            continue;
        };
        match tag {
            b'S' => entries.push(ManifestEntry {
                id,
                origin: body_string(frame, 9),
                end: None,
            }),
            b'D' => {
                if let Some(e) = entries.iter_mut().rev().find(|e| e.id == id) {
                    e.end = Some(body_string(frame, 9));
                }
            }
            // Unknown tags are skipped, not fatal: a newer writer may add
            // record kinds an older reader can ignore.
            _ => {}
        }
    }
    Ok(entries)
}

/// One decoded record of a session's event log.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A rendered batch-report line, in delivery order.
    Report(String),
    /// A checkpoint fingerprint spilled at a batch boundary.
    Checkpoint {
        /// Mini-batch index the checkpoint covers.
        batch: usize,
        /// Structural digest of the checkpointed operator tree.
        digest: u64,
        /// Accounted checkpoint size in bytes.
        bytes: u64,
    },
    /// A streaming append's canonical rows JSON, at its application point.
    Append(String),
}

/// Read the valid prefix of one session's event log. A missing log means
/// the session never ran a batch — an empty event list, not an error.
pub fn read_session_log(dir: &Path, id: u64) -> io::Result<Vec<LogRecord>> {
    let path = session_log_path(dir, id);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let scan = scan_segment(&path)?;
    let mut out = Vec::new();
    for frame in &scan.frames {
        match frame.first() {
            Some(b'R') => out.push(LogRecord::Report(body_string(frame, 1))),
            Some(b'C') => {
                if let (Some(batch), Some(digest), Some(bytes)) =
                    (u64_at(frame, 1), u64_at(frame, 9), u64_at(frame, 17))
                {
                    out.push(LogRecord::Checkpoint {
                        batch: usize::try_from(batch).unwrap_or(usize::MAX),
                        digest,
                        bytes,
                    });
                }
            }
            Some(b'A') => out.push(LogRecord::Append(body_string(frame, 1))),
            _ => {}
        }
    }
    Ok(out)
}

/// Coerce a wire `rows` value — an array of arrays of plain JSON scalars —
/// against a stream schema. Unlike `wire::rows_from_json` (the shard
/// plane's tagged ORow frames), append rows are written by clients in
/// ordinary JSON; the schema decides Int vs Float for bare numbers.
pub fn rows_from_wire(rows: &JVal, schema: &Schema) -> Result<Vec<Vec<Value>>, String> {
    let JVal::Arr(rows) = rows else {
        return Err("rows must be an array of arrays".to_string());
    };
    if rows.is_empty() {
        return Err("rows array is empty".to_string());
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let JVal::Arr(cells) = row else {
            return Err(format!("row {i} is not an array"));
        };
        if cells.len() != schema.len() {
            return Err(format!(
                "row {i} has {} cells but the table has {} columns",
                cells.len(),
                schema.len()
            ));
        }
        let mut vals = Vec::with_capacity(cells.len());
        for (field, cell) in schema.fields().iter().zip(cells) {
            vals.push(coerce_cell(field, cell, i)?);
        }
        out.push(vals);
    }
    Ok(out)
}

/// [`rows_from_wire`] packaged as a [`Relation`] ready for
/// `IolapDriver::append_rows`.
pub fn rows_to_relation(rows: &JVal, schema: &Schema) -> Result<Relation, String> {
    let vals = rows_from_wire(rows, schema)?;
    Ok(Relation::from_values(schema.clone(), vals))
}

fn coerce_cell(field: &Field, cell: &JVal, row: usize) -> Result<Value, String> {
    let mismatch = |got: &str| {
        Err(format!(
            "row {row}, column `{}`: cannot coerce {got} to {:?}",
            field.name, field.data_type
        ))
    };
    match (field.data_type, cell) {
        (_, JVal::Null) => Ok(Value::Null),
        (DataType::Bool, JVal::Bool(b)) => Ok(Value::Bool(*b)),
        (DataType::Int, JVal::Num(x)) => {
            if x.fract() == 0.0 && *x >= -(2f64.powi(53)) && *x <= 2f64.powi(53) {
                Ok(Value::Int(*x as i64))
            } else {
                mismatch("non-integral number")
            }
        }
        (DataType::Float, JVal::Num(x)) => Ok(Value::Float(*x)),
        (DataType::Str, JVal::Str(s)) => Ok(Value::Str(s.as_str().into())),
        (_, JVal::Bool(_)) => mismatch("a boolean"),
        (_, JVal::Num(_)) => mismatch("a number"),
        (_, JVal::Str(_)) => mismatch("a string"),
        (_, JVal::Arr(_)) => mismatch("an array"),
        (_, JVal::Obj(_)) => mismatch("an object"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SCRATCH: AtomicUsize = AtomicUsize::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("iolap-durable-{}-{n}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_tracks_live_and_finished_sessions() {
        let dir = scratch("manifest");
        let store = DurableStore::open(&dir, false).unwrap();
        store.log_submit(1, r#"{"op":"submit","q":"one"}"#).unwrap();
        store.log_submit(2, r#"{"op":"submit","q":"two"}"#).unwrap();
        store.log_finish(1, "completed").unwrap();
        drop(store);
        let entries = read_manifest(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, 1);
        assert_eq!(entries[0].end.as_deref(), Some("completed"));
        assert_eq!(entries[1].id, 2);
        assert_eq!(entries[1].origin, r#"{"op":"submit","q":"two"}"#);
        assert_eq!(entries[1].end, None);
        // Reopening resumes the manifest rather than clobbering it.
        let store = DurableStore::open(&dir, false).unwrap();
        store.log_finish(2, "cancelled").unwrap();
        drop(store);
        let entries = read_manifest(&dir).unwrap();
        assert_eq!(entries[1].end.as_deref(), Some("cancelled"));
    }

    #[test]
    fn session_log_roundtrips_in_order() {
        let dir = scratch("log");
        let store = DurableStore::open(&dir, false).unwrap();
        store.log_submit(7, "{}").unwrap();
        store.log_report(7, r#"{"batch":0}"#, None).unwrap();
        store.log_checkpoint(7, 0, 0xDEAD_BEEF, 128).unwrap();
        store.log_append(7, "[[1,2.5]]").unwrap();
        store.log_report(7, r#"{"batch":1}"#, None).unwrap();
        drop(store);
        let log = read_session_log(&dir, 7).unwrap();
        assert_eq!(
            log,
            vec![
                LogRecord::Report(r#"{"batch":0}"#.to_string()),
                LogRecord::Checkpoint {
                    batch: 0,
                    digest: 0xDEAD_BEEF,
                    bytes: 128
                },
                LogRecord::Append("[[1,2.5]]".to_string()),
                LogRecord::Report(r#"{"batch":1}"#.to_string()),
            ]
        );
        // A session that never ran has an empty (but present) log; an
        // unknown session has no log at all. Both read as empty.
        assert_eq!(read_session_log(&dir, 999).unwrap(), Vec::new());
    }

    #[test]
    fn torn_report_loses_the_tail() {
        let dir = scratch("torn");
        let store = DurableStore::open(&dir, false).unwrap();
        store.log_submit(3, "{}").unwrap();
        store.log_report(3, r#"{"batch":0}"#, None).unwrap();
        store.log_report(3, r#"{"batch":1}"#, Some(0.6)).unwrap();
        // Appends after the tear are unreachable — crash-loss semantics.
        store.log_report(3, r#"{"batch":2}"#, None).unwrap();
        drop(store);
        let log = read_session_log(&dir, 3).unwrap();
        assert_eq!(log, vec![LogRecord::Report(r#"{"batch":0}"#.to_string())]);
    }

    #[test]
    fn damage_truncate_leaves_a_valid_prefix() {
        let dir = scratch("chop");
        let store = DurableStore::open(&dir, false).unwrap();
        store.log_submit(4, "{}").unwrap();
        store.log_report(4, r#"{"batch":0}"#, None).unwrap();
        store.log_report(4, r#"{"batch":1}"#, None).unwrap();
        store.damage_truncate(4, 0.3).unwrap();
        drop(store);
        let log = read_session_log(&dir, 4).unwrap();
        assert_eq!(log, vec![LogRecord::Report(r#"{"batch":0}"#.to_string())]);
        // Full-body chop still never destroys the segment header.
        let store = DurableStore::open(&dir, false).unwrap();
        let len = store.damage_truncate(4, 1.0).unwrap();
        assert_eq!(len, SEGMENT_HEADER_LEN);
        drop(store);
        assert_eq!(read_session_log(&dir, 4).unwrap(), Vec::new());
    }

    #[test]
    fn missing_manifest_reads_as_empty_fleet() {
        let dir = scratch("empty");
        assert_eq!(read_manifest(&dir).unwrap(), Vec::new());
    }

    fn test_schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
            ("name", DataType::Str),
            ("ok", DataType::Bool),
        ])
    }

    #[test]
    fn wire_rows_coerce_against_the_schema() {
        let rows = wire::parse(r#"[[1, 2, "a", true], [2, 3.5, null, false]]"#).unwrap();
        let rel = rows_to_relation(&rows, &test_schema()).unwrap();
        assert_eq!(rel.len(), 2);
        let got = &rel.rows()[0].values;
        assert_eq!(got[0], Value::Int(1));
        // Bare `2` in a Float column becomes 2.0 — the schema decides.
        assert_eq!(got[1], Value::Float(2.0));
        assert_eq!(got[3], Value::Bool(true));
        assert_eq!(rel.rows()[1].values[2], Value::Null);
    }

    #[test]
    fn wire_rows_reject_shape_and_type_errors() {
        let schema = test_schema();
        let bad = |src: &str| rows_from_wire(&wire::parse(src).unwrap(), &schema).unwrap_err();
        assert!(bad("[]").contains("empty"));
        assert!(bad(r#"{"rows":1}"#).contains("array of arrays"));
        assert!(bad("[[1, 2, \"a\"]]").contains("3 cells"));
        assert!(bad(r#"[[1.5, 2.0, "a", true]]"#).contains("non-integral"));
        assert!(bad(r#"[["x", 2.0, "a", true]]"#).contains("cannot coerce"));
        assert!(bad(r#"[[1, 2.0, "a", [true]]]"#).contains("an array"));
    }
}
