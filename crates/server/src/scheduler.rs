//! The server core: worker pool, cooperative batch scheduler, admission
//! control, memory-ceiling shedding.
//!
//! ## Scheduling invariants
//!
//! * **One mini-batch per dispatch.** A worker takes the first session off
//!   the ready queue, runs exactly one `IolapDriver::step()` (which
//!   internally runs any §5.1 recovery replays to the batch boundary), and
//!   requeues the session behind its peers. No session can monopolize a
//!   worker.
//! * **Deterministic order.** The ready queue is a `BTreeSet` of
//!   `(priority, batches-done, session id, seed)` keys: strict priority
//!   first (lower = more urgent), then round-robin fairness by batches
//!   done, then the id/seed tie-break required for byte-reproducible
//!   fixed-seed runs. With `workers == 1` the whole global schedule is a
//!   pure function of the submission sequence.
//! * **Slots are freed at the first idle moment.** Completion, a met
//!   [`StopPolicy`], cancellation, and failure all release the live slot
//!   *and* the driver's memory immediately; undelivered reports survive in
//!   a bounded buffer (state `Draining`) until the client drains them.
//! * **Backpressure is explicit.** A full report buffer parks the session
//!   (off the ready queue) until the client pops; a full wait queue rejects
//!   `submit` with [`AdmitError::QueueFull`]; a breached memory ceiling
//!   sheds `Queued` work earliest-deadline-first — never `Running` work.
//!
//! The only unbounded block in this crate is the worker park on the `work`
//! condvar below (srclint L006 allowlists exactly that line); every client
//! wait is timeout-bounded.

use crate::policy::StopPolicy;
use crate::session::{
    AdmitError, SessionEnd, SessionHandle, SessionSpec, SessionState, SessionSummary,
};
use crate::telemetry::Telemetry;
use iolap_core::trace::NO_BATCH;
use iolap_core::{
    BatchReport, DriverError, IolapDriver, Span, SpanId, TraceEvent, TraceMode, Tracer,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and policy knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads stepping mini-batches (the compute parallelism).
    pub workers: usize,
    /// Bounded live-session slots (sessions eligible for scheduling).
    pub max_live: usize,
    /// Bounded wait queue behind the live slots; overflow is rejected.
    pub max_queued: usize,
    /// Global ceiling on live session memory (checkpoints + operator
    /// state, bytes). When breached, `Queued` work is shed
    /// earliest-deadline-first, one victim per scheduling event. `None`
    /// disables shedding.
    pub memory_ceiling: Option<usize>,
    /// Per-session bound on undelivered reports; a full buffer parks the
    /// session until the client pops (per-client backpressure).
    pub report_buffer: usize,
    /// Shard-parallel fold workers attached to each submitted driver
    /// (`0` = no sharding). Sharding changes *where* partitions fold,
    /// never the merge tree, so reports stay byte-identical (§8).
    pub shard_workers: usize,
    /// Scheduler trace journal mode ([`TraceMode::Off`] by default —
    /// same zero-cost-when-off gating as the driver's tracer). When on,
    /// every session lifecycle transition and scheduler decision lands a
    /// `sess.*`/`sched.*` mark in the server's journal.
    pub trace_mode: TraceMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_live: 8,
            max_queued: 16,
            memory_ceiling: None,
            report_buffer: 64,
            shard_workers: 0,
            trace_mode: TraceMode::Off,
        }
    }
}

impl ServerConfig {
    /// Config with `workers` worker threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig {
            workers: workers.max(1),
            ..ServerConfig::default()
        }
    }

    /// Set the live-slot bound.
    pub fn max_live(mut self, n: usize) -> Self {
        self.max_live = n.max(1);
        self
    }

    /// Set the wait-queue bound.
    pub fn max_queued(mut self, n: usize) -> Self {
        self.max_queued = n;
        self
    }

    /// Set the global memory ceiling in bytes.
    pub fn memory_ceiling(mut self, bytes: usize) -> Self {
        self.memory_ceiling = Some(bytes);
        self
    }

    /// Set the per-session report-buffer bound.
    pub fn report_buffer(mut self, n: usize) -> Self {
        self.report_buffer = n.max(1);
        self
    }

    /// Attach an in-process shard pool of `n` workers to every submitted
    /// driver (`0` disables sharding).
    pub fn shards(mut self, n: usize) -> Self {
        self.shard_workers = n;
        self
    }

    /// Enable the scheduler trace journal.
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }
}

/// Counters exposed by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently holding live slots.
    pub live: usize,
    /// Sessions waiting in the admission queue.
    pub queued: usize,
    /// Sessions ever admitted (live + queued + finished).
    pub admitted: u64,
    /// Submissions rejected with [`AdmitError::QueueFull`].
    pub rejected: u64,
    /// Queued sessions shed by the memory-ceiling policy.
    pub shed: u64,
    /// Current accounted memory across non-terminal sessions (bytes).
    pub mem_bytes: usize,
}

/// Ready-queue ordering: strict priority, then round-robin by batches
/// done, then the deterministic `(session id, seed)` tie-break. Derived
/// lexicographic `Ord` over the field order *is* the scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    priority: u8,
    rounds: usize,
    id: u64,
    seed: u64,
}

/// Per-session bookkeeping owned by the scheduler.
struct Slot {
    spec: SessionSpec,
    seed: u64,
    total_batches: usize,
    state: SessionState,
    end: Option<SessionEnd>,
    end_seq: Option<u64>,
    /// Present whenever no worker is currently stepping the session (and
    /// the session still has compute left). `None` while a worker holds
    /// the driver, and permanently `None` once finished.
    driver: Option<IolapDriver>,
    batches_run: usize,
    reports: VecDeque<BatchReport>,
    cancel: bool,
    /// Parked because the report buffer hit its bound; re-readied by the
    /// client's next pop.
    waiting_buffer: bool,
    holds_slot: bool,
    mem_bytes: usize,
    submit_span: Span,
    first_step: Option<Span>,
    finish_elapsed: Option<Duration>,
}

impl Slot {
    fn ready_key(&self, id: u64) -> ReadyKey {
        ReadyKey {
            priority: self.spec.priority,
            rounds: self.batches_run,
            id,
            seed: self.seed,
        }
    }
}

/// What to do with a session after a worker finished one step.
enum Outcome {
    /// More work: requeue (or park on a full report buffer).
    Continue,
    /// No more compute; undelivered reports may remain.
    Finish(SessionEnd),
}

struct State {
    next_id: u64,
    end_counter: u64,
    sessions: BTreeMap<u64, Slot>,
    ready: BTreeSet<ReadyKey>,
    queued: VecDeque<u64>,
    live: usize,
    admitted: u64,
    rejected: u64,
    shed: u64,
    shutdown: bool,
    /// Fleet telemetry rollups, updated under this same lock (no second
    /// mutex, no new lock order for the L009 analysis to chase).
    telemetry: Telemetry,
}

/// State shared between the [`Server`], its workers, and every
/// [`SessionHandle`].
pub struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Scheduler trace journal (`None` when `cfg.trace_mode` is off).
    /// Events are emitted while the state lock is held, which serializes
    /// their sequence numbers with the scheduling decisions they record.
    tracer: Option<Arc<Tracer>>,
    /// Workers park here; signaled on every ready-queue insertion.
    work: Condvar,
    /// Clients park here (timeout-bounded); signaled on every report
    /// delivery and lifecycle transition.
    client: Condvar,
}

/// Emit one scheduler lifecycle mark: an instant with the session id in
/// `n` (so [`crate::telemetry::canonical_trace`] can group per session)
/// and no span/batch attribution. Every state-transition site in this
/// module must route through here when tracing is on — srclint rule L011
/// rejects a transition without a `trace_mark` in the same function.
fn trace_mark(tracer: Option<&Tracer>, name: &'static str, id: u64, detail: &str) {
    if let Some(t) = tracer {
        t.instant(name, NO_BATCH, SpanId::NONE, id, detail);
    }
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    // A worker panicking while holding the lock poisons it; the state it
    // guards is counters and queues that the panic path has already made
    // consistent (the panicking step is caught before requeue), so recover
    // rather than cascade poison to every client.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    // ----- client-side operations (called from SessionHandle) -----

    /// Pop the oldest undelivered report. Re-readies a buffer-parked
    /// session and flips `Draining → Done` when the last report leaves.
    pub(crate) fn pop_report(&self, id: u64) -> Option<BatchReport> {
        let mut st = lock(self);
        let slot = st.sessions.get_mut(&id)?;
        let report = slot.reports.pop_front()?;
        if slot.waiting_buffer && !slot.cancel && slot.driver.is_some() {
            slot.waiting_buffer = false;
            trace_mark(
                self.tracer.as_deref(),
                "sess.unpark",
                id,
                "client drained buffer",
            );
            let key = slot.ready_key(id);
            st.ready.insert(key);
            self.work.notify_one();
        } else if slot.state == SessionState::Draining && slot.reports.is_empty() {
            slot.state = SessionState::Done;
            trace_mark(self.tracer.as_deref(), "sess.done", id, "buffer drained");
            self.client.notify_all();
        }
        Some(report)
    }

    /// Bounded wait for the next report (guard held across check + wait,
    /// so no wakeup between them is lost). `None` on timeout or when the
    /// session is terminal with an empty buffer.
    pub(crate) fn recv_report(&self, id: u64, timeout: Duration) -> Option<BatchReport> {
        let start = Span::start();
        let mut st = lock(self);
        loop {
            let slot = st.sessions.get(&id)?;
            if !slot.reports.is_empty() {
                drop(st);
                return self.pop_report(id);
            }
            if slot.state.is_terminal() {
                return None;
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return None;
            }
            let (guard, _) = self
                .client
                .wait_timeout(st, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Bounded wait until the session is finished (no more compute).
    pub(crate) fn wait_finished(&self, id: u64, timeout: Duration) -> bool {
        let start = Span::start();
        let mut st = lock(self);
        loop {
            match st.sessions.get(&id) {
                None => return true,
                Some(slot) if slot.state.is_finished() => return true,
                Some(_) => {}
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return false;
            }
            let (guard, _) = self
                .client
                .wait_timeout(st, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Cancel `id`. Synchronous when no worker holds the driver (queued,
    /// ready, or buffer-parked); otherwise deferred to the in-flight batch
    /// boundary (its report is still delivered).
    pub(crate) fn cancel(&self, id: u64) {
        let mut st = lock(self);
        let Some(slot) = st.sessions.get_mut(&id) else {
            return;
        };
        if slot.state.is_finished() {
            return;
        }
        slot.cancel = true;
        if slot.driver.is_some() {
            // Not currently being stepped: tear down now.
            let key = slot.ready_key(id);
            st.ready.remove(&key);
            st.queued.retain(|q| *q != id);
            finish(self, &mut st, id, SessionEnd::Cancelled);
            self.work.notify_all();
        }
        self.client.notify_all();
    }

    pub(crate) fn session_state(&self, id: u64) -> SessionState {
        let st = lock(self);
        st.sessions
            .get(&id)
            .map(|s| s.state)
            .unwrap_or(SessionState::Failed)
    }

    pub(crate) fn summary(&self, id: u64) -> SessionSummary {
        let st = lock(self);
        let slot = st.sessions.get(&id);
        match slot {
            None => SessionSummary {
                id,
                label: String::new(),
                state: SessionState::Failed,
                end: Some(SessionEnd::Failed("unknown session".into())),
                batches_run: 0,
                total_batches: 0,
                pending_reports: 0,
                elapsed: None,
                end_seq: None,
                mem_bytes: 0,
            },
            Some(s) => SessionSummary {
                id,
                label: s.spec.label.clone(),
                state: s.state,
                end: s.end.clone(),
                batches_run: s.batches_run,
                total_batches: s.total_batches,
                pending_reports: s.reports.len(),
                elapsed: s.finish_elapsed,
                end_seq: s.end_seq,
                mem_bytes: s.mem_bytes,
            },
        }
    }
}

// ----- scheduler-internal state transitions (free functions over State so
// borrows of individual slots never overlap the container mutation) -----

/// Sum of accounted memory across non-terminal sessions.
fn live_mem(st: &State) -> usize {
    st.sessions
        .values()
        .filter(|s| !s.state.is_terminal())
        .map(|s| s.mem_bytes)
        .sum()
}

/// Move waiting sessions into freed live slots (FIFO admission order).
fn admit_from_queue(shared: &Shared, st: &mut State) {
    while st.live < shared.cfg.max_live {
        let Some(id) = st.queued.pop_front() else {
            return;
        };
        // Queued ids always have a slot; if one ever goes missing, skip it
        // rather than poisoning the scheduler lock with a panic.
        let Some(slot) = st.sessions.get_mut(&id) else {
            continue;
        };
        st.live += 1;
        slot.holds_slot = true;
        trace_mark(shared.tracer.as_deref(), "sess.admit", id, "from queue");
        let key = slot.ready_key(id);
        st.ready.insert(key);
    }
}

/// While the memory ceiling is breached, shed one `Queued` victim:
/// earliest deadline first (`None` = latest possible), ties to the
/// youngest (largest id). Running sessions are never shed.
fn shed_over_ceiling(shared: &Shared, st: &mut State) {
    let Some(ceiling) = shared.cfg.memory_ceiling else {
        return;
    };
    if st.queued.is_empty() || live_mem(st) <= ceiling {
        return;
    }
    let Some(victim) = st.queued.iter().copied().min_by_key(|id| {
        let deadline = st
            .sessions
            .get(id)
            .and_then(|s| s.spec.deadline)
            .unwrap_or(Duration::MAX);
        (deadline, std::cmp::Reverse(*id))
    }) else {
        return;
    };
    st.queued.retain(|q| *q != victim);
    st.shed += 1;
    trace_mark(
        shared.tracer.as_deref(),
        "sched.shed",
        victim,
        "memory ceiling, EDF victim",
    );
    finish(shared, st, victim, SessionEnd::Shed);
}

/// Terminalize (or start draining) session `id` with reason `end`: record
/// the end, free the driver and accounted memory, release the live slot,
/// admit waiting work, and run the shed check.
fn finish(shared: &Shared, st: &mut State, id: u64, end: SessionEnd) {
    st.end_counter += 1;
    let seq = st.end_counter;
    let released = {
        let State {
            sessions,
            telemetry,
            ..
        } = &mut *st;
        let Some(slot) = sessions.get_mut(&id) else {
            return;
        };
        slot.state = match &end {
            SessionEnd::Completed | SessionEnd::TargetMet { .. } => {
                if slot.reports.is_empty() {
                    SessionState::Done
                } else {
                    SessionState::Draining
                }
            }
            SessionEnd::Cancelled | SessionEnd::Shed => SessionState::Cancelled,
            SessionEnd::Failed(_) => SessionState::Failed,
        };
        trace_mark(
            shared.tracer.as_deref(),
            "sess.finish",
            id,
            &format!("end={} state={}", end.label(), slot.state.as_str()),
        );
        // Harvest shard-worker counters before the driver (and its pool)
        // is dropped; the worker-held-driver path harvests in worker_loop.
        if let Some(d) = slot.driver.take() {
            telemetry.observe_workers(&d.shard_worker_stats());
        }
        telemetry.observe_finish(id, &end);
        slot.end = Some(end);
        slot.end_seq = Some(seq);
        slot.finish_elapsed = Some(slot.submit_span.elapsed());
        slot.mem_bytes = 0;
        slot.waiting_buffer = false;
        let released = slot.holds_slot;
        slot.holds_slot = false;
        released
    };
    if released {
        st.live -= 1;
        admit_from_queue(shared, st);
    }
}

/// Whether `policy` is satisfied by the batch just delivered.
fn policy_met(policy: &StopPolicy, report: &BatchReport, slot: &Slot) -> bool {
    match policy {
        StopPolicy::Batches(n) => slot.batches_run >= *n,
        StopPolicy::RelativeCI { target, .. } => report
            .result
            .max_relative_ci_halfwidth()
            .is_some_and(|w| w <= *target),
        StopPolicy::Deadline(d) => slot.first_step.map(|s| s.elapsed() >= *d).unwrap_or(false),
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panic".to_string()
    }
}

/// One worker: pick the first ready session, step it once, bookkeep.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Acquire: first key in the ready order, taking driver ownership.
        let (id, mut driver) = {
            let mut st = lock(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(key) = st.ready.iter().next().copied() {
                    st.ready.remove(&key);
                    // A dangling ready key (session gone, or its driver
                    // already owned elsewhere) is dropped and the scan
                    // resumes — never a worker panic under the state lock.
                    let Some(slot) = st.sessions.get_mut(&key.id) else {
                        continue;
                    };
                    let Some(d) = slot.driver.take() else {
                        continue;
                    };
                    if slot.state == SessionState::Queued {
                        slot.state = SessionState::Running;
                        slot.first_step = Some(Span::start());
                        trace_mark(
                            shared.tracer.as_deref(),
                            "sess.running",
                            key.id,
                            "first step",
                        );
                    }
                    trace_mark(
                        shared.tracer.as_deref(),
                        "sched.pick",
                        key.id,
                        &format!("rounds={} priority={}", key.rounds, key.priority),
                    );
                    break (key.id, d);
                }
                // The worker park: the one sanctioned unbounded wait in
                // this crate (srclint L006 allowlists exactly this call).
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };

        // Step outside the lock: one mini-batch, including any §5.1
        // recovery replays the driver runs internally. The driver has its
        // own catch_unwind around operator code; this outer one is the
        // belt-and-braces that keeps a scheduler worker alive no matter
        // what escapes.
        let step: Result<Option<Result<BatchReport, DriverError>>, _> =
            catch_unwind(AssertUnwindSafe(|| driver.step()));

        let mut st = lock(&shared);
        let cfg = &shared.cfg;
        let outcome = {
            // If the slot vanished while we stepped (a bookkeeping bug, not
            // a reachable state), drop the orphan driver and move on.
            let State {
                sessions,
                telemetry,
                ..
            } = &mut *st;
            let Some(slot) = sessions.get_mut(&id) else {
                continue;
            };
            match step {
                Err(p) => Outcome::Finish(SessionEnd::Failed(panic_message(p))),
                Ok(None) => Outcome::Finish(SessionEnd::Completed),
                Ok(Some(Err(e))) => Outcome::Finish(SessionEnd::Failed(e.to_string())),
                Ok(Some(Ok(report))) => {
                    slot.batches_run += 1;
                    slot.mem_bytes = driver.checkpoint_footprint().1
                        + report.state_bytes_join
                        + report.state_bytes_other;
                    let done_all = driver.batches_done() >= driver.num_batches();
                    let met = policy_met(&slot.spec.policy, &report, slot);
                    telemetry.observe_batch(
                        id,
                        slot.batches_run,
                        report.result.max_relative_ci_halfwidth(),
                        &report.metrics,
                    );
                    slot.reports.push_back(report);
                    if slot.cancel {
                        Outcome::Finish(SessionEnd::Cancelled)
                    } else if done_all {
                        Outcome::Finish(SessionEnd::Completed)
                    } else if met {
                        Outcome::Finish(SessionEnd::TargetMet {
                            batches: slot.batches_run,
                        })
                    } else {
                        Outcome::Continue
                    }
                }
            }
        };
        match outcome {
            Outcome::Finish(end) => {
                // This worker still owns the driver finish() never sees;
                // harvest its shard-pool counters before dropping it.
                st.telemetry.observe_workers(&driver.shard_worker_stats());
                finish(&shared, &mut st, id, end);
            }
            Outcome::Continue => {
                let Some(slot) = st.sessions.get_mut(&id) else {
                    continue;
                };
                slot.driver = Some(driver);
                if slot.reports.len() >= cfg.report_buffer {
                    slot.waiting_buffer = true;
                    trace_mark(
                        shared.tracer.as_deref(),
                        "sess.park",
                        id,
                        "report buffer full",
                    );
                } else {
                    let key = slot.ready_key(id);
                    st.ready.insert(key);
                }
            }
        }
        // One shed victim per scheduling event: pressure that persists
        // keeps shedding on subsequent events, but a single breach never
        // mass-evicts the queue in one sweep.
        shed_over_ceiling(&shared, &mut st);
        drop(st);
        shared.work.notify_all();
        shared.client.notify_all();
    }
}

/// The multi-tenant serving core: a bounded worker pool cooperatively
/// scheduling many concurrent incremental query sessions. See the module
/// docs for the invariants.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start a server: spawns `cfg.workers` worker threads immediately.
    pub fn new(cfg: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            tracer: Tracer::from_mode(cfg.trace_mode).map(Arc::new),
            cfg: cfg.clone(),
            state: Mutex::new(State {
                next_id: 0,
                end_counter: 0,
                sessions: BTreeMap::new(),
                ready: BTreeSet::new(),
                queued: VecDeque::new(),
                live: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                shutdown: false,
                telemetry: Telemetry::default(),
            }),
            work: Condvar::new(),
            client: Condvar::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a driver as a new session. Returns a handle immediately, or
    /// rejects explicitly when both the live slots and the wait queue are
    /// full — admission never blocks the caller.
    pub fn submit(
        &self,
        driver: IolapDriver,
        spec: SessionSpec,
    ) -> Result<SessionHandle, AdmitError> {
        let cfg = &self.shared.cfg;
        let mut st = lock(&self.shared);
        if st.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if st.live >= cfg.max_live && st.queued.len() >= cfg.max_queued {
            st.rejected += 1;
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.reject",
                st.next_id,
                "live slots and wait queue full",
            );
            return Err(AdmitError::QueueFull {
                live: st.live,
                queued: st.queued.len(),
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.admitted += 1;
        let seed = driver.config().seed;
        let total_batches = driver.num_batches();
        trace_mark(
            self.shared.tracer.as_deref(),
            "sess.submit",
            id,
            &format!("label={}", spec.label),
        );
        st.telemetry
            .observe_submit(id, &spec.label, total_batches, &spec.policy);
        let mut slot = Slot {
            spec,
            seed,
            total_batches,
            state: SessionState::Queued,
            end: None,
            end_seq: None,
            driver: Some(driver),
            batches_run: 0,
            reports: VecDeque::new(),
            cancel: false,
            waiting_buffer: false,
            holds_slot: false,
            mem_bytes: 0,
            submit_span: Span::start(),
            first_step: None,
            finish_elapsed: None,
        };
        if st.live < cfg.max_live {
            st.live += 1;
            slot.holds_slot = true;
            trace_mark(self.shared.tracer.as_deref(), "sess.admit", id, "direct");
            let key = slot.ready_key(id);
            st.sessions.insert(id, slot);
            st.ready.insert(key);
        } else {
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.queued",
                id,
                "waiting for a slot",
            );
            st.sessions.insert(id, slot);
            st.queued.push_back(id);
        }
        shed_over_ceiling(&self.shared, &mut st);
        drop(st);
        self.shared.work.notify_one();
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            id,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let st = lock(&self.shared);
        ServerStats {
            live: st.live,
            queued: st.queued.len(),
            admitted: st.admitted,
            rejected: st.rejected,
            shed: st.shed,
            mem_bytes: live_mem(&st),
        }
    }

    /// The server's sizing config.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.cfg
    }

    /// Snapshot of the scheduler trace journal, in sequence order (empty
    /// when tracing is off). Pass through
    /// [`crate::telemetry::canonical_trace`] before byte comparison.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared
            .tracer
            .as_ref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Clone of the fleet telemetry rollups (sessions, tenants, shards,
    /// SLO burn counters), taken under the scheduler lock.
    pub fn telemetry(&self) -> Telemetry {
        lock(&self.shared).telemetry.clone()
    }

    /// Prometheus-style text exposition of the fleet state, rendered from
    /// one consistent snapshot (telemetry and admission counters read
    /// under a single lock acquisition). `canonical` excludes wall-clock
    /// and shard-topology families for byte-deterministic comparison.
    pub fn exposition(&self, canonical: bool) -> String {
        let st = lock(&self.shared);
        let stats = ServerStats {
            live: st.live,
            queued: st.queued.len(),
            admitted: st.admitted,
            rejected: st.rejected,
            shed: st.shed,
            mem_bytes: live_mem(&st),
        };
        crate::telemetry::render_exposition(&st.telemetry, &stats, canonical)
    }

    /// Stop the workers after their in-flight steps and join them.
    /// Unfinished sessions stay in whatever state they reached; buffered
    /// reports remain drainable.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.client.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Server")
            .field("workers", &self.shared.cfg.workers)
            .field("stats", &stats)
            .finish()
    }
}
