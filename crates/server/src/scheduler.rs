//! The server core: worker pool, cooperative batch scheduler, admission
//! control, memory-ceiling shedding.
//!
//! ## Scheduling invariants
//!
//! * **One mini-batch per dispatch.** A worker takes the first session off
//!   the ready queue, runs exactly one `IolapDriver::step()` (which
//!   internally runs any §5.1 recovery replays to the batch boundary), and
//!   requeues the session behind its peers. No session can monopolize a
//!   worker.
//! * **Deterministic order.** The ready queue is a `BTreeSet` of
//!   `(priority, batches-done, session id, seed)` keys: strict priority
//!   first (lower = more urgent), then round-robin fairness by batches
//!   done, then the id/seed tie-break required for byte-reproducible
//!   fixed-seed runs. With `workers == 1` the whole global schedule is a
//!   pure function of the submission sequence.
//! * **Slots are freed at the first idle moment.** Completion, a met
//!   [`StopPolicy`], cancellation, and failure all release the live slot
//!   *and* the driver's memory immediately; undelivered reports survive in
//!   a bounded buffer (state `Draining`) until the client drains them.
//! * **Backpressure is explicit.** A full report buffer parks the session
//!   (off the ready queue) until the client pops; a full wait queue rejects
//!   `submit` with [`AdmitError::QueueFull`]; a breached memory ceiling
//!   sheds `Queued` work earliest-deadline-first — never `Running` work.
//!
//! The only unbounded block in this crate is the worker park on the `work`
//! condvar below (srclint L006 allowlists exactly that line); every client
//! wait is timeout-bounded.

use crate::durable::DurableStore;
use crate::policy::StopPolicy;
use crate::session::{
    AdmitError, SessionEnd, SessionHandle, SessionSpec, SessionState, SessionSummary,
};
use crate::telemetry::Telemetry;
use iolap_core::trace::NO_BATCH;
use iolap_core::{
    BatchReport, DriverError, IolapDriver, Span, SpanId, TraceEvent, TraceMode, Tracer,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and policy knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads stepping mini-batches (the compute parallelism).
    pub workers: usize,
    /// Bounded live-session slots (sessions eligible for scheduling).
    pub max_live: usize,
    /// Bounded wait queue behind the live slots; overflow is rejected.
    pub max_queued: usize,
    /// Global ceiling on live session memory (checkpoints + operator
    /// state, bytes). When breached, `Queued` work is shed
    /// earliest-deadline-first, one victim per scheduling event. `None`
    /// disables shedding.
    pub memory_ceiling: Option<usize>,
    /// Per-session bound on undelivered reports; a full buffer parks the
    /// session until the client pops (per-client backpressure).
    pub report_buffer: usize,
    /// Shard-parallel fold workers attached to each submitted driver
    /// (`0` = no sharding). Sharding changes *where* partitions fold,
    /// never the merge tree, so reports stay byte-identical (§8).
    pub shard_workers: usize,
    /// Scheduler trace journal mode ([`TraceMode::Off`] by default —
    /// same zero-cost-when-off gating as the driver's tracer). When on,
    /// every session lifecycle transition and scheduler decision lands a
    /// `sess.*`/`sched.*` mark in the server's journal.
    pub trace_mode: TraceMode,
    /// Directory for the durable session store (`None` = no persistence).
    /// When set, every admission, batch report, checkpoint fingerprint,
    /// and streaming append is spilled to `iolap-store` segments, and
    /// [`Server::recover`] can rebuild live sessions after a restart.
    pub durable_dir: Option<PathBuf>,
    /// Whether every durable append is fsynced before the write returns
    /// (crash-consistent even through power loss, at a latency cost the
    /// `durability` bench sweep measures). Off by default.
    pub durable_fsync: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_live: 8,
            max_queued: 16,
            memory_ceiling: None,
            report_buffer: 64,
            shard_workers: 0,
            trace_mode: TraceMode::Off,
            durable_dir: None,
            durable_fsync: false,
        }
    }
}

impl ServerConfig {
    /// Config with `workers` worker threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig {
            workers: workers.max(1),
            ..ServerConfig::default()
        }
    }

    /// Set the live-slot bound.
    pub fn max_live(mut self, n: usize) -> Self {
        self.max_live = n.max(1);
        self
    }

    /// Set the wait-queue bound.
    pub fn max_queued(mut self, n: usize) -> Self {
        self.max_queued = n;
        self
    }

    /// Set the global memory ceiling in bytes.
    pub fn memory_ceiling(mut self, bytes: usize) -> Self {
        self.memory_ceiling = Some(bytes);
        self
    }

    /// Set the per-session report-buffer bound.
    pub fn report_buffer(mut self, n: usize) -> Self {
        self.report_buffer = n.max(1);
        self
    }

    /// Attach an in-process shard pool of `n` workers to every submitted
    /// driver (`0` disables sharding).
    pub fn shards(mut self, n: usize) -> Self {
        self.shard_workers = n;
        self
    }

    /// Enable the scheduler trace journal.
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Persist session state under `dir` (enables [`Server::recover`]).
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Fsync every durable append before returning.
    pub fn durable_fsync(mut self, fsync: bool) -> Self {
        self.durable_fsync = fsync;
        self
    }
}

/// Counters exposed by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently holding live slots.
    pub live: usize,
    /// Sessions waiting in the admission queue.
    pub queued: usize,
    /// Sessions ever admitted (live + queued + finished).
    pub admitted: u64,
    /// Submissions rejected with [`AdmitError::QueueFull`].
    pub rejected: u64,
    /// Queued sessions shed by the memory-ceiling policy.
    pub shed: u64,
    /// Current accounted memory across non-terminal sessions (bytes).
    pub mem_bytes: usize,
}

/// What [`Server::recover`] restored from the durable store.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Sessions rebuilt and resumed, in manifest (admission) order.
    pub resumed: Vec<u64>,
    /// Sessions that could not be restored, with the reason. `u64::MAX`
    /// as the id marks a manifest-level failure.
    pub skipped: Vec<(u64, String)>,
    /// Mini-batches re-run across all resumed sessions.
    pub replayed_batches: usize,
    /// Streaming appends re-applied at their logged positions.
    pub reapplied_appends: usize,
    /// Logged checkpoint digests that disagreed with the re-derived
    /// state (the `stale_manifest` fault, or genuine on-disk rot).
    pub stale_digests: usize,
}

/// Result of attaching to a session id via [`Server::resume_session`].
#[derive(Debug)]
pub enum ResumeStatus {
    /// The session was restored by [`Server::recover`]; poll the handle.
    Attached(SessionHandle),
    /// The durable manifest saw this session finish (`'D'` record, with
    /// this end label) — there is nothing to resume.
    Finished(String),
    /// No restored session and no manifest record for this id.
    Unknown,
}

/// Ready-queue ordering: strict priority, then round-robin by batches
/// done, then the deterministic `(session id, seed)` tie-break. Derived
/// lexicographic `Ord` over the field order *is* the scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    priority: u8,
    rounds: usize,
    id: u64,
    seed: u64,
}

/// Per-session bookkeeping owned by the scheduler.
struct Slot {
    spec: SessionSpec,
    seed: u64,
    total_batches: usize,
    state: SessionState,
    end: Option<SessionEnd>,
    end_seq: Option<u64>,
    /// Present whenever no worker is currently stepping the session (and
    /// the session still has compute left). `None` while a worker holds
    /// the driver, and permanently `None` once finished.
    driver: Option<IolapDriver>,
    batches_run: usize,
    reports: VecDeque<BatchReport>,
    cancel: bool,
    /// Parked because the report buffer hit its bound; re-readied by the
    /// client's next pop.
    waiting_buffer: bool,
    holds_slot: bool,
    mem_bytes: usize,
    submit_span: Span,
    first_step: Option<Span>,
    finish_elapsed: Option<Duration>,
    /// The driver's streamed table name, cached at submit so
    /// [`Server::append_rows`] can route appends without touching the
    /// driver (which a worker may own at that moment).
    stream_table: String,
    /// Streaming appends awaiting application: canonical rows JSON, in
    /// arrival order. Drained (and applied to the driver) by the next
    /// worker that picks the session up.
    pending_appends: VecDeque<String>,
    /// Rebuilt by [`Server::recover`] from the durable log (rather than
    /// submitted on this process's wire); `{"op":"resume"}` only attaches
    /// to restored sessions.
    restored: bool,
}

impl Slot {
    fn ready_key(&self, id: u64) -> ReadyKey {
        ReadyKey {
            priority: self.spec.priority,
            rounds: self.batches_run,
            id,
            seed: self.seed,
        }
    }
}

/// What to do with a session after a worker finished one step.
enum Outcome {
    /// More work: requeue (or park on a full report buffer).
    Continue,
    /// No more compute; undelivered reports may remain.
    Finish(SessionEnd),
}

struct State {
    next_id: u64,
    end_counter: u64,
    sessions: BTreeMap<u64, Slot>,
    ready: BTreeSet<ReadyKey>,
    queued: VecDeque<u64>,
    live: usize,
    admitted: u64,
    rejected: u64,
    shed: u64,
    shutdown: bool,
    /// Fleet telemetry rollups, updated under this same lock (no second
    /// mutex, no new lock order for the L009 analysis to chase).
    telemetry: Telemetry,
}

/// State shared between the [`Server`], its workers, and every
/// [`SessionHandle`].
pub struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Scheduler trace journal (`None` when `cfg.trace_mode` is off).
    /// Events are emitted while the state lock is held, which serializes
    /// their sequence numbers with the scheduling decisions they record.
    tracer: Option<Arc<Tracer>>,
    /// Workers park here; signaled on every ready-queue insertion.
    work: Condvar,
    /// Clients park here (timeout-bounded); signaled on every report
    /// delivery and lifecycle transition.
    client: Condvar,
    /// Durable session store (`None` when `cfg.durable_dir` is unset or
    /// the directory could not be opened). Lock order: the state lock may
    /// be held when taking the store's lock (`finish` writes the `'D'`
    /// record under it); never the reverse.
    durable: Option<Arc<DurableStore>>,
}

/// Emit one scheduler lifecycle mark: an instant with the session id in
/// `n` (so [`crate::telemetry::canonical_trace`] can group per session)
/// and no span/batch attribution. Every state-transition site in this
/// module must route through here when tracing is on — srclint rule L011
/// rejects a transition without a `trace_mark` in the same function.
fn trace_mark(tracer: Option<&Tracer>, name: &'static str, id: u64, detail: &str) {
    if let Some(t) = tracer {
        t.instant(name, NO_BATCH, SpanId::NONE, id, detail);
    }
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    // A worker panicking while holding the lock poisons it; the state it
    // guards is counters and queues that the panic path has already made
    // consistent (the panicking step is caught before requeue), so recover
    // rather than cascade poison to every client.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    // ----- client-side operations (called from SessionHandle) -----

    /// Pop the oldest undelivered report. Re-readies a buffer-parked
    /// session and flips `Draining → Done` when the last report leaves.
    pub(crate) fn pop_report(&self, id: u64) -> Option<BatchReport> {
        let mut st = lock(self);
        let slot = st.sessions.get_mut(&id)?;
        let report = slot.reports.pop_front()?;
        if slot.waiting_buffer && !slot.cancel && slot.driver.is_some() {
            slot.waiting_buffer = false;
            trace_mark(
                self.tracer.as_deref(),
                "sess.unpark",
                id,
                "client drained buffer",
            );
            let key = slot.ready_key(id);
            st.ready.insert(key);
            self.work.notify_one();
        } else if slot.state == SessionState::Draining && slot.reports.is_empty() {
            slot.state = SessionState::Done;
            trace_mark(self.tracer.as_deref(), "sess.done", id, "buffer drained");
            self.client.notify_all();
        }
        Some(report)
    }

    /// Bounded wait for the next report (guard held across check + wait,
    /// so no wakeup between them is lost). `None` on timeout or when the
    /// session is terminal with an empty buffer.
    pub(crate) fn recv_report(&self, id: u64, timeout: Duration) -> Option<BatchReport> {
        let start = Span::start();
        let mut st = lock(self);
        loop {
            let slot = st.sessions.get(&id)?;
            if !slot.reports.is_empty() {
                drop(st);
                return self.pop_report(id);
            }
            if slot.state.is_terminal() {
                return None;
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return None;
            }
            let (guard, _) = self
                .client
                .wait_timeout(st, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Bounded wait until the session is finished (no more compute).
    pub(crate) fn wait_finished(&self, id: u64, timeout: Duration) -> bool {
        let start = Span::start();
        let mut st = lock(self);
        loop {
            match st.sessions.get(&id) {
                None => return true,
                Some(slot) if slot.state.is_finished() => return true,
                Some(_) => {}
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return false;
            }
            let (guard, _) = self
                .client
                .wait_timeout(st, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Cancel `id`. Synchronous when no worker holds the driver (queued,
    /// ready, or buffer-parked); otherwise deferred to the in-flight batch
    /// boundary (its report is still delivered).
    pub(crate) fn cancel(&self, id: u64) {
        let mut st = lock(self);
        let Some(slot) = st.sessions.get_mut(&id) else {
            return;
        };
        if slot.state.is_finished() {
            return;
        }
        slot.cancel = true;
        if slot.driver.is_some() {
            // Not currently being stepped: tear down now.
            let key = slot.ready_key(id);
            st.ready.remove(&key);
            st.queued.retain(|q| *q != id);
            finish(self, &mut st, id, SessionEnd::Cancelled);
            self.work.notify_all();
        }
        self.client.notify_all();
    }

    pub(crate) fn session_state(&self, id: u64) -> SessionState {
        let st = lock(self);
        st.sessions
            .get(&id)
            .map(|s| s.state)
            .unwrap_or(SessionState::Failed)
    }

    pub(crate) fn summary(&self, id: u64) -> SessionSummary {
        let st = lock(self);
        let slot = st.sessions.get(&id);
        match slot {
            None => SessionSummary {
                id,
                label: String::new(),
                state: SessionState::Failed,
                end: Some(SessionEnd::Failed("unknown session".into())),
                batches_run: 0,
                total_batches: 0,
                pending_reports: 0,
                elapsed: None,
                end_seq: None,
                mem_bytes: 0,
            },
            Some(s) => SessionSummary {
                id,
                label: s.spec.label.clone(),
                state: s.state,
                end: s.end.clone(),
                batches_run: s.batches_run,
                total_batches: s.total_batches,
                pending_reports: s.reports.len(),
                elapsed: s.finish_elapsed,
                end_seq: s.end_seq,
                mem_bytes: s.mem_bytes,
            },
        }
    }
}

// ----- scheduler-internal state transitions (free functions over State so
// borrows of individual slots never overlap the container mutation) -----

/// Sum of accounted memory across non-terminal sessions.
fn live_mem(st: &State) -> usize {
    st.sessions
        .values()
        .filter(|s| !s.state.is_terminal())
        .map(|s| s.mem_bytes)
        .sum()
}

/// Move waiting sessions into freed live slots (FIFO admission order).
fn admit_from_queue(shared: &Shared, st: &mut State) {
    while st.live < shared.cfg.max_live {
        let Some(id) = st.queued.pop_front() else {
            return;
        };
        // Queued ids always have a slot; if one ever goes missing, skip it
        // rather than poisoning the scheduler lock with a panic.
        let Some(slot) = st.sessions.get_mut(&id) else {
            continue;
        };
        st.live += 1;
        slot.holds_slot = true;
        trace_mark(shared.tracer.as_deref(), "sess.admit", id, "from queue");
        let key = slot.ready_key(id);
        st.ready.insert(key);
    }
}

/// While the memory ceiling is breached, shed one `Queued` victim:
/// earliest deadline first (`None` = latest possible), ties to the
/// youngest (largest id). Running sessions are never shed.
fn shed_over_ceiling(shared: &Shared, st: &mut State) {
    let Some(ceiling) = shared.cfg.memory_ceiling else {
        return;
    };
    if st.queued.is_empty() || live_mem(st) <= ceiling {
        return;
    }
    let Some(victim) = st.queued.iter().copied().min_by_key(|id| {
        let deadline = st
            .sessions
            .get(id)
            .and_then(|s| s.spec.deadline)
            .unwrap_or(Duration::MAX);
        (deadline, std::cmp::Reverse(*id))
    }) else {
        return;
    };
    st.queued.retain(|q| *q != victim);
    st.shed += 1;
    trace_mark(
        shared.tracer.as_deref(),
        "sched.shed",
        victim,
        "memory ceiling, EDF victim",
    );
    finish(shared, st, victim, SessionEnd::Shed);
}

/// Terminalize (or start draining) session `id` with reason `end`: record
/// the end, free the driver and accounted memory, release the live slot,
/// admit waiting work, and run the shed check.
fn finish(shared: &Shared, st: &mut State, id: u64, end: SessionEnd) {
    st.end_counter += 1;
    let seq = st.end_counter;
    let released = {
        let State {
            sessions,
            telemetry,
            ..
        } = &mut *st;
        let Some(slot) = sessions.get_mut(&id) else {
            return;
        };
        slot.state = match &end {
            SessionEnd::Completed | SessionEnd::TargetMet { .. } => {
                if slot.reports.is_empty() {
                    SessionState::Done
                } else {
                    SessionState::Draining
                }
            }
            SessionEnd::Cancelled | SessionEnd::Shed => SessionState::Cancelled,
            SessionEnd::Failed(_) => SessionState::Failed,
        };
        trace_mark(
            shared.tracer.as_deref(),
            "sess.finish",
            id,
            &format!("end={} state={}", end.label(), slot.state.as_str()),
        );
        // Harvest shard-worker counters before the driver (and its pool)
        // is dropped; the worker-held-driver path harvests in worker_loop.
        if let Some(d) = slot.driver.take() {
            telemetry.observe_workers(&d.shard_worker_stats());
        }
        telemetry.observe_finish(id, &end);
        // Durably mark the session finished ('D' record) so a restart
        // skips it. State lock held → store lock taken: the sanctioned
        // nesting direction.
        if let Some(durable) = &shared.durable {
            match durable.log_finish(id, end.label()) {
                Ok(()) => telemetry.observe_durable(1, 0),
                Err(_) => telemetry.observe_durable(0, 1),
            }
        }
        slot.end = Some(end);
        slot.end_seq = Some(seq);
        slot.finish_elapsed = Some(slot.submit_span.elapsed());
        slot.mem_bytes = 0;
        slot.waiting_buffer = false;
        let released = slot.holds_slot;
        slot.holds_slot = false;
        released
    };
    if released {
        st.live -= 1;
        admit_from_queue(shared, st);
    }
}

/// Whether `policy` is satisfied by the batch just delivered.
fn policy_met(policy: &StopPolicy, report: &BatchReport, slot: &Slot) -> bool {
    match policy {
        StopPolicy::Batches(n) => slot.batches_run >= *n,
        StopPolicy::RelativeCI { target, .. } => report
            .result
            .max_relative_ci_halfwidth()
            .is_some_and(|w| w <= *target),
        StopPolicy::Deadline(d) => slot.first_step.map(|s| s.elapsed() >= *d).unwrap_or(false),
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panic".to_string()
    }
}

/// One worker: pick the first ready session, step it once, bookkeep.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Acquire: first key in the ready order, taking driver ownership
        // (and any streaming appends queued since the last step).
        let (id, mut driver, pending) = {
            let mut st = lock(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(key) = st.ready.iter().next().copied() {
                    st.ready.remove(&key);
                    // A dangling ready key (session gone, or its driver
                    // already owned elsewhere) is dropped and the scan
                    // resumes — never a worker panic under the state lock.
                    let Some(slot) = st.sessions.get_mut(&key.id) else {
                        continue;
                    };
                    let Some(d) = slot.driver.take() else {
                        continue;
                    };
                    let pending: Vec<String> = slot.pending_appends.drain(..).collect();
                    if slot.state == SessionState::Queued {
                        slot.state = SessionState::Running;
                        slot.first_step = Some(Span::start());
                        trace_mark(
                            shared.tracer.as_deref(),
                            "sess.running",
                            key.id,
                            "first step",
                        );
                    }
                    trace_mark(
                        shared.tracer.as_deref(),
                        "sched.pick",
                        key.id,
                        &format!("rounds={} priority={}", key.rounds, key.priority),
                    );
                    break (key.id, d, pending);
                }
                // The worker park: the one sanctioned unbounded wait in
                // this crate (srclint L006 allowlists exactly this call).
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };

        // Apply drained appends before stepping (outside the lock): the
        // driver grows new mini-batches at its tail, and the 'A' record is
        // written at exactly this point so replay order equals application
        // order. A row batch that fails to parse or coerce is dropped and
        // counted — it never poisons the session.
        let mut appends_applied = 0u64;
        let mut appends_rejected = 0u64;
        let mut durable_ok = 0u64;
        let mut durable_err = 0u64;
        for rows_json in pending {
            let parsed = crate::wire::parse(&rows_json).map_err(|e| e.to_string());
            let rel = parsed
                .and_then(|rows| crate::durable::rows_to_relation(&rows, driver.stream_schema()));
            let applied = rel.and_then(|rel| driver.append_rows(rel).map_err(|e| e.to_string()));
            match applied {
                Ok(_) => {
                    appends_applied += 1;
                    if let Some(durable) = shared.durable.as_deref() {
                        match durable.log_append(id, &rows_json) {
                            Ok(()) => durable_ok += 1,
                            Err(_) => durable_err += 1,
                        }
                    }
                }
                Err(_) => appends_rejected += 1,
            }
        }

        // Step outside the lock: one mini-batch, including any §5.1
        // recovery replays the driver runs internally. The driver has its
        // own catch_unwind around operator code; this outer one is the
        // belt-and-braces that keeps a scheduler worker alive no matter
        // what escapes.
        let step: Result<Option<Result<BatchReport, DriverError>>, _> =
            catch_unwind(AssertUnwindSafe(|| driver.step()));

        // Spill the delivered batch before re-entering the state lock:
        // the rendered report line and the checkpoint fingerprint, plus
        // any injected durable damage (the torn-write / truncated-segment
        // / stale-manifest fault kinds land exactly here, where a real
        // crash or filesystem lie would).
        if let Some(durable) = shared.durable.as_deref() {
            if let Ok(Some(Ok(report))) = &step {
                let torn = driver
                    .fault_injector()
                    .and_then(|f| f.inject_torn_write(report.batch));
                let stale = driver
                    .fault_injector()
                    .and_then(|f| f.inject_stale_manifest(report.batch));
                let chop = driver
                    .fault_injector()
                    .and_then(|f| f.inject_truncated_segment(report.batch));
                let line = crate::tcp::report_json(report);
                match durable.log_report(id, &line, torn) {
                    Ok(()) => durable_ok += 1,
                    Err(_) => durable_err += 1,
                }
                if let Some((digest, bytes)) = driver.checkpoint_for(report.batch) {
                    match durable.log_checkpoint(
                        id,
                        report.batch,
                        digest ^ stale.unwrap_or(0),
                        bytes as u64,
                    ) {
                        Ok(()) => durable_ok += 1,
                        Err(_) => durable_err += 1,
                    }
                }
                if let Some(fraction) = chop {
                    match durable.damage_truncate(id, fraction) {
                        Ok(_) => durable_ok += 1,
                        Err(_) => durable_err += 1,
                    }
                }
            }
        }

        let mut st = lock(&shared);
        let cfg = &shared.cfg;
        let outcome = {
            // If the slot vanished while we stepped (a bookkeeping bug, not
            // a reachable state), drop the orphan driver and move on.
            let State {
                sessions,
                telemetry,
                ..
            } = &mut *st;
            telemetry.observe_durable(durable_ok, durable_err);
            telemetry.observe_appends(appends_applied, appends_rejected);
            let Some(slot) = sessions.get_mut(&id) else {
                continue;
            };
            match step {
                Err(p) => Outcome::Finish(SessionEnd::Failed(panic_message(p))),
                // A drained stream with appends queued behind it is not
                // finished: requeue so the next pick applies them and the
                // driver grows new mini-batches.
                Ok(None) if slot.pending_appends.is_empty() => {
                    Outcome::Finish(SessionEnd::Completed)
                }
                Ok(None) => Outcome::Continue,
                Ok(Some(Err(e))) => Outcome::Finish(SessionEnd::Failed(e.to_string())),
                Ok(Some(Ok(report))) => {
                    slot.batches_run += 1;
                    slot.mem_bytes = driver.checkpoint_footprint().1
                        + report.state_bytes_join
                        + report.state_bytes_other;
                    let done_all = driver.batches_done() >= driver.num_batches();
                    let met = policy_met(&slot.spec.policy, &report, slot);
                    telemetry.observe_batch(
                        id,
                        slot.batches_run,
                        report.result.max_relative_ci_halfwidth(),
                        &report.metrics,
                    );
                    slot.reports.push_back(report);
                    if slot.cancel {
                        Outcome::Finish(SessionEnd::Cancelled)
                    } else if done_all && slot.pending_appends.is_empty() {
                        Outcome::Finish(SessionEnd::Completed)
                    } else if met {
                        Outcome::Finish(SessionEnd::TargetMet {
                            batches: slot.batches_run,
                        })
                    } else {
                        Outcome::Continue
                    }
                }
            }
        };
        match outcome {
            Outcome::Finish(end) => {
                // This worker still owns the driver finish() never sees;
                // harvest its shard-pool counters before dropping it.
                st.telemetry.observe_workers(&driver.shard_worker_stats());
                finish(&shared, &mut st, id, end);
            }
            Outcome::Continue => {
                let Some(slot) = st.sessions.get_mut(&id) else {
                    continue;
                };
                slot.driver = Some(driver);
                if slot.reports.len() >= cfg.report_buffer {
                    slot.waiting_buffer = true;
                    trace_mark(
                        shared.tracer.as_deref(),
                        "sess.park",
                        id,
                        "report buffer full",
                    );
                } else {
                    let key = slot.ready_key(id);
                    st.ready.insert(key);
                }
            }
        }
        // One shed victim per scheduling event: pressure that persists
        // keeps shedding on subsequent events, but a single breach never
        // mass-evicts the queue in one sweep.
        shed_over_ceiling(&shared, &mut st);
        drop(st);
        shared.work.notify_all();
        shared.client.notify_all();
    }
}

/// The multi-tenant serving core: a bounded worker pool cooperatively
/// scheduling many concurrent incremental query sessions. See the module
/// docs for the invariants.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start a server: spawns `cfg.workers` worker threads immediately.
    /// With `cfg.durable_dir` set, opens (or resumes) the durable store;
    /// an unopenable store degrades to in-memory operation with a warning
    /// rather than refusing to serve.
    pub fn new(cfg: ServerConfig) -> Server {
        let durable = cfg.durable_dir.as_ref().and_then(|dir| {
            match DurableStore::open(dir, cfg.durable_fsync) {
                Ok(store) => Some(Arc::new(store)),
                Err(e) => {
                    eprintln!(
                        "iolap-server: durable store at {} disabled: {e}",
                        dir.display()
                    );
                    None
                }
            }
        });
        let shared = Arc::new(Shared {
            tracer: Tracer::from_mode(cfg.trace_mode).map(Arc::new),
            durable,
            cfg: cfg.clone(),
            state: Mutex::new(State {
                next_id: 0,
                end_counter: 0,
                sessions: BTreeMap::new(),
                ready: BTreeSet::new(),
                queued: VecDeque::new(),
                live: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                shutdown: false,
                telemetry: Telemetry::default(),
            }),
            work: Condvar::new(),
            client: Condvar::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a driver as a new session. Returns a handle immediately, or
    /// rejects explicitly when both the live slots and the wait queue are
    /// full — admission never blocks the caller. Sessions submitted this
    /// way carry no origin request and are not recoverable across a
    /// restart; the wire front-end uses [`Server::submit_with_origin`].
    pub fn submit(
        &self,
        driver: IolapDriver,
        spec: SessionSpec,
    ) -> Result<SessionHandle, AdmitError> {
        self.submit_with_origin(driver, spec, None)
    }

    /// [`Server::submit`] with the verbatim submit request recorded in the
    /// durable manifest (`'S'` record), making the session recoverable: a
    /// restarted server re-derives the driver from the origin via its
    /// submit factory and replays the session's event log.
    pub fn submit_with_origin(
        &self,
        driver: IolapDriver,
        spec: SessionSpec,
        origin: Option<&str>,
    ) -> Result<SessionHandle, AdmitError> {
        let cfg = &self.shared.cfg;
        let mut st = lock(&self.shared);
        if st.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if st.live >= cfg.max_live && st.queued.len() >= cfg.max_queued {
            st.rejected += 1;
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.reject",
                st.next_id,
                "live slots and wait queue full",
            );
            return Err(AdmitError::QueueFull {
                live: st.live,
                queued: st.queued.len(),
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.admitted += 1;
        let seed = driver.config().seed;
        let total_batches = driver.num_batches();
        let stream_table = driver.stream_table().to_string();
        trace_mark(
            self.shared.tracer.as_deref(),
            "sess.submit",
            id,
            &format!("label={}", spec.label),
        );
        st.telemetry
            .observe_submit(id, &spec.label, total_batches, &spec.policy);
        let mut slot = Slot {
            spec,
            seed,
            total_batches,
            state: SessionState::Queued,
            end: None,
            end_seq: None,
            driver: Some(driver),
            batches_run: 0,
            reports: VecDeque::new(),
            cancel: false,
            waiting_buffer: false,
            holds_slot: false,
            mem_bytes: 0,
            submit_span: Span::start(),
            first_step: None,
            finish_elapsed: None,
            stream_table,
            pending_appends: VecDeque::new(),
            restored: false,
        };
        // Record the admission durably before the session can be stepped
        // (state lock held, so no worker can spill — let alone finish —
        // the session ahead of its 'S' record).
        if let Some(durable) = &self.shared.durable {
            if let Some(origin) = origin {
                match durable.log_submit(id, origin) {
                    Ok(()) => st.telemetry.observe_durable(1, 0),
                    Err(_) => st.telemetry.observe_durable(0, 1),
                }
            }
        }
        if st.live < cfg.max_live {
            st.live += 1;
            slot.holds_slot = true;
            trace_mark(self.shared.tracer.as_deref(), "sess.admit", id, "direct");
            let key = slot.ready_key(id);
            st.sessions.insert(id, slot);
            st.ready.insert(key);
        } else {
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.queued",
                id,
                "waiting for a slot",
            );
            st.sessions.insert(id, slot);
            st.queued.push_back(id);
        }
        shed_over_ceiling(&self.shared, &mut st);
        drop(st);
        self.shared.work.notify_one();
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            id,
        })
    }

    /// Queue streaming rows (`rows_json`: the canonical `[[...], ...]`
    /// wire form) onto every non-finished session streaming `table`.
    /// Returns how many sessions the append reached — `0` means no live
    /// session streams that table (the wire layer reports
    /// `unknown_table`; the server cannot distinguish a table that does
    /// not exist from one nobody is querying right now).
    ///
    /// Rows are validated against each session's stream schema at apply
    /// time (the next worker pick), not here: a type error surfaces as an
    /// `appends_rejected` telemetry count, never a failed session.
    pub fn append_rows(&self, table: &str, rows_json: &str) -> usize {
        let mut st = lock(&self.shared);
        let mut reached = 0usize;
        let ids: Vec<u64> = st.sessions.keys().copied().collect();
        for id in ids {
            let Some(slot) = st.sessions.get_mut(&id) else {
                continue;
            };
            if slot.end.is_some() || slot.cancel {
                continue;
            }
            if !slot.stream_table.eq_ignore_ascii_case(table) {
                continue;
            }
            slot.pending_appends.push_back(rows_json.to_string());
            reached += 1;
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.append",
                id,
                &format!("table={table}"),
            );
        }
        drop(st);
        if reached > 0 {
            self.shared.work.notify_all();
            self.shared.client.notify_all();
        }
        reached
    }

    /// Rebuild every live session recorded in the durable manifest: the
    /// origin request is fed back through `factory` (exactly as the wire
    /// `submit` path builds drivers), the session's event log is replayed
    /// through [`IolapDriver::resume_replay`] — re-running each logged
    /// batch and re-applying each logged append at its original position,
    /// verifying checkpoint digests on the way — and the session resumes
    /// from the replayed frontier with its regenerated reports buffered
    /// for `{"op":"resume"}` clients.
    ///
    /// Unreadable or infeasible sessions are skipped (listed in the
    /// returned report), never fatal: recovery restores what the log
    /// supports and leaves the rest to the operator.
    pub fn recover(&self, factory: &crate::tcp::SubmitFactory) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Some(durable) = self.shared.durable.clone() else {
            return report;
        };
        let entries = match crate::durable::read_manifest(durable.dir()) {
            Ok(entries) => entries,
            Err(e) => {
                report
                    .skipped
                    .push((u64::MAX, format!("manifest unreadable: {e}")));
                return report;
            }
        };
        for entry in entries {
            {
                // Ids of recovered (and finished) sessions stay reserved so
                // new submissions never collide with on-disk logs.
                let mut st = lock(&self.shared);
                st.next_id = st.next_id.max(entry.id + 1);
            }
            if entry.end.is_some() {
                continue;
            }
            let id = entry.id;
            let skip = |why: String, report: &mut RecoveryReport| {
                report.skipped.push((id, why));
            };
            let req = match crate::wire::parse(&entry.origin) {
                Ok(req) => req,
                Err(e) => {
                    skip(format!("origin unparsable: {e}"), &mut report);
                    continue;
                }
            };
            let (mut driver, spec) = match factory(&req) {
                Ok(built) => built,
                Err(e) => {
                    skip(format!("factory rejected origin: {e}"), &mut report);
                    continue;
                }
            };
            let shard_workers = self.shared.cfg.shard_workers;
            if shard_workers > 0 {
                driver.set_shard_exec(Arc::new(crate::shard::ThreadShardPool::new(shard_workers)));
            }
            let records = match crate::durable::read_session_log(durable.dir(), id) {
                Ok(records) => records,
                Err(e) => {
                    skip(format!("session log unreadable: {e}"), &mut report);
                    continue;
                }
            };
            let mut events = Vec::with_capacity(records.len());
            let mut next_batch = 0usize;
            for record in &records {
                match record {
                    crate::durable::LogRecord::Report(_) => {
                        events.push(iolap_core::ReplayEvent::Batch(next_batch));
                        next_batch += 1;
                    }
                    crate::durable::LogRecord::Checkpoint { batch, digest, .. } => {
                        events.push(iolap_core::ReplayEvent::Checkpoint {
                            batch: *batch,
                            digest: *digest,
                        });
                    }
                    crate::durable::LogRecord::Append(rows_json) => {
                        let rel = crate::wire::parse(rows_json)
                            .map_err(|e| e.to_string())
                            .and_then(|rows| {
                                crate::durable::rows_to_relation(&rows, driver.stream_schema())
                            });
                        match rel {
                            Ok(rel) => events.push(iolap_core::ReplayEvent::Append(rel)),
                            Err(e) => {
                                // An append that replayed fine when first
                                // applied should replay fine now; a decode
                                // failure means a damaged record survived
                                // CRC (or a schema change) — skip the whole
                                // session rather than resume divergent.
                                skip(format!("append record undecodable: {e}"), &mut report);
                                events.clear();
                                break;
                            }
                        }
                    }
                }
            }
            if events.is_empty() && !records.is_empty() {
                continue;
            }
            let outcome = match driver.resume_replay(&events) {
                Ok(outcome) => outcome,
                Err(e) => {
                    skip(format!("replay failed: {e}"), &mut report);
                    continue;
                }
            };
            report.replayed_batches += outcome.replayed_batches;
            report.reapplied_appends += outcome.reapplied_appends;
            report.stale_digests += outcome.stale_digests;

            let cfg = &self.shared.cfg;
            let mut st = lock(&self.shared);
            if st.shutdown {
                skip("server shutting down".to_string(), &mut report);
                continue;
            }
            st.admitted += 1;
            st.telemetry
                .observe_submit(id, &spec.label, driver.num_batches(), &spec.policy);
            st.telemetry.observe_resume(
                outcome.replayed_batches as u64,
                outcome.reapplied_appends as u64,
                outcome.stale_digests as u64,
            );
            trace_mark(
                self.shared.tracer.as_deref(),
                "sess.resume",
                id,
                &format!(
                    "replayed={} appends={} stale_digests={}",
                    outcome.replayed_batches, outcome.reapplied_appends, outcome.stale_digests
                ),
            );
            let batches_run = outcome.replayed_batches;
            let done_all = driver.batches_done() >= driver.num_batches();
            let seed = driver.config().seed;
            let stream_table = driver.stream_table().to_string();
            let mut slot = Slot {
                spec,
                seed,
                total_batches: driver.num_batches(),
                state: if batches_run > 0 {
                    SessionState::Running
                } else {
                    SessionState::Queued
                },
                end: None,
                end_seq: None,
                driver: Some(driver),
                batches_run,
                reports: outcome.reports.into(),
                cancel: false,
                waiting_buffer: false,
                holds_slot: false,
                mem_bytes: 0,
                submit_span: Span::start(),
                first_step: if batches_run > 0 {
                    Some(Span::start())
                } else {
                    None
                },
                finish_elapsed: None,
                stream_table,
                pending_appends: VecDeque::new(),
                restored: true,
            };
            let met = slot
                .reports
                .back()
                .map(|r| policy_met(&slot.spec.policy, r, &slot))
                .unwrap_or(false);
            if done_all || met {
                // The crash fell after the session's last step but before
                // its 'D' record: finish it now (writing the 'D'), leaving
                // the regenerated reports drainable.
                let end = if done_all {
                    SessionEnd::Completed
                } else {
                    SessionEnd::TargetMet {
                        batches: batches_run,
                    }
                };
                st.sessions.insert(id, slot);
                finish(&self.shared, &mut st, id, end);
            } else if st.live < cfg.max_live {
                st.live += 1;
                slot.holds_slot = true;
                if slot.reports.len() >= cfg.report_buffer {
                    // The regenerated backlog already fills the report
                    // buffer: park exactly as the uninterrupted run would
                    // have, resuming compute as the client drains.
                    slot.waiting_buffer = true;
                    trace_mark(
                        self.shared.tracer.as_deref(),
                        "sess.park",
                        id,
                        "restored with a full report buffer",
                    );
                    st.sessions.insert(id, slot);
                } else {
                    trace_mark(self.shared.tracer.as_deref(), "sess.admit", id, "restored");
                    let key = slot.ready_key(id);
                    st.sessions.insert(id, slot);
                    st.ready.insert(key);
                }
            } else {
                trace_mark(
                    self.shared.tracer.as_deref(),
                    "sess.queued",
                    id,
                    "restored, waiting for a slot",
                );
                st.sessions.insert(id, slot);
                st.queued.push_back(id);
            }
            drop(st);
            report.resumed.push(id);
        }
        self.shared.work.notify_all();
        self.shared.client.notify_all();
        report
    }

    /// Attach to a session restored by [`Server::recover`]. Distinguishes
    /// a restorable session from one the durable manifest already saw
    /// finish (its `'D'` record exists — there is nothing to resume) and
    /// from an id the manifest never admitted.
    pub fn resume_session(&self, id: u64) -> ResumeStatus {
        {
            let st = lock(&self.shared);
            if let Some(slot) = st.sessions.get(&id) {
                if slot.restored {
                    return ResumeStatus::Attached(SessionHandle {
                        shared: Arc::clone(&self.shared),
                        id,
                    });
                }
                return ResumeStatus::Unknown;
            }
        }
        if let Some(durable) = &self.shared.durable {
            if let Ok(entries) = crate::durable::read_manifest(durable.dir()) {
                if let Some(entry) = entries.iter().rev().find(|e| e.id == id) {
                    if let Some(end) = &entry.end {
                        return ResumeStatus::Finished(end.clone());
                    }
                }
            }
        }
        ResumeStatus::Unknown
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let st = lock(&self.shared);
        ServerStats {
            live: st.live,
            queued: st.queued.len(),
            admitted: st.admitted,
            rejected: st.rejected,
            shed: st.shed,
            mem_bytes: live_mem(&st),
        }
    }

    /// The server's sizing config.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.cfg
    }

    /// Snapshot of the scheduler trace journal, in sequence order (empty
    /// when tracing is off). Pass through
    /// [`crate::telemetry::canonical_trace`] before byte comparison.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared
            .tracer
            .as_ref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Clone of the fleet telemetry rollups (sessions, tenants, shards,
    /// SLO burn counters), taken under the scheduler lock.
    pub fn telemetry(&self) -> Telemetry {
        lock(&self.shared).telemetry.clone()
    }

    /// Prometheus-style text exposition of the fleet state, rendered from
    /// one consistent snapshot (telemetry and admission counters read
    /// under a single lock acquisition). `canonical` excludes wall-clock
    /// and shard-topology families for byte-deterministic comparison.
    pub fn exposition(&self, canonical: bool) -> String {
        let st = lock(&self.shared);
        let stats = ServerStats {
            live: st.live,
            queued: st.queued.len(),
            admitted: st.admitted,
            rejected: st.rejected,
            shed: st.shed,
            mem_bytes: live_mem(&st),
        };
        crate::telemetry::render_exposition(&st.telemetry, &stats, canonical)
    }

    /// Stop the workers after their in-flight steps and join them.
    /// Unfinished sessions stay in whatever state they reached; buffered
    /// reports remain drainable.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.client.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Server")
            .field("workers", &self.shared.cfg.workers)
            .field("stats", &stats)
            .finish()
    }
}
