//! The TPC-H query subset used in the paper's evaluation (§8), adapted to
//! the denormalized `lineorder` schema and to positive relational algebra.
//!
//! The paper uses "all the queries with nested subqueries structures (Q11,
//! Q17, Q18, Q20, Q22), and a representative subset of the rest which are
//! all simple SPJA queries" (Q1, Q3, Q5, Q6, Q7). Adaptations:
//!
//! * `lineitem ⋈ orders` columns are read from `lineorder` (the paper's own
//!   denormalization).
//! * Q22's `NOT EXISTS (SELECT … FROM orders …)` anti-join is dropped: set
//!   difference is outside the positive algebra the paper supports (§3.3);
//!   the remaining above-average-balance + country-prefix structure keeps
//!   the query's nested-aggregate character.
//! * Q7/Q5 group on nation keys/names without the `YEAR()` extraction
//!   (dates are `yyyymmdd` integers, so year windows become range
//!   predicates).

/// One benchmark query.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Identifier, e.g. `"Q17"`.
    pub id: &'static str,
    /// Short description.
    pub name: &'static str,
    /// SQL text.
    pub sql: &'static str,
    /// The relation streamed in mini-batches.
    pub stream_table: &'static str,
    /// Whether the query contains nested aggregate subqueries.
    pub nested: bool,
}

/// The ten TPC-H-lite queries.
pub fn tpch_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Q1",
            name: "pricing summary report",
            sql: "SELECT lo_returnflag, lo_linestatus, SUM(lo_quantity), \
                  SUM(lo_extendedprice), SUM(lo_extendedprice * (1 - lo_discount)), \
                  AVG(lo_quantity), AVG(lo_extendedprice), AVG(lo_discount), COUNT(*) \
                  FROM lineorder WHERE lo_shipdate <= 19980902 \
                  GROUP BY lo_returnflag, lo_linestatus",
            stream_table: "lineorder",
            nested: false,
        },
        QuerySpec {
            id: "Q3",
            name: "shipping priority",
            sql: "SELECT lo_orderkey, SUM(lo_extendedprice * (1 - lo_discount)) AS revenue, \
                  lo_orderdate \
                  FROM customer, lineorder \
                  WHERE c_mktsegment = 'BUILDING' AND c_custkey = lo_custkey \
                  AND lo_orderdate < 19950315 AND lo_shipdate > 19950315 \
                  GROUP BY lo_orderkey, lo_orderdate \
                  ORDER BY revenue DESC LIMIT 10",
            stream_table: "lineorder",
            nested: false,
        },
        QuerySpec {
            id: "Q5",
            name: "local supplier volume",
            sql: "SELECT n_name, SUM(lo_extendedprice * (1 - lo_discount)) AS revenue \
                  FROM customer, lineorder, supplier, nation, region \
                  WHERE c_custkey = lo_custkey AND lo_suppkey = s_suppkey \
                  AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey \
                  AND n_regionkey = r_regionkey AND r_name = 'ASIA' \
                  AND lo_orderdate >= 19940101 AND lo_orderdate < 19950101 \
                  GROUP BY n_name ORDER BY revenue DESC",
            stream_table: "lineorder",
            nested: false,
        },
        QuerySpec {
            id: "Q6",
            name: "forecasting revenue change",
            sql: "SELECT SUM(lo_extendedprice * lo_discount) AS revenue \
                  FROM lineorder \
                  WHERE lo_orderdate >= 19940101 AND lo_orderdate < 19950101 \
                  AND lo_discount BETWEEN 0.05 AND 0.07 AND lo_quantity < 24",
            stream_table: "lineorder",
            nested: false,
        },
        QuerySpec {
            id: "Q7",
            name: "volume shipping",
            sql: "SELECT s.s_nationkey AS supp_nation, c.c_nationkey AS cust_nation, \
                  SUM(lo_extendedprice * (1 - lo_discount)) AS revenue \
                  FROM supplier s, lineorder, customer c \
                  WHERE s.s_suppkey = lo_suppkey AND c.c_custkey = lo_custkey \
                  AND lo_shipdate >= 19950101 AND lo_shipdate <= 19961231 \
                  AND (s.s_nationkey = 6 AND c.c_nationkey = 15 \
                       OR s.s_nationkey = 15 AND c.c_nationkey = 6) \
                  GROUP BY s.s_nationkey, c.c_nationkey",
            stream_table: "lineorder",
            nested: false,
        },
        QuerySpec {
            id: "Q11",
            name: "important stock identification",
            sql: "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS total \
                  FROM partsupp, supplier \
                  WHERE ps_suppkey = s_suppkey AND s_nationkey = 16 \
                  GROUP BY ps_partkey \
                  HAVING SUM(ps_supplycost * ps_availqty) > \
                    (SELECT SUM(ps_supplycost * ps_availqty) * 0.02 \
                     FROM partsupp, supplier \
                     WHERE ps_suppkey = s_suppkey AND s_nationkey = 16) \
                  ORDER BY total DESC",
            stream_table: "partsupp",
            nested: true,
        },
        QuerySpec {
            id: "Q17",
            name: "small-quantity-order revenue",
            sql: "SELECT SUM(l.lo_extendedprice) / 7.0 AS avg_yearly \
                  FROM lineorder l, part \
                  WHERE p_partkey = l.lo_partkey AND p_brand = 'Brand#23' \
                  AND p_container = 'MED BOX' \
                  AND l.lo_quantity < (SELECT 0.2 * AVG(i.lo_quantity) \
                                       FROM lineorder i \
                                       WHERE i.lo_partkey = l.lo_partkey)",
            stream_table: "lineorder",
            nested: true,
        },
        QuerySpec {
            id: "Q18",
            name: "large volume customer",
            sql: "SELECT lo_custkey, lo_orderkey, SUM(lo_quantity) AS total_qty \
                  FROM lineorder \
                  WHERE lo_orderkey IN (SELECT lo_orderkey FROM lineorder \
                                        GROUP BY lo_orderkey \
                                        HAVING SUM(lo_quantity) > 300) \
                  GROUP BY lo_custkey, lo_orderkey \
                  ORDER BY total_qty DESC LIMIT 100",
            stream_table: "lineorder",
            nested: true,
        },
        QuerySpec {
            id: "Q20",
            name: "potential part promotion",
            sql: "SELECT s_name, s_nationkey FROM supplier \
                  WHERE s_suppkey IN \
                    (SELECT ps_suppkey FROM partsupp \
                     WHERE ps_availqty > (SELECT 0.5 * SUM(l.lo_quantity) \
                                          FROM lineorder l \
                                          WHERE l.lo_partkey = ps_partkey)) \
                  ORDER BY s_name",
            stream_table: "partsupp",
            nested: true,
        },
        QuerySpec {
            id: "Q22",
            name: "global sales opportunity (positive-algebra form)",
            sql: "SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, COUNT(*) AS numcust, \
                  SUM(c_acctbal) AS totacctbal \
                  FROM customer \
                  WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer \
                                     WHERE c_acctbal > 0.0) \
                  AND SUBSTR(c_phone, 1, 2) IN ('13', '31', '23', '29', '30') \
                  GROUP BY SUBSTR(c_phone, 1, 2) \
                  ORDER BY cntrycode",
            stream_table: "customer",
            nested: true,
        },
    ]
}

/// Look up a query by id (`"Q17"`).
pub fn tpch_query(id: &str) -> Option<QuerySpec> {
    tpch_queries().into_iter().find(|q| q.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::tpch_catalog;
    use iolap_engine::{execute, plan_sql, FunctionRegistry};

    #[test]
    fn all_queries_plan_and_execute() {
        let cat = tpch_catalog(0.02, 42);
        let reg = FunctionRegistry::with_builtins();
        for q in tpch_queries() {
            let pq = plan_sql(q.sql, &cat, &reg)
                .unwrap_or_else(|e| panic!("{} failed to plan: {e}", q.id));
            execute(&pq.plan, &cat).unwrap_or_else(|e| panic!("{} failed to run: {e}", q.id));
        }
    }

    #[test]
    fn nested_flags_match_structure() {
        let nested: Vec<&str> = tpch_queries()
            .iter()
            .filter(|q| q.nested)
            .map(|q| q.id)
            .collect();
        assert_eq!(nested, vec!["Q11", "Q17", "Q18", "Q20", "Q22"]);
    }

    #[test]
    fn q1_produces_flag_groups() {
        let cat = tpch_catalog(0.02, 42);
        let reg = FunctionRegistry::with_builtins();
        let q = tpch_query("Q1").unwrap();
        let pq = plan_sql(q.sql, &cat, &reg).unwrap();
        let out = execute(&pq.plan, &cat).unwrap();
        // Domains R/A (before cutoff) and N (after) with statuses F/O.
        assert!(out.len() >= 2 && out.len() <= 4, "groups: {}", out.len());
    }

    #[test]
    fn q6_selective_filter() {
        let cat = tpch_catalog(0.05, 42);
        let reg = FunctionRegistry::with_builtins();
        let q = tpch_query("Q6").unwrap();
        let pq = plan_sql(q.sql, &cat, &reg).unwrap();
        let out = execute(&pq.plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows()[0].values[0].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn q18_semijoin_filters() {
        let cat = tpch_catalog(0.05, 42);
        let reg = FunctionRegistry::with_builtins();
        let q = tpch_query("Q18").unwrap();
        let pq = plan_sql(q.sql, &cat, &reg).unwrap();
        let out = execute(&pq.plan, &cat).unwrap();
        // All reported orders exceed the quantity threshold.
        for row in out.rows() {
            assert!(row.values[2].as_f64().unwrap() > 300.0);
        }
    }
}
