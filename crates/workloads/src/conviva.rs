//! Synthetic video-QoE sessions workload (the paper's Conviva substitute).
//!
//! The paper's second workload is a 2 TB anonymized video content
//! distribution log: a denormalized fact table of viewer sessions. That
//! trace is proprietary, so we synthesize a sessions table with the QoE
//! columns the paper's example queries reference (`buffer_time`,
//! `play_time`, …) plus the dimensions its cited analyses group by (CDN,
//! city, ISP, content type). Distributions are heavy-tailed where real QoE
//! metrics are (session duration, join time), which is what makes the
//! bootstrap ranges and the non-deterministic sets behave realistically.

use iolap_relation::{Catalog, DataType, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CDN labels.
pub const CDNS: [&str; 3] = ["cdn_alpha", "cdn_beta", "cdn_gamma"];

/// Cities.
pub const CITIES: [&str; 8] = [
    "San Francisco",
    "Los Angeles",
    "New York",
    "Seattle",
    "Chicago",
    "Austin",
    "Boston",
    "Denver",
];

/// ISPs.
pub const ISPS: [&str; 5] = ["comnet", "fibertel", "skywave", "metrolink", "coastal"];

/// Content types.
pub const CONTENT_TYPES: [&str; 4] = ["live", "vod", "clip", "linear"];

/// Countries (US-heavy, as video traffic is).
pub const COUNTRIES: [&str; 3] = ["US", "CA", "MX"];

/// The sessions schema.
pub fn sessions_schema() -> Schema {
    Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("client_id", DataType::Int),
        ("cdn", DataType::Str),
        ("city", DataType::Str),
        ("country", DataType::Str),
        ("isp", DataType::Str),
        ("content_type", DataType::Str),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
        ("join_time", DataType::Float),
        ("bitrate", DataType::Float),
        ("failed", DataType::Int),
    ])
}

/// Standard normal via Box–Muller (no extra dependency).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal draw.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Generate `n` sessions, deterministically seeded.
pub fn conviva_sessions(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let cdn_idx = rng.gen_range(0..CDNS.len());
        // Per-CDN quality offsets: one CDN buffers noticeably more — the
        // kind of contrast the SBI-style analyses look for.
        let cdn_buffer_mu: f64 = [2.6, 3.1, 2.9][cdn_idx];
        let buffer_time = lognormal(&mut rng, cdn_buffer_mu, 0.8).min(600.0);
        // Longer buffering shortens sessions (the SBI effect).
        let play_time = (lognormal(&mut rng, 5.4, 1.0) / (1.0 + buffer_time / 120.0)).min(14_400.0);
        let join_time = lognormal(&mut rng, 0.9, 0.7).min(120.0);
        let bitrate = 400.0 + rng.gen::<f64>() * 4600.0;
        let failed = i64::from(rng.gen::<f64>() < 0.03);
        rows.push(Row::new(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..(n / 4).max(1)) as i64),
            Value::str(CDNS[cdn_idx]),
            Value::str(CITIES[rng.gen_range(0..CITIES.len())]),
            Value::str(
                COUNTRIES[if rng.gen::<f64>() < 0.8 {
                    0
                } else {
                    rng.gen_range(1..COUNTRIES.len())
                }],
            ),
            Value::str(ISPS[rng.gen_range(0..ISPS.len())]),
            Value::str(CONTENT_TYPES[rng.gen_range(0..CONTENT_TYPES.len())]),
            Value::Float((buffer_time * 10.0).round() / 10.0),
            Value::Float((play_time * 10.0).round() / 10.0),
            Value::Float((join_time * 100.0).round() / 100.0),
            Value::Float(bitrate.round()),
            Value::Int(failed),
        ]));
    }
    Relation::new(sessions_schema(), rows)
}

/// Catalog with a `sessions` table of `n` rows.
pub fn conviva_catalog(n: usize, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.register("sessions", conviva_sessions(n, seed));
    c
}

/// The paper's Figure 2(b) example table — the six SBI rows — for
/// documentation, examples, and worked tests.
pub fn figure2_sessions() -> Relation {
    Relation::from_values(
        Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
        ]),
        vec![
            vec![Value::Int(1), Value::Float(36.0), Value::Float(238.0)],
            vec![Value::Int(2), Value::Float(58.0), Value::Float(135.0)],
            vec![Value::Int(3), Value::Float(17.0), Value::Float(617.0)],
            vec![Value::Int(4), Value::Float(56.0), Value::Float(194.0)],
            vec![Value::Int(5), Value::Float(19.0), Value::Float(308.0)],
            vec![Value::Int(6), Value::Float(26.0), Value::Float(319.0)],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_deterministic() {
        let a = conviva_sessions(500, 3);
        let b = conviva_sessions(500, 3);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn heavy_tail_in_play_time() {
        let rel = conviva_sessions(5000, 1);
        let mut v: Vec<f64> = rel
            .rows()
            .iter()
            .map(|r| r.values[8].as_f64().unwrap())
            .collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean > 1.3 * median, "mean {mean} median {median}");
    }

    #[test]
    fn buffering_reduces_play_time() {
        // Correlation used by SBI must be present: high-buffer sessions
        // play less on average.
        let rel = conviva_sessions(8000, 2);
        let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0, 0.0, 0.0, 0.0);
        for r in rel.rows() {
            let b = r.values[7].as_f64().unwrap();
            let p = r.values[8].as_f64().unwrap();
            if b > 40.0 {
                hi_sum += p;
                hi_n += 1.0;
            } else if b < 10.0 {
                lo_sum += p;
                lo_n += 1.0;
            }
        }
        assert!(hi_n > 10.0 && lo_n > 10.0);
        assert!(hi_sum / hi_n < lo_sum / lo_n);
    }

    #[test]
    fn figure2_matches_paper() {
        let rel = figure2_sessions();
        assert_eq!(rel.len(), 6);
        // t2's buffer_time is 58, t3's is 17 (Example 2's prune targets).
        assert_eq!(rel.rows()[1].values[1], Value::Float(58.0));
        assert_eq!(rel.rows()[2].values[1], Value::Float(17.0));
    }

    #[test]
    fn failure_rate_low() {
        let rel = conviva_sessions(5000, 4);
        let failures: i64 = rel
            .rows()
            .iter()
            .map(|r| r.values[11].as_i64().unwrap())
            .sum();
        let rate = failures as f64 / 5000.0;
        assert!(rate > 0.005 && rate < 0.08, "rate {rate}");
    }
}
