//! TPC-H-lite: a laptop-scale synthetic dbgen.
//!
//! The paper evaluates on a 1 TB TPC-H dataset projected onto an SSB-like
//! schema: `lineitem ⋈ orders` are denormalized into a single `lineorder`
//! fact table, other relations unchanged (§8). This module generates the
//! same schema at a configurable scale factor with the TPC-H spec's value
//! shapes (uniform keys, date ranges, discrete flag domains), which is what
//! drives selectivities and group cardinalities — the quantities the delta
//! algorithm's behaviour depends on.
//!
//! Dates are encoded as `yyyymmdd` integers.

use iolap_relation::{Catalog, DataType, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Region names (TPC-H spec).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Nation names (subset; 25 nations, 5 per region).
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ETHIOPIA",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE", // AFRICA
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "PERU",
    "UNITED STATES", // AMERICA
    "CHINA",
    "INDIA",
    "INDONESIA",
    "JAPAN",
    "VIETNAM", // ASIA
    "FRANCE",
    "GERMANY",
    "ROMANIA",
    "RUSSIA",
    "UNITED KINGDOM", // EUROPE
    "EGYPT",
    "IRAN",
    "IRAQ",
    "JORDAN",
    "SAUDI ARABIA", // MIDDLE EAST
];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Part brands.
pub const BRANDS: [&str; 5] = ["Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#51"];

/// Part containers.
pub const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG"];

/// Ship modes.
pub const SHIPMODES: [&str; 5] = ["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"];

/// Row counts per unit scale factor (spec ratios, shrunk 1000×).
#[derive(Clone, Copy, Debug)]
pub struct TpchSizes {
    /// `lineorder` rows.
    pub lineorder: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `supplier` rows.
    pub supplier: usize,
    /// `part` rows.
    pub part: usize,
    /// `partsupp` rows.
    pub partsupp: usize,
}

impl TpchSizes {
    /// Spec-ratio sizes at scale factor `sf` (SF 1.0 ≈ 6000 lineorder rows
    /// here; the paper's 1 TB is SF ≈ 1000 of the real benchmark).
    pub fn at(sf: f64) -> TpchSizes {
        let s = |base: usize| ((base as f64 * sf).round() as usize).max(1);
        TpchSizes {
            lineorder: s(6000),
            customer: s(150),
            supplier: s(10),
            part: s(200),
            partsupp: s(800),
        }
    }
}

/// Generate the TPC-H-lite catalog at scale factor `sf`, deterministically
/// seeded.
pub fn tpch_catalog(sf: f64, seed: u64) -> Catalog {
    let sizes = TpchSizes::at(sf);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    // region
    let region = Relation::from_values(
        Schema::from_pairs(&[("r_regionkey", DataType::Int), ("r_name", DataType::Str)]),
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n)])
            .collect(),
    );
    catalog.register("region", region);

    // nation: 5 per region
    let nation = Relation::from_values(
        Schema::from_pairs(&[
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Str),
            ("n_regionkey", DataType::Int),
        ]),
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, n)| {
                vec![
                    Value::Int(i as i64),
                    Value::str(*n),
                    Value::Int((i / 5) as i64),
                ]
            })
            .collect(),
    );
    catalog.register("nation", nation);

    // supplier
    let supplier = Relation::from_values(
        Schema::from_pairs(&[
            ("s_suppkey", DataType::Int),
            ("s_name", DataType::Str),
            ("s_nationkey", DataType::Int),
            ("s_acctbal", DataType::Float),
        ]),
        (0..sizes.supplier)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:06}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float((rng.gen::<f64>() * 10999.0 - 999.0).round() / 1.0),
                ]
            })
            .collect(),
    );
    catalog.register("supplier", supplier);

    // customer
    let customer = Relation::from_values(
        Schema::from_pairs(&[
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Str),
            ("c_nationkey", DataType::Int),
            ("c_mktsegment", DataType::Str),
            ("c_acctbal", DataType::Float),
            ("c_phone", DataType::Str),
        ]),
        (0..sizes.customer)
            .map(|i| {
                let nation = rng.gen_range(0..25i64);
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Customer#{i:06}")),
                    Value::Int(nation),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    Value::Float((rng.gen::<f64>() * 10999.0 - 999.0).round()),
                    Value::str(format!(
                        "{:02}-{:03}-{:03}",
                        nation + 10,
                        i % 999,
                        (i * 7) % 999
                    )),
                ]
            })
            .collect(),
    );
    catalog.register("customer", customer);

    // part
    let part = Relation::from_values(
        Schema::from_pairs(&[
            ("p_partkey", DataType::Int),
            ("p_name", DataType::Str),
            ("p_brand", DataType::Str),
            ("p_type", DataType::Str),
            ("p_size", DataType::Int),
            ("p_container", DataType::Str),
            ("p_retailprice", DataType::Float),
        ]),
        (0..sizes.part)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("part {i}")),
                    Value::str(BRANDS[rng.gen_range(0..BRANDS.len())]),
                    Value::str(
                        ["PROMO BURNISHED", "STANDARD PLATED", "ECONOMY ANODIZED"]
                            [rng.gen_range(0..3)],
                    ),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
                    Value::Float((900.0 + (i % 1000) as f64 / 10.0).round()),
                ]
            })
            .collect(),
    );
    catalog.register("part", part);

    // partsupp: ~4 suppliers per part
    let partsupp = Relation::from_values(
        Schema::from_pairs(&[
            ("ps_partkey", DataType::Int),
            ("ps_suppkey", DataType::Int),
            ("ps_availqty", DataType::Int),
            ("ps_supplycost", DataType::Float),
        ]),
        (0..sizes.partsupp)
            .map(|i| {
                vec![
                    Value::Int((i % sizes.part) as i64),
                    Value::Int(rng.gen_range(0..sizes.supplier) as i64),
                    Value::Int(rng.gen_range(1..=9999)),
                    Value::Float((rng.gen::<f64>() * 999.0 + 1.0).round()),
                ]
            })
            .collect(),
    );
    catalog.register("partsupp", partsupp);

    // lineorder: denormalized lineitem ⋈ orders
    let lineorder_schema = Schema::from_pairs(&[
        ("lo_orderkey", DataType::Int),
        ("lo_linenumber", DataType::Int),
        ("lo_custkey", DataType::Int),
        ("lo_partkey", DataType::Int),
        ("lo_suppkey", DataType::Int),
        ("lo_orderdate", DataType::Int),
        ("lo_shippriority", DataType::Int),
        ("lo_quantity", DataType::Float),
        ("lo_extendedprice", DataType::Float),
        ("lo_discount", DataType::Float),
        ("lo_tax", DataType::Float),
        ("lo_returnflag", DataType::Str),
        ("lo_linestatus", DataType::Str),
        ("lo_shipdate", DataType::Int),
        ("lo_shipmode", DataType::Str),
    ]);
    let mut rows = Vec::with_capacity(sizes.lineorder);
    let mut orderkey = 0i64;
    let mut line_in_order = 0i64;
    let mut order_custkey = 0i64;
    let mut order_date = 0i64;
    let mut lines_left = 0i64;
    for _ in 0..sizes.lineorder {
        if lines_left == 0 {
            orderkey += 1;
            line_in_order = 0;
            lines_left = rng.gen_range(1..=7);
            order_custkey = rng.gen_range(0..sizes.customer) as i64;
            order_date = random_date(&mut rng, 1992, 1998);
        }
        line_in_order += 1;
        lines_left -= 1;
        let quantity = rng.gen_range(1..=50) as f64;
        let price_per_unit = 900.0 + rng.gen_range(0..10000) as f64 / 10.0;
        let shipdate = order_date + rng.gen_range(1..=121);
        let returnflag = if shipdate <= 19950617 {
            ["R", "A"][rng.gen_range(0..2)]
        } else {
            "N"
        };
        let linestatus = if shipdate > 19950617 { "O" } else { "F" };
        rows.push(Row::new(vec![
            Value::Int(orderkey),
            Value::Int(line_in_order),
            Value::Int(order_custkey),
            Value::Int(rng.gen_range(0..sizes.part) as i64),
            Value::Int(rng.gen_range(0..sizes.supplier) as i64),
            Value::Int(order_date),
            Value::Int(0),
            Value::Float(quantity),
            Value::Float((quantity * price_per_unit).round()),
            Value::Float(rng.gen_range(0..=10) as f64 / 100.0),
            Value::Float(rng.gen_range(0..=8) as f64 / 100.0),
            Value::str(returnflag),
            Value::str(linestatus),
            Value::Int(shipdate),
            Value::str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
        ]));
    }
    catalog.register("lineorder", Relation::new(lineorder_schema, rows));

    catalog
}

/// Random `yyyymmdd` between Jan 1 of `from_year` and Dec 28 of `to_year`.
fn random_date(rng: &mut StdRng, from_year: i64, to_year: i64) -> i64 {
    let y = rng.gen_range(from_year..=to_year);
    let m = rng.gen_range(1..=12i64);
    let d = rng.gen_range(1..=28i64);
    y * 10000 + m * 100 + d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_tables() {
        let c = tpch_catalog(0.01, 1);
        for t in [
            "region",
            "nation",
            "supplier",
            "customer",
            "part",
            "partsupp",
            "lineorder",
        ] {
            assert!(c.contains(t), "missing {t}");
        }
        assert_eq!(c.get("region").unwrap().len(), 5);
        assert_eq!(c.get("nation").unwrap().len(), 25);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = tpch_catalog(0.01, 7);
        let b = tpch_catalog(0.01, 7);
        assert!(a
            .get("lineorder")
            .unwrap()
            .approx_eq(&b.get("lineorder").unwrap(), 0.0));
        let c = tpch_catalog(0.01, 8);
        assert!(!a
            .get("lineorder")
            .unwrap()
            .approx_eq(&c.get("lineorder").unwrap(), 0.0));
    }

    #[test]
    fn sizes_scale() {
        let s1 = TpchSizes::at(1.0);
        let s2 = TpchSizes::at(2.0);
        assert_eq!(s2.lineorder, 2 * s1.lineorder);
    }

    #[test]
    fn lineorder_value_domains() {
        let c = tpch_catalog(0.02, 3);
        let lo = c.get("lineorder").unwrap();
        for row in lo.rows() {
            let q = row.values[7].as_f64().unwrap();
            assert!((1.0..=50.0).contains(&q));
            let disc = row.values[9].as_f64().unwrap();
            assert!((0.0..=0.10001).contains(&disc));
            let date = row.values[5].as_i64().unwrap();
            assert!((19920101..=19981231).contains(&date));
            let rf = row.values[11].as_str().unwrap();
            assert!(["R", "A", "N"].contains(&rf));
        }
    }

    #[test]
    fn partsupp_covers_every_part() {
        let c = tpch_catalog(0.05, 4);
        let parts = c.get("part").unwrap().len();
        let ps = c.get("partsupp").unwrap();
        let mut seen = vec![false; parts];
        for row in ps.rows() {
            seen[row.values[0].as_i64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
