//! The Conviva-style query workload C1–C12 (§8) plus the paper's SBI
//! example query.
//!
//! The paper composes its query workload from the video-QoE analyses of its
//! cited studies on the same dataset: "simple SPJA queries (C3, C5, C11,
//! C12), complex queries with nested subqueries and HAVING clauses (C1, C2,
//! C4, C6, C7, C8, C9, C10), UDF (C6, C7) and UDAF (C8, C9, C10)". We
//! reconstruct that mix over the synthetic sessions table:
//!
//! * UDFs: `REBUF_RATIO(buffer, play)` (rebuffering ratio) and
//!   `QOE_SCORE(join, buffer, bitrate)` (composite quality score).
//! * UDAFs (all smooth/Hadamard-differentiable, per §3.3): `HARMONIC_MEAN`,
//!   `GEO_MEAN`, and `RMS`.

use crate::tpch_queries::QuerySpec;
use iolap_engine::aggregate::{Accumulator, Udaf};
use iolap_engine::registry::FnUdf;
use iolap_engine::{EngineError, ExprError, FunctionRegistry};
use iolap_relation::{DataType, Value};
use std::sync::Arc;

/// The twelve Conviva-style queries plus `SBI` (Example 1).
pub fn conviva_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "SBI",
            name: "slow buffering impact (Example 1)",
            sql: "SELECT AVG(play_time) FROM sessions \
                  WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C1",
            name: "impact of above-average join time on engagement",
            sql: "SELECT AVG(play_time) FROM sessions \
                  WHERE join_time > (SELECT AVG(join_time) FROM sessions)",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C2",
            name: "per-CDN slow-buffering session counts",
            sql: "SELECT s.cdn, COUNT(*) AS slow_sessions FROM sessions s \
                  WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                         WHERE i.cdn = s.cdn) \
                  GROUP BY s.cdn ORDER BY s.cdn",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C3",
            name: "per-CDN engagement",
            sql: "SELECT cdn, AVG(play_time) AS avg_play, COUNT(*) AS sessions \
                  FROM sessions GROUP BY cdn ORDER BY cdn",
            stream_table: "sessions",
            nested: false,
        },
        QuerySpec {
            id: "C4",
            name: "cities with above-average bitrate (HAVING + subquery)",
            sql: "SELECT city, AVG(bitrate) AS avg_bitrate FROM sessions \
                  GROUP BY city \
                  HAVING AVG(bitrate) > (SELECT AVG(bitrate) FROM sessions) \
                  ORDER BY city",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C5",
            name: "US play time by content type",
            sql: "SELECT content_type, SUM(play_time) AS total_play FROM sessions \
                  WHERE country = 'US' GROUP BY content_type ORDER BY content_type",
            stream_table: "sessions",
            nested: false,
        },
        QuerySpec {
            id: "C6",
            name: "engagement under above-average rebuffering (UDF)",
            sql: "SELECT AVG(play_time) FROM sessions \
                  WHERE REBUF_RATIO(buffer_time, play_time) > \
                    (SELECT AVG(REBUF_RATIO(buffer_time, play_time)) FROM sessions)",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C7",
            name: "cities with many low-QoE sessions (UDF + nested)",
            sql: "SELECT city, COUNT(*) AS bad_sessions FROM sessions \
                  WHERE QOE_SCORE(join_time, buffer_time, bitrate) < \
                    (SELECT 0.8 * AVG(QOE_SCORE(join_time, buffer_time, bitrate)) \
                     FROM sessions) \
                  GROUP BY city ORDER BY city",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C8",
            name: "harmonic-mean bitrate of engaged sessions (UDAF)",
            sql: "SELECT HARMONIC_MEAN(bitrate) FROM sessions \
                  WHERE play_time > (SELECT AVG(play_time) FROM sessions)",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C9",
            name: "CDNs with above-average geometric-mean join time (UDAF)",
            sql: "SELECT cdn, GEO_MEAN(join_time) AS gm FROM sessions \
                  GROUP BY cdn \
                  HAVING GEO_MEAN(join_time) > (SELECT GEO_MEAN(join_time) FROM sessions) \
                  ORDER BY cdn",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C10",
            name: "RMS bitrate of slow-buffering sessions per ISP (UDAF)",
            sql: "SELECT isp, RMS(bitrate) AS rms_bitrate FROM sessions s \
                  WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                         WHERE i.isp = s.isp) \
                  GROUP BY isp ORDER BY isp",
            stream_table: "sessions",
            nested: true,
        },
        QuerySpec {
            id: "C11",
            name: "per-CDN join time",
            sql: "SELECT cdn, AVG(join_time) AS avg_join FROM sessions \
                  WHERE join_time > 0 GROUP BY cdn ORDER BY cdn",
            stream_table: "sessions",
            nested: false,
        },
        QuerySpec {
            id: "C12",
            name: "failures by ISP",
            sql: "SELECT isp, COUNT(*) AS failures FROM sessions WHERE failed = 1 \
                  GROUP BY isp ORDER BY isp",
            stream_table: "sessions",
            nested: false,
        },
    ]
}

/// Look up a query by id (`"C8"`).
pub fn conviva_query(id: &str) -> Option<QuerySpec> {
    conviva_queries().into_iter().find(|q| q.id == id)
}

// ---------------------------------------------------------------------------
// UDFs
// ---------------------------------------------------------------------------

fn num(args: &[Value], i: usize, f: &str) -> Result<f64, ExprError> {
    args.get(i)
        .and_then(Value::as_f64)
        .ok_or_else(|| ExprError::Udf(format!("{f}: argument {i} must be numeric")))
}

/// `REBUF_RATIO(buffer, play)` = buffer / (buffer + play); 0 for idle rows.
fn rebuf_ratio(args: &[Value]) -> Result<Value, ExprError> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let b = num(args, 0, "REBUF_RATIO")?;
    let p = num(args, 1, "REBUF_RATIO")?;
    let denom = b + p;
    Ok(Value::Float(if denom <= 0.0 { 0.0 } else { b / denom }))
}

/// `QOE_SCORE(join, buffer, bitrate)`: 1 is perfect; degraded by startup
/// delay and rebuffering, boosted by bitrate (normalized to 5 Mbps).
fn qoe_score(args: &[Value]) -> Result<Value, ExprError> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let join = num(args, 0, "QOE_SCORE")?;
    let buffer = num(args, 1, "QOE_SCORE")?;
    let bitrate = num(args, 2, "QOE_SCORE")?;
    let startup_penalty = 1.0 / (1.0 + join / 10.0);
    let rebuffer_penalty = 1.0 / (1.0 + buffer / 60.0);
    let quality = (bitrate / 5000.0).min(1.0);
    Ok(Value::Float(startup_penalty * rebuffer_penalty * quality))
}

// ---------------------------------------------------------------------------
// UDAFs
// ---------------------------------------------------------------------------

macro_rules! impl_simple_udaf {
    ($acc:ident, $udaf:ident, $name:literal, $update:expr, $output:expr) => {
        /// Accumulator for the eponymous UDAF.
        #[derive(Clone, Debug, Default)]
        pub struct $acc {
            n: f64,
            acc: f64,
        }

        impl Accumulator for $acc {
            fn update(&mut self, v: &Value, weight: f64) {
                if let Some(x) = v.as_f64() {
                    #[allow(clippy::redundant_closure_call)]
                    if let Some(term) = ($update)(x) {
                        self.n += weight;
                        self.acc += weight * term;
                    }
                }
            }
            fn merge(&mut self, other: &dyn Accumulator) -> Result<(), EngineError> {
                let o = other.as_any().downcast_ref::<$acc>().ok_or_else(|| {
                    EngineError::Plan(format!(
                        "accumulator kind mismatch while merging {} partitions",
                        $name
                    ))
                })?;
                self.n += o.n;
                self.acc += o.acc;
                Ok(())
            }
            fn output(&self, _scale: f64) -> Value {
                if self.n <= 0.0 {
                    Value::Null
                } else {
                    #[allow(clippy::redundant_closure_call)]
                    Value::Float(($output)(self.acc, self.n))
                }
            }
            fn boxed_clone(&self) -> Box<dyn Accumulator> {
                Box::new(self.clone())
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        /// The UDAF descriptor.
        #[derive(Clone, Copy, Debug)]
        pub struct $udaf;

        impl Udaf for $udaf {
            fn name(&self) -> &str {
                $name
            }
            fn accumulator(&self) -> Box<dyn Accumulator> {
                Box::new($acc::default())
            }
        }
    };
}

impl_simple_udaf!(
    HarmonicMeanAcc,
    HarmonicMean,
    "HARMONIC_MEAN",
    |x: f64| if x > 0.0 { Some(1.0 / x) } else { None },
    |acc: f64, n: f64| n / acc
);

impl_simple_udaf!(
    GeoMeanAcc,
    GeoMean,
    "GEO_MEAN",
    |x: f64| if x > 0.0 { Some(x.ln()) } else { None },
    |acc: f64, n: f64| (acc / n).exp()
);

impl_simple_udaf!(
    RmsAcc,
    Rms,
    "RMS",
    |x: f64| Some(x * x),
    |acc: f64, n: f64| (acc / n).sqrt()
);

/// Function registry with the built-ins plus the Conviva UDFs and UDAFs.
pub fn conviva_registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::with_builtins();
    reg.register_scalar(Arc::new(FnUdf::new(
        "REBUF_RATIO",
        DataType::Float,
        rebuf_ratio,
    )));
    reg.register_scalar(Arc::new(FnUdf::new(
        "QOE_SCORE",
        DataType::Float,
        qoe_score,
    )));
    reg.register_udaf(Arc::new(HarmonicMean));
    reg.register_udaf(Arc::new(GeoMean));
    reg.register_udaf(Arc::new(Rms));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conviva::conviva_catalog;
    use iolap_engine::{execute, plan_sql};

    #[test]
    fn all_queries_plan_and_execute() {
        let cat = conviva_catalog(400, 42);
        let reg = conviva_registry();
        for q in conviva_queries() {
            let pq = plan_sql(q.sql, &cat, &reg)
                .unwrap_or_else(|e| panic!("{} failed to plan: {e}", q.id));
            execute(&pq.plan, &cat).unwrap_or_else(|e| panic!("{} failed to run: {e}", q.id));
        }
    }

    #[test]
    fn udf_rebuf_ratio() {
        assert_eq!(
            rebuf_ratio(&[Value::Float(30.0), Value::Float(90.0)]).unwrap(),
            Value::Float(0.25)
        );
        assert_eq!(
            rebuf_ratio(&[Value::Float(0.0), Value::Float(0.0)]).unwrap(),
            Value::Float(0.0)
        );
        assert_eq!(
            rebuf_ratio(&[Value::Null, Value::Float(1.0)]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn udaf_harmonic_mean() {
        let mut a = HarmonicMeanAcc::default();
        for v in [2.0, 4.0] {
            a.update(&Value::Float(v), 1.0);
        }
        // HM(2, 4) = 2 / (1/2 + 1/4) = 8/3.
        let out = a.output(1.0).as_f64().unwrap();
        assert!((out - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn udaf_geo_mean() {
        let mut a = GeoMeanAcc::default();
        for v in [2.0, 8.0] {
            a.update(&Value::Float(v), 1.0);
        }
        assert!((a.output(1.0).as_f64().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn udaf_rms() {
        let mut a = RmsAcc::default();
        for v in [3.0, 4.0] {
            a.update(&Value::Float(v), 1.0);
        }
        let expect = ((9.0 + 16.0) / 2.0_f64).sqrt();
        assert!((a.output(1.0).as_f64().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn udaf_weighted_updates() {
        let mut a = GeoMeanAcc::default();
        a.update(&Value::Float(2.0), 2.0); // counts twice
        a.update(&Value::Float(8.0), 1.0);
        let expect = (2.0_f64.ln() * 2.0 + 8.0_f64.ln()).exp().powf(1.0 / 3.0);
        assert!((a.output(1.0).as_f64().unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn nested_and_udaf_flags() {
        let qs = conviva_queries();
        let simple: Vec<&str> = qs.iter().filter(|q| !q.nested).map(|q| q.id).collect();
        assert_eq!(simple, vec!["C3", "C5", "C11", "C12"]);
    }
}
