//! # iolap-workloads
//!
//! The paper's two evaluation workloads (§8), rebuilt synthetically at
//! laptop scale:
//!
//! * [`tpch`] / [`tpch_queries`] — a TPC-H-lite generator with the paper's
//!   denormalized `lineorder` schema, and the query subset Q1, Q3, Q5, Q6,
//!   Q7 (flat SPJA) + Q11, Q17, Q18, Q20, Q22 (nested), adapted to positive
//!   relational algebra;
//! * [`conviva`] / [`conviva_queries`] — a synthetic video-QoE sessions
//!   table standing in for the proprietary Conviva trace, with queries
//!   C1–C12 (flat, nested, HAVING, UDF, UDAF) plus the SBI example query,
//!   and the UDF/UDAF registry they need.

#![warn(missing_docs)]

pub mod conviva;
pub mod conviva_queries;
pub mod tpch;
pub mod tpch_queries;

pub use conviva::{conviva_catalog, conviva_sessions, figure2_sessions};
pub use conviva_queries::{conviva_queries, conviva_query, conviva_registry};
pub use tpch::{tpch_catalog, TpchSizes};
pub use tpch_queries::{tpch_queries, tpch_query, QuerySpec};
