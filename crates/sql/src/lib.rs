//! # iolap-sql
//!
//! SQL frontend for the iOLAP reproduction: a lexer, AST, and
//! recursive-descent parser for the paper's supported dialect (§3.3) —
//! positive relational algebra (SELECT / PROJECT / JOIN / UNION ALL /
//! AGGREGATE) with nested scalar subqueries (correlated or not),
//! `IN (SELECT …)` semi-joins, `HAVING`, `CASE`, `BETWEEN`, `LIKE`, and
//! function calls resolved later against a UDF/UDAF registry.
//!
//! Set difference (`NOT EXISTS`, `EXCEPT`, `UNION DISTINCT`) is rejected at
//! parse time with an explanatory error, matching the paper's scoping.
//!
//! Planning (AST → logical plan, subquery decorrelation) lives in
//! `iolap-engine`, which layers on top of this crate.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinaryOp, Expr, OrderItem, Query, SelectBlock, SelectItem, Statement, TableRef, UnaryOp,
};
pub use parser::{parse, parse_query, ParseError};
