//! Abstract syntax tree for the supported SQL dialect.
//!
//! The dialect is the paper's supported query class (§3.3): positive
//! relational algebra — SELECT / PROJECT / JOIN / UNION / AGGREGATE — with
//! arbitrary nesting of *scalar* subqueries (correlated or not), `IN
//! (SELECT …)` semi-joins, `HAVING`, `CASE`, UDFs and UDAFs. Set difference
//! (`NOT EXISTS`, `EXCEPT`) is excluded, as in the paper.

use iolap_relation::Value;
use std::fmt;

/// A parsed statement (only queries are supported).
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A `SELECT` query, possibly with `UNION ALL` branches.
    Query(Query),
}

/// A query: one or more `SELECT` blocks combined with `UNION ALL`.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The `UNION ALL` branches; a plain `SELECT` has exactly one.
    pub branches: Vec<SelectBlock>,
    /// `ORDER BY` applied to the union result.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` applied after ordering.
    pub limit: Option<u64>,
}

/// One `SELECT … FROM … WHERE … GROUP BY … HAVING …` block.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectBlock {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` tables (comma or `JOIN … ON` syntax; both become joins).
    pub from: Vec<TableRef>,
    /// Equi-join predicates from `JOIN … ON` clauses; combined with `WHERE`.
    pub join_predicates: Vec<Expr>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A table reference in `FROM`.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Base table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// `ORDER BY` item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending?
    pub asc: bool,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// True for `= <> < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// AST expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `[qualifier.]name`
    Column {
        /// Table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal constant.
    Literal(Value),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call: built-in aggregate (`SUM`, `AVG`, …), UDAF, or scalar
    /// UDF — disambiguated by the planner against the function registry.
    Function {
        /// Function name (uppercased at parse time).
        name: String,
        /// Arguments; `COUNT(*)` has an empty argument list.
        args: Vec<Expr>,
        /// `DISTINCT` qualifier (only meaningful for aggregates).
        distinct: bool,
    },
    /// Scalar subquery `(SELECT …)`, possibly correlated with the outer
    /// query via columns that do not resolve locally.
    ScalarSubquery(Box<Query>),
    /// `expr IN (SELECT …)` — planned as a semi-join (positive RA only, so
    /// no `NOT IN`).
    InSubquery {
        /// Probe expression.
        expr: Box<Expr>,
        /// The subquery producing match values.
        subquery: Box<Query>,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr LIKE 'pattern'` with `%`/`_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
    },
    /// `CASE WHEN c1 THEN v1 … [ELSE e] END`.
    Case {
        /// `(condition, result)` arms.
        when_then: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Convenience: binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Visit this expression and all children, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column { .. } | Expr::Literal(_) | Expr::Like { .. } => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::ScalarSubquery(_) | Expr::InSubquery { .. } => {
                // Subquery internals are visited by the planner, not here.
                if let Expr::InSubquery { expr, .. } = self {
                    expr.walk(f);
                }
            }
            Expr::Between { expr, low, high } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Case {
                when_then,
                else_expr,
            } => {
                for (c, v) in when_then {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
        }
    }

    /// True if the expression (not descending into subqueries) contains an
    /// aggregate-looking function call. The planner uses the registry for
    /// the authoritative decision; this helper is for AST validation.
    pub fn contains_function(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Function { .. }) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all() {
        let e = Expr::binary(
            Expr::col("a"),
            BinaryOp::Add,
            Expr::Function {
                name: "F".into(),
                args: vec![Expr::col("b")],
                distinct: false,
            },
        );
        let mut cols = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Column { name, .. } = x {
                cols.push(name.clone());
            }
        });
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn contains_function_detects() {
        assert!(!Expr::col("a").contains_function());
        let f = Expr::Function {
            name: "AVG".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(f.contains_function());
    }
}
