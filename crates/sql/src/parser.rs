//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, LexError, Token, TokenKind};
use iolap_relation::Value;
use std::fmt;

/// Parser errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (message, offset).
    Unexpected(String, usize),
    /// Input ended prematurely.
    UnexpectedEof(String),
    /// Feature outside the supported dialect (e.g. `NOT EXISTS`).
    Unsupported(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected(m, o) => write!(f, "parse error at offset {o}: {m}"),
            ParseError::UnexpectedEof(m) => write!(f, "unexpected end of input: expected {m}"),
            ParseError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat_if(&TokenKind::Semicolon);
    if let Some(t) = p.peek() {
        return Err(ParseError::Unexpected(
            format!("trailing input `{:?}`", t.kind),
            t.offset,
        ));
    }
    Ok(Statement::Query(q))
}

/// Parse a query (no trailing-token check); used for subqueries in tests.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    match parse(sql)? {
        Statement::Query(q) => Ok(q),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        self.eat_if(&TokenKind::Keyword(kw))
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseError::Unexpected(
                format!("expected {what}, found {:?}", t.kind),
                t.offset,
            )),
            None => Err(ParseError::UnexpectedEof(what.to_string())),
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        self.expect(&TokenKind::Keyword(kw), &format!("{kw:?}"))
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError::Unexpected(
                format!("expected {what}, found {:?}", t.kind),
                t.offset,
            )),
            None => Err(ParseError::UnexpectedEof(what.to_string())),
        }
    }

    // query := select_block (UNION ALL select_block)* [ORDER BY ...] [LIMIT n]
    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let mut branches = vec![self.parse_select_block()?];
        while self.eat_keyword(Keyword::Union) {
            if !self.eat_keyword(Keyword::All) {
                return Err(ParseError::Unsupported(
                    "UNION DISTINCT requires set difference; only UNION ALL is supported".into(),
                ));
            }
            branches.push(self.parse_select_block()?);
        }
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_keyword(Keyword::Desc) {
                    false
                } else {
                    self.eat_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword(Keyword::Limit) {
            match self.next() {
                Some(Token {
                    kind: TokenKind::Int(n),
                    ..
                }) if n >= 0 => limit = Some(n as u64),
                Some(t) => {
                    return Err(ParseError::Unexpected(
                        "expected non-negative LIMIT count".into(),
                        t.offset,
                    ))
                }
                None => return Err(ParseError::UnexpectedEof("LIMIT count".into())),
            }
        }
        Ok(Query {
            branches,
            order_by,
            limit,
        })
    }

    fn parse_select_block(&mut self) -> Result<SelectBlock, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        if self.eat_keyword(Keyword::Distinct) {
            return Err(ParseError::Unsupported(
                "SELECT DISTINCT: use GROUP BY (duplicate elimination is expressed via AGGREGATE, §4.1 fn.7)"
                    .into(),
            ));
        }
        let mut items = Vec::new();
        loop {
            if self.eat_if(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        let mut join_predicates = Vec::new();
        if self.eat_keyword(Keyword::From) {
            loop {
                from.push(self.parse_table_ref()?);
                // JOIN ... ON chains
                loop {
                    let has_inner = self.eat_keyword(Keyword::Inner);
                    if self.eat_keyword(Keyword::Join) {
                        from.push(self.parse_table_ref()?);
                        self.expect_keyword(Keyword::On)?;
                        join_predicates.push(self.parse_expr()?);
                    } else if has_inner {
                        return Err(ParseError::Unsupported("INNER without JOIN".into()));
                    } else {
                        break;
                    }
                }
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(SelectBlock {
            items,
            from,
            join_predicates,
            where_clause,
            group_by,
            having,
        })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.expect_ident("table name")?;
        let alias = self.parse_alias()?;
        Ok(TableRef { name, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword(Keyword::As) {
            return Ok(Some(self.expect_ident("alias")?));
        }
        // Bare alias: an identifier not starting a clause.
        if let Some(TokenKind::Ident(_)) = self.peek_kind() {
            if let Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) = self.next()
            {
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    // Precedence climbing: OR < AND < NOT < predicate < add < mul < unary.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            if self.peek_kind() == Some(&TokenKind::Keyword(Keyword::Exists)) {
                return Err(ParseError::Unsupported(
                    "NOT EXISTS requires set difference, which is outside positive relational algebra (§3.3)"
                        .into(),
                ));
            }
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }

        if self.eat_keyword(Keyword::Like) {
            match self.next() {
                Some(Token {
                    kind: TokenKind::Str(p),
                    ..
                }) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern: p,
                    })
                }
                Some(t) => {
                    return Err(ParseError::Unexpected(
                        "LIKE pattern must be a string literal".into(),
                        t.offset,
                    ))
                }
                None => return Err(ParseError::UnexpectedEof("LIKE pattern".into())),
            }
        }

        if self.eat_keyword(Keyword::In) {
            self.expect(&TokenKind::LParen, "(")?;
            if self.peek_kind() == Some(&TokenKind::Keyword(Keyword::Select)) {
                let sub = self.parse_query()?;
                self.expect(&TokenKind::RParen, ")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                });
            }
            // IN (v1, v2, ...) desugars to an OR chain of equalities.
            let mut alternatives = Vec::new();
            loop {
                alternatives.push(self.parse_expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, ")")?;
            let mut it = alternatives.into_iter();
            let first = it
                .next()
                .ok_or_else(|| ParseError::Unsupported("empty IN list".into()))?;
            let mut acc = Expr::binary(left.clone(), BinaryOp::Eq, first);
            for alt in it {
                acc = Expr::binary(
                    acc,
                    BinaryOp::Or,
                    Expr::binary(left.clone(), BinaryOp::Eq, alt),
                );
            }
            return Ok(acc);
        }

        let op = match self.peek_kind() {
            Some(TokenKind::Eq) => Some(BinaryOp::Eq),
            Some(TokenKind::Neq) => Some(BinaryOp::Neq),
            Some(TokenKind::Lt) => Some(BinaryOp::Lt),
            Some(TokenKind::Le) => Some(BinaryOp::Le),
            Some(TokenKind::Gt) => Some(BinaryOp::Gt),
            Some(TokenKind::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                Some(TokenKind::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let t = self
            .next()
            .ok_or_else(|| ParseError::UnexpectedEof("expression".into()))?;
        match t.kind {
            TokenKind::Int(n) => Ok(Expr::Literal(Value::Int(n))),
            TokenKind::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::str(s))),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Literal(Value::Null)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Literal(Value::Bool(true))),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Literal(Value::Bool(false))),
            TokenKind::Keyword(Keyword::Case) => self.parse_case(),
            TokenKind::Keyword(Keyword::Exists) => Err(ParseError::Unsupported(
                "EXISTS: rewrite as IN (SELECT …) semi-join".into(),
            )),
            TokenKind::LParen => {
                if self.peek_kind() == Some(&TokenKind::Keyword(Keyword::Select)) {
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen, ")")?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen, ")")?;
                    Ok(e)
                }
            }
            TokenKind::Ident(name) => {
                // Function call?
                if self.peek_kind() == Some(&TokenKind::LParen) {
                    self.next();
                    let fname = name.to_ascii_uppercase();
                    let mut distinct = false;
                    let mut args = Vec::new();
                    if self.eat_if(&TokenKind::Star) {
                        // COUNT(*)
                        self.expect(&TokenKind::RParen, ")")?;
                        return Ok(Expr::Function {
                            name: fname,
                            args,
                            distinct,
                        });
                    }
                    if self.eat_keyword(Keyword::Distinct) {
                        distinct = true;
                    }
                    if !self.eat_if(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_if(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, ")")?;
                    }
                    return Ok(Expr::Function {
                        name: fname,
                        args,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat_if(&TokenKind::Dot) {
                    let col = self.expect_ident("column name")?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(ParseError::Unexpected(
                format!("unexpected token {other:?} in expression"),
                t.offset,
            )),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let mut when_then = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let cond = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let val = self.parse_expr()?;
            when_then.push((cond, val));
        }
        if when_then.is_empty() {
            return Err(ParseError::Unsupported(
                "CASE without WHEN arms (simple CASE form not supported)".into(),
            ));
        }
        let else_expr = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            when_then,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(sql: &str) -> SelectBlock {
        parse_query(sql).unwrap().branches.remove(0)
    }

    #[test]
    fn parse_sbi() {
        let b = block(
            "SELECT AVG(play_time) FROM Sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)",
        );
        assert_eq!(b.from.len(), 1);
        assert_eq!(b.from[0].name, "Sessions");
        let w = b.where_clause.unwrap();
        match w {
            Expr::Binary { op, right, .. } => {
                assert_eq!(op, BinaryOp::Gt);
                assert!(matches!(*right, Expr::ScalarSubquery(_)));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn parse_group_by_having() {
        let b = block(
            "SELECT city, SUM(play_time) AS total FROM sessions \
             GROUP BY city HAVING SUM(play_time) > 100",
        );
        assert_eq!(b.group_by.len(), 1);
        assert!(b.having.is_some());
        match &b.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_in_subquery() {
        let b = block(
            "SELECT o_orderkey FROM lineorder WHERE o_orderkey IN \
             (SELECT l_orderkey FROM lineorder GROUP BY l_orderkey HAVING SUM(l_quantity) > 300)",
        );
        assert!(matches!(b.where_clause.unwrap(), Expr::InSubquery { .. }));
    }

    #[test]
    fn parse_in_value_list_desugars() {
        let b = block("SELECT a FROM t WHERE a IN (1, 2, 3)");
        // ((a=1) OR a=2) OR a=3
        let w = b.where_clause.unwrap();
        match w {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::Or),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_operator_precedence() {
        let b = block("SELECT a FROM t WHERE a + 2 * 3 > 7 AND b < 1 OR c = 2");
        // OR at top
        match b.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                left,
                ..
            } => match *left {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("expected AND under OR, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_count_star_and_distinct() {
        let b = block("SELECT COUNT(*), COUNT(DISTINCT uid) FROM t");
        match &b.items[0] {
            SelectItem::Expr {
                expr: Expr::Function { name, args, .. },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert!(args.is_empty());
            }
            _ => panic!(),
        }
        match &b.items[1] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(*distinct),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_join_on_syntax() {
        let b = block(
            "SELECT * FROM lineorder l JOIN customer c ON l.lo_custkey = c.c_custkey \
             WHERE c.c_mktsegment = 'BUILDING'",
        );
        assert_eq!(b.from.len(), 2);
        assert_eq!(b.from[0].effective_name(), "l");
        assert_eq!(b.join_predicates.len(), 1);
    }

    #[test]
    fn parse_between_and_like() {
        let b = block("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND name LIKE 'x%'");
        match b.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                assert!(matches!(*left, Expr::Between { .. }));
                assert!(matches!(*right, Expr::Like { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_case_when() {
        let b = block("SELECT SUM(CASE WHEN a > 1 THEN b ELSE 0 END) FROM t");
        match &b.items[0] {
            SelectItem::Expr {
                expr: Expr::Function { args, .. },
                ..
            } => assert!(matches!(args[0], Expr::Case { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_union_all_order_limit() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a DESC LIMIT 5")
            .unwrap();
        assert_eq!(q.branches.len(), 2);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn reject_not_exists() {
        let err = parse_query("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)").unwrap_err();
        assert!(matches!(err, ParseError::Unsupported(_)));
    }

    #[test]
    fn reject_union_distinct() {
        let err = parse_query("SELECT a FROM t UNION SELECT a FROM u").unwrap_err();
        assert!(matches!(err, ParseError::Unsupported(_)));
    }

    #[test]
    fn reject_trailing_tokens() {
        assert!(parse("SELECT 1 FROM t garbage garbage").is_err());
    }

    #[test]
    fn parse_correlated_subquery() {
        // Q17-style: inner references outer alias.
        let b = block(
            "SELECT SUM(l.lo_extendedprice) FROM lineorder l \
             WHERE l.lo_quantity < (SELECT 0.2 * AVG(i.lo_quantity) FROM lineorder i \
                                    WHERE i.lo_partkey = l.lo_partkey)",
        );
        let w = b.where_clause.unwrap();
        match w {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::ScalarSubquery(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_semicolon_terminated() {
        assert!(parse("SELECT 1 FROM t;").is_ok());
    }

    #[test]
    fn parse_arithmetic_unary_minus() {
        let b = block("SELECT -a + 3 FROM t");
        match &b.items[0] {
            SelectItem::Expr {
                expr: Expr::Binary { left, .. },
                ..
            } => assert!(matches!(
                **left,
                Expr::Unary {
                    op: UnaryOp::Neg,
                    ..
                }
            )),
            _ => panic!(),
        }
    }
}
