//! SQL tokenizer.
//!
//! Produces a flat token stream for the recursive-descent parser. The token
//! set covers the positive SPJA + nested-subquery dialect of the paper
//! (§3.3) plus `HAVING`, `ORDER BY`, `LIMIT`, `IN (SELECT …)`, `BETWEEN`,
//! `LIKE`, and function calls (built-in aggregates, UDFs, UDAFs).

use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

/// Recognized SQL keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Asc,
    Desc,
    Distinct,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Exists,
    Union,
    All,
    Join,
    Inner,
    On,
}

impl Keyword {
    fn parse(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "ASC" => Asc,
            "DESC" => Desc,
            "DISTINCT" => Distinct,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "EXISTS" => Exists,
            "UNION" => Union,
            "ALL" => All,
            "JOIN" => Join,
            "INNER" => Inner,
            "ON" => On,
            _ => return None,
        })
    }
}

/// Lexer errors.
#[derive(Clone, Debug, PartialEq)]
pub enum LexError {
    /// Unexpected character at offset.
    UnexpectedChar(char, usize),
    /// String literal not terminated.
    UnterminatedString(usize),
    /// Number could not be parsed.
    BadNumber(String, usize),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar(c, o) => write!(f, "unexpected character `{c}` at {o}"),
            LexError::UnterminatedString(o) => write!(f, "unterminated string starting at {o}"),
            LexError::BadNumber(s, o) => write!(f, "bad numeric literal `{s}` at {o}"),
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenize `sql` into a token vector. Comments (`-- …`) and whitespace are
/// skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(tok(TokenKind::LParen, start));
                i += 1;
            }
            ')' => {
                tokens.push(tok(TokenKind::RParen, start));
                i += 1;
            }
            ',' => {
                tokens.push(tok(TokenKind::Comma, start));
                i += 1;
            }
            '.' if !next_is_digit(bytes, i + 1) => {
                tokens.push(tok(TokenKind::Dot, start));
                i += 1;
            }
            '*' => {
                tokens.push(tok(TokenKind::Star, start));
                i += 1;
            }
            '+' => {
                tokens.push(tok(TokenKind::Plus, start));
                i += 1;
            }
            '-' => {
                tokens.push(tok(TokenKind::Minus, start));
                i += 1;
            }
            '/' => {
                tokens.push(tok(TokenKind::Slash, start));
                i += 1;
            }
            '%' => {
                tokens.push(tok(TokenKind::Percent, start));
                i += 1;
            }
            ';' => {
                tokens.push(tok(TokenKind::Semicolon, start));
                i += 1;
            }
            '=' => {
                tokens.push(tok(TokenKind::Eq, start));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(tok(TokenKind::Neq, start));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(tok(TokenKind::Le, start));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(tok(TokenKind::Neq, start));
                    i += 2;
                }
                _ => {
                    tokens.push(tok(TokenKind::Lt, start));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(TokenKind::Ge, start));
                    i += 2;
                } else {
                    tokens.push(tok(TokenKind::Gt, start));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => return Err(LexError::UnterminatedString(start)),
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(tok(TokenKind::Str(s), start));
                i = j;
            }
            c if c.is_ascii_digit() || (c == '.' && next_is_digit(bytes, i + 1)) => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && j > i
                        && bytes
                            .get(j + 1)
                            .is_some_and(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                    {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &sql[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| LexError::BadNumber(text.into(), start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| LexError::BadNumber(text.into(), start))?,
                    )
                };
                tokens.push(tok(kind, start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &sql[i..j];
                let kind = match Keyword::parse(word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(tok(kind, start));
                i = j;
            }
            other => return Err(LexError::UnexpectedChar(other, start)),
        }
    }
    Ok(tokens)
}

fn tok(kind: TokenKind, offset: usize) -> Token {
    Token { kind, offset }
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_sbi_query() {
        let ks = kinds(
            "SELECT AVG(play_time) FROM Sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)",
        );
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(ks[1], TokenKind::Ident("AVG".into()));
        assert!(ks.contains(&TokenKind::Gt));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::LParen).count(), 3);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 .5 1e3 2.5E-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(0.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
            ]
        );
    }

    #[test]
    fn lex_strings_with_escape() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
    }

    #[test]
    fn lex_comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
            ]
        );
    }

    #[test]
    fn lex_comments_skipped() {
        assert_eq!(
            kinds("SELECT -- hidden\n 1"),
            vec![TokenKind::Keyword(Keyword::Select), TokenKind::Int(1)]
        );
    }

    #[test]
    fn lex_qualified_column() {
        assert_eq!(
            kinds("s.play_time"),
            vec![
                TokenKind::Ident("s".into()),
                TokenKind::Dot,
                TokenKind::Ident("play_time".into()),
            ]
        );
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(matches!(
            tokenize("'oops"),
            Err(LexError::UnterminatedString(0))
        ));
    }

    #[test]
    fn lex_unexpected_char_errors() {
        assert!(matches!(
            tokenize("SELECT #"),
            Err(LexError::UnexpectedChar('#', _))
        ));
    }
}
