//! Property tests for the SQL frontend: the lexer never panics on arbitrary
//! input, and generated queries from the supported dialect round-trip
//! through the parser with the expected structure.

use iolap_sql::ast::{Expr, SelectItem};
use iolap_sql::lexer::tokenize;
use iolap_sql::parse_query;
use proptest::prelude::*;

proptest! {
    /// Tokenizing arbitrary bytes must never panic — it may only return an
    /// error value.
    #[test]
    fn lexer_total_on_arbitrary_input(s in ".*") {
        let _ = tokenize(&s);
    }

    /// Valid identifiers and numbers survive lexing intact.
    #[test]
    fn lexer_roundtrips_identifiers(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}",
        n in any::<i32>(),
    ) {
        let sql = format!("SELECT {name}, {n} FROM t");
        let toks = tokenize(&sql).unwrap();
        use iolap_sql::lexer::TokenKind;
        let has_ident = toks.iter().any(|t| match &t.kind {
            TokenKind::Ident(s) => s == &name,
            // Identifiers that collide with keywords lex as keywords.
            TokenKind::Keyword(_) => true,
            _ => false,
        });
        prop_assert!(has_ident);
        let n_ok = toks.iter().any(|t| match t.kind {
            TokenKind::Int(v) => v == n as i64 || v == -(n as i64),
            _ => false,
        });
        prop_assert!(n_ok);
    }

    /// Generated WHERE predicates from the dialect parse, and the parsed
    /// projection count matches what was generated.
    #[test]
    fn parser_accepts_generated_queries(
        ncols in 1usize..6,
        threshold in -1000i64..1000,
        agg in prop_oneof![Just("AVG"), Just("SUM"), Just("COUNT"), Just("MIN")],
        with_group in any::<bool>(),
        with_order in any::<bool>(),
    ) {
        let cols: Vec<String> = (0..ncols).map(|i| format!("c{i}")).collect();
        let mut sql = format!(
            "SELECT {}, {agg}(c0) FROM t WHERE c0 > {threshold}",
            cols.join(", ")
        );
        if with_group {
            sql.push_str(&format!(" GROUP BY {}", cols.join(", ")));
        }
        if with_order {
            sql.push_str(" ORDER BY c0 LIMIT 7");
        }
        let q = parse_query(&sql).unwrap();
        let block = &q.branches[0];
        prop_assert_eq!(block.items.len(), ncols + 1);
        prop_assert_eq!(block.group_by.len(), if with_group { ncols } else { 0 });
        prop_assert_eq!(q.limit, if with_order { Some(7) } else { None });
        prop_assert!(block.where_clause.is_some());
    }

    /// Operator precedence: `a + b * c` always parses with `*` bound
    /// tighter, regardless of the literal operands.
    #[test]
    fn parser_precedence_invariant(a in 0i64..100, b in 0i64..100, c in 0i64..100) {
        let q = parse_query(&format!("SELECT {a} + {b} * {c} FROM t")).unwrap();
        let item = &q.branches[0].items[0];
        let SelectItem::Expr { expr, .. } = item else { panic!() };
        match expr {
            Expr::Binary { op, right, .. } => {
                prop_assert_eq!(*op, iolap_sql::BinaryOp::Add);
                let is_mul = matches!(
                    **right,
                    Expr::Binary { op: iolap_sql::BinaryOp::Mul, .. }
                );
                prop_assert!(is_mul);
            }
            other => prop_assert!(false, "unexpected shape {:?}", other),
        }
    }

    /// Nested parentheses to arbitrary (bounded) depth parse correctly.
    #[test]
    fn parser_handles_nesting_depth(depth in 0usize..30, v in 0i64..100) {
        let open = "(".repeat(depth);
        let close = ")".repeat(depth);
        let q = parse_query(&format!("SELECT {open}{v}{close} FROM t"));
        prop_assert!(q.is_ok());
    }
}
