//! The traditional batch OLAP baseline (§8.1): answer the query on the
//! whole dataset with the unmodified batch engine — no mini-batches, no
//! approximation, full latency.

use iolap_engine::{execute, plan_sql, EngineError, FunctionRegistry, PlanError, PlannedQuery};
use iolap_relation::{Catalog, Relation};
use std::time::{Duration, Instant};

/// Outcome of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Exact query result.
    pub relation: Relation,
    /// Output names.
    pub names: Vec<String>,
    /// End-to-end latency.
    pub elapsed: Duration,
}

/// Run `sql` exactly on the full catalog, timed.
pub fn run_baseline(
    sql: &str,
    catalog: &Catalog,
    registry: &FunctionRegistry,
) -> Result<BaselineReport, BaselineError> {
    let pq = plan_sql(sql, catalog, registry)?;
    run_baseline_plan(&pq, catalog)
}

/// Run an already-planned query exactly, timed.
pub fn run_baseline_plan(
    pq: &PlannedQuery,
    catalog: &Catalog,
) -> Result<BaselineReport, BaselineError> {
    let start = Instant::now();
    let relation = execute(&pq.plan, catalog)?;
    Ok(BaselineReport {
        relation,
        names: pq.output_names.clone(),
        elapsed: start.elapsed(),
    })
}

/// Baseline errors.
#[derive(Debug)]
pub enum BaselineError {
    /// Planning failed.
    Plan(PlanError),
    /// Execution failed.
    Engine(EngineError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Plan(e) => write!(f, "{e}"),
            BaselineError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<PlanError> for BaselineError {
    fn from(e: PlanError) -> Self {
        BaselineError::Plan(e)
    }
}
impl From<EngineError> for BaselineError {
    fn from(e: EngineError) -> Self {
        BaselineError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};

    #[test]
    fn baseline_runs_and_times() {
        let cat = conviva_catalog(300, 1);
        let reg = conviva_registry();
        let q = conviva_query("SBI").unwrap();
        let r = run_baseline(q.sql, &cat, &reg).unwrap();
        assert_eq!(r.relation.len(), 1);
        assert!(r.elapsed.as_nanos() > 0);
    }
}
