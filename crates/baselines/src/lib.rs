//! # iolap-baselines
//!
//! The comparator systems of the paper's evaluation (§8):
//!
//! * [`baseline`] — the traditional batch engine run on the full dataset
//!   ("unmodified SparkSQL");
//! * [`hda`] — the DBToaster-style higher-order delta algorithm: classical
//!   delta rules for flat SPJA, incrementally maintained inner views plus
//!   outer recomputation on `D_i` for nested queries (the `O(p²)` behaviour
//!   of §3.1);
//! * [`ola`] — classic Online Aggregation, flat SPJA only.

#![warn(missing_docs)]

pub mod baseline;
pub mod hda;
pub mod ola;

pub use baseline::{run_baseline, run_baseline_plan, BaselineError, BaselineReport};
pub use hda::HdaDriver;
pub use ola::OlaDriver;
