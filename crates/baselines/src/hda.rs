//! HDA: the higher-order delta algorithm comparator (§8).
//!
//! The paper compares iOLAP against a re-implementation of DBToaster's
//! higher-order delta processing "without code generation and indexes". The
//! defining behaviour (§3.1):
//!
//! * **Flat SPJA queries** are maintained with the classical delta rules of
//!   Figure 1 — per batch, only `ΔD` is processed. For these queries
//!   "the delta processing techniques of iOLAP boil down to the classical
//!   delta processing techniques" (§8.2), so this implementation reuses the
//!   online operator infrastructure with bootstrap disabled.
//! * **Nested queries**: inner aggregate subqueries are maintained
//!   incrementally (the higher-order views), but every operator downstream
//!   of a changed uncertain aggregate is re-evaluated *from scratch on all
//!   previously processed data* `D_i` each batch — the `n·O(p²)` behaviour
//!   the paper's Figure 8 quantifies.

use iolap_core::{
    BatchReport, BatchStats, DriverError, IolapConfig, IolapDriver, Metrics, QueryResult, Span,
};
use iolap_engine::{execute, AggCall, EngineError, FunctionRegistry, Plan, PlannedQuery};
use iolap_relation::{BatchedRelation, Catalog, DataType, Field, Relation, Row, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One incrementally maintained inner aggregate (a higher-order view).
struct InnerView {
    /// Materialized-table name substituted into the outer plan.
    table: String,
    /// The SPJ subtree below the aggregate (executed per delta).
    input: Plan,
    group_cols: Vec<usize>,
    aggs: Vec<AggCall>,
    schema: Schema,
    /// Whether the view's subtree reads the streamed relation; if not, it is
    /// computed once from the full catalog.
    reads_stream: bool,
    /// If the subtree references another maintained view, fall back to
    /// recomputation on `D_i` (higher-order maintenance gives up; §9: "the
    /// delta update query obtained by higher-order IVM is often no simpler
    /// than the original query").
    recompute: bool,
    /// Accumulator state per group (main accumulators only; HDA has no
    /// bootstrap).
    state: HashMap<Arc<[Value]>, Vec<Box<dyn iolap_engine::Accumulator>>>,
}

impl InnerView {
    fn fold_delta(&mut self, delta_catalog: &Catalog) -> Result<usize, EngineError> {
        let rel = execute(&self.input, delta_catalog)?;
        let n = rel.len();
        for row in rel.rows() {
            let key = row.key(&self.group_cols);
            let accs = self
                .state
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|a| a.kind.accumulator()).collect());
            for (call, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                let v = call.input.eval(row, &iolap_engine::EvalContext::batch())?;
                acc.update(&v, row.mult);
            }
        }
        Ok(n)
    }

    fn materialize(&self, scale: f64) -> Relation {
        // The view state lives in a HashMap; iterate it in sorted key order
        // so the materialized relation — and everything downstream of it in
        // the outer plan, including the published `BatchReport` — is
        // byte-identical across runs (determinism lint L002).
        let mut entries: Vec<_> = self.state.iter().collect();
        entries.sort_by(|(a, _), (b, _)| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut rows = Vec::with_capacity(self.state.len().max(1));
        for (key, accs) in entries {
            let mut values: Vec<Value> = key.to_vec();
            for (call, acc) in self.aggs.iter().zip(accs.iter()) {
                let s = if call.kind.extensive() { scale } else { 1.0 };
                values.push(acc.output(s));
            }
            rows.push(Row::new(values));
        }
        if self.group_cols.is_empty() && rows.is_empty() {
            let values: Vec<Value> = self
                .aggs
                .iter()
                .map(|a| a.kind.accumulator().output(1.0))
                .collect();
            rows.push(Row::new(values));
        }
        Relation::new(self.schema.clone(), rows)
    }

    fn state_bytes(&self) -> usize {
        self.state
            .values()
            .flat_map(|accs| accs.iter())
            .map(|a| a.approx_bytes())
            .sum()
    }
}

enum Mode {
    /// Flat SPJA: classical delta rules (shared online infrastructure,
    /// bootstrap off).
    Flat(Box<IolapDriver>),
    /// Nested: maintained inner views + outer recomputation on `D_i`.
    Nested(Box<NestedState>),
}

struct NestedState {
    outer_plan: Plan,
    output_names: Vec<String>,
    views: Vec<InnerView>,
    catalog: Catalog,
    stream_table: String,
    batches: BatchedRelation,
    next_batch: usize,
}

/// The HDA driver: same stepping interface as [`IolapDriver`].
pub struct HdaDriver {
    mode: Mode,
}

impl HdaDriver {
    /// Compile a query for HDA execution.
    pub fn from_sql(
        sql: &str,
        catalog: &Catalog,
        registry: &FunctionRegistry,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let pq = iolap_engine::plan_sql(sql, catalog, registry).map_err(DriverError::Plan)?;
        Self::from_plan(&pq, catalog, stream_table, config)
    }

    /// Compile a planned query for HDA execution.
    pub fn from_plan(
        pq: &PlannedQuery,
        catalog: &Catalog,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let stream_table = stream_table.to_ascii_lowercase();
        if config.num_batches == 0 {
            return Err(DriverError::Setup("num_batches must be at least 1".into()));
        }
        // Extract inner aggregates: every Aggregate that feeds an operator
        // other than the root spine of Project/Select/Sort nodes.
        let mut views = Vec::new();
        let outer_plan = extract_inner(&pq.plan, true, &mut views, &stream_table);
        if views.is_empty() {
            // Flat: classical delta rules == the online engine without
            // bootstrap or uncertainty machinery.
            let flat_config = IolapConfig {
                trials: 0,
                ..config
            };
            let inner = IolapDriver::from_plan(pq, catalog, &stream_table, flat_config)?;
            return Ok(HdaDriver {
                mode: Mode::Flat(Box::new(inner)),
            });
        }
        let rel = catalog
            .get(&stream_table)
            .map_err(|e| DriverError::Setup(e.to_string()))?;
        let batches = BatchedRelation::partition(
            &rel,
            config.num_batches,
            config.seed,
            config.partition_mode,
        );
        Ok(HdaDriver {
            mode: Mode::Nested(Box::new(NestedState {
                outer_plan,
                output_names: pq.output_names.clone(),
                views,
                catalog: catalog.clone(),
                stream_table,
                batches,
                next_batch: 0,
            })),
        })
    }

    /// Number of mini-batches.
    pub fn num_batches(&self) -> usize {
        match &self.mode {
            Mode::Flat(d) => d.num_batches(),
            Mode::Nested(s) => s.batches.num_batches(),
        }
    }

    /// Whether the nested (higher-order) path is active.
    pub fn is_nested(&self) -> bool {
        matches!(self.mode, Mode::Nested(_))
    }

    /// Process the next batch.
    pub fn step(&mut self) -> Option<Result<BatchReport, DriverError>> {
        match &mut self.mode {
            Mode::Flat(d) => d.step(),
            Mode::Nested(s) => s.step(),
        }
    }

    /// Run all remaining batches.
    pub fn run_to_completion(&mut self) -> Result<Vec<BatchReport>, DriverError> {
        let mut out = Vec::new();
        while let Some(r) = self.step() {
            out.push(r?);
        }
        Ok(out)
    }
}

impl NestedState {
    fn step(&mut self) -> Option<Result<BatchReport, DriverError>> {
        if self.next_batch >= self.batches.num_batches() {
            return None;
        }
        let i = self.next_batch;
        self.next_batch += 1;
        Some(self.run_batch(i))
    }

    fn run_batch(&mut self, i: usize) -> Result<BatchReport, DriverError> {
        let start = Span::start();
        let mut stats = BatchStats::default();
        let mut metrics = Metrics::new();
        let scale = self.batches.scale_after(i);

        // 1. Delta-maintain the inner views (the higher-order part).
        let view_span = Span::start();
        let mut delta_catalog = self.catalog.clone();
        delta_catalog.register(self.stream_table.clone(), self.batches.batch(i).clone());
        // Views that read only dimension tables are computed once (batch 0).
        for v in &mut self.views {
            if v.recompute {
                continue; // handled below against D_i
            }
            if v.reads_stream || i == 0 {
                let folded = v.fold_delta(&delta_catalog).map_err(DriverError::Engine)?;
                stats.shipped_bytes += folded * 64;
            }
        }
        view_span.stop(&mut metrics, "hda.view_fold_ns");

        // 2. Recompute the outer query from scratch on D_i — the cost that
        // grows linearly per batch (quadratic in total).
        let outer_span = Span::start();
        let prefix = self.batches.union_through(i);
        stats.recomputed_tuples += prefix.len();
        metrics.add("hda.prefix_rows", prefix.len() as u64);
        let mut outer_catalog = self.catalog.clone();
        let scaled = Relation::new(
            prefix.schema().clone(),
            prefix
                .rows()
                .iter()
                .map(|r| Row::with_mult(r.values.to_vec(), r.mult * scale))
                .collect(),
        );
        outer_catalog.register(self.stream_table.clone(), scaled.clone());
        for v in &mut self.views {
            if v.recompute {
                // Fallback: recompute the view on D_i.
                v.state.clear();
                let mut view_catalog = outer_catalog.clone();
                view_catalog.register(self.stream_table.clone(), scaled.clone());
                let folded = v.fold_delta(&view_catalog).map_err(DriverError::Engine)?;
                stats.recomputed_tuples += folded;
            }
            outer_catalog.register(v.table.clone(), v.materialize(scale));
        }
        let relation = execute(&self.outer_plan, &outer_catalog).map_err(DriverError::Engine)?;
        outer_span.stop(&mut metrics, "hda.outer_exec_ns");
        stats.shipped_bytes += relation.approx_bytes() + prefix.approx_bytes();

        let estimates = vec![Vec::new(); relation.len()];
        let result = QueryResult {
            relation,
            names: self.output_names.clone(),
            estimates,
        };
        let state_bytes_other: usize = self.views.iter().map(InnerView::state_bytes).sum();
        Ok(BatchReport {
            batch: i,
            result,
            stats,
            metrics,
            elapsed: start.elapsed(),
            fraction: self.batches.rows_through(i) as f64 / self.batches.total_rows().max(1) as f64,
            recovered: false,
            state_bytes_join: 0,
            state_bytes_other,
            self_time_ns: Vec::new(),
        })
    }
}

/// Recursively replace inner aggregates with scans of materialized views.
/// `on_spine` is true while we are still on the root Project/Select/Sort
/// chain (the top-level aggregate itself is delta-maintainable and stays).
fn extract_inner(
    plan: &Plan,
    on_spine: bool,
    views: &mut Vec<InnerView>,
    stream_table: &str,
) -> Plan {
    match plan {
        Plan::Aggregate {
            input,
            group_cols,
            aggs,
            schema,
            agg_id,
        } => {
            if on_spine {
                // The top-level aggregate: keep (its input may still contain
                // inner aggregates).
                return Plan::Aggregate {
                    input: Box::new(extract_inner(input, false, views, stream_table)),
                    group_cols: group_cols.clone(),
                    aggs: aggs.clone(),
                    schema: schema.clone(),
                    agg_id: *agg_id,
                };
            }
            // Inner aggregate → materialized view scan. First recurse so
            // deeper aggregates get their own views.
            let rewritten_input = extract_inner(input, false, views, stream_table);
            let references_view = rewritten_input
                .scanned_tables()
                .iter()
                .any(|t| t.starts_with("__hda_view_"));
            let table = format!("__hda_view_{}", views.len());
            let reads_stream = rewritten_input
                .scanned_tables()
                .iter()
                .any(|t| t.eq_ignore_ascii_case(stream_table));
            // View schema must be concretely typed for the outer plan.
            let fields: Vec<Field> = schema
                .fields()
                .iter()
                .map(|f| Field::new(f.name.clone(), normalize_type(f.data_type)))
                .collect();
            let view_schema = Schema::new(fields);
            views.push(InnerView {
                table: table.clone(),
                input: rewritten_input,
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                schema: view_schema.clone(),
                reads_stream,
                recompute: references_view,
                state: HashMap::new(),
            });
            Plan::Scan {
                table,
                schema: view_schema,
            }
        }
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(extract_inner(input, on_spine, views, stream_table)),
            predicate: predicate.clone(),
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(extract_inner(input, on_spine, views, stream_table)),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        Plan::Sort { input, keys, limit } => Plan::Sort {
            input: Box::new(extract_inner(input, on_spine, views, stream_table)),
            keys: keys.clone(),
            limit: *limit,
        },
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            schema,
        } => Plan::Join {
            left: Box::new(extract_inner(left, false, views, stream_table)),
            right: Box::new(extract_inner(right, false, views, stream_table)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            schema: schema.clone(),
        },
        Plan::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => Plan::SemiJoin {
            left: Box::new(extract_inner(left, false, views, stream_table)),
            right: Box::new(extract_inner(right, false, views, stream_table)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs
                .iter()
                .map(|p| extract_inner(p, on_spine, views, stream_table))
                .collect(),
        },
        Plan::Scan { .. } => plan.clone(),
    }
}

/// Clone expr-free type for view fields (aggregate outputs are numeric).
fn normalize_type(t: DataType) -> DataType {
    match t {
        DataType::Null | DataType::Ref => DataType::Float,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_relation::PartitionMode;
    use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};

    fn config(batches: usize) -> IolapConfig {
        let mut c = IolapConfig::with_batches(batches).trials(0).seed(5);
        c.partition_mode = PartitionMode::RowShuffle;
        c
    }

    #[test]
    fn flat_query_uses_classical_path() {
        let cat = conviva_catalog(300, 1);
        let reg = conviva_registry();
        let q = conviva_query("C3").unwrap();
        let d = HdaDriver::from_sql(q.sql, &cat, &reg, "sessions", config(4)).unwrap();
        assert!(!d.is_nested());
    }

    #[test]
    fn nested_query_uses_higher_order_path() {
        let cat = conviva_catalog(300, 1);
        let reg = conviva_registry();
        let q = conviva_query("SBI").unwrap();
        let d = HdaDriver::from_sql(q.sql, &cat, &reg, "sessions", config(4)).unwrap();
        assert!(d.is_nested());
    }

    #[test]
    fn hda_matches_batch_oracle_per_batch() {
        let cat = conviva_catalog(240, 2);
        let reg = conviva_registry();
        let q = conviva_query("SBI").unwrap();
        let pq = iolap_engine::plan_sql(q.sql, &cat, &reg).unwrap();
        let cfg = config(6);
        let stream = cat.get("sessions").unwrap();
        let batches = BatchedRelation::partition(&stream, 6, cfg.seed, cfg.partition_mode);
        let mut d = HdaDriver::from_plan(&pq, &cat, "sessions", cfg).unwrap();
        let mut i = 0;
        while let Some(step) = d.step() {
            let report = step.unwrap();
            let prefix = batches.union_through(i);
            let m = batches.scale_after(i);
            let mut oc = cat.clone();
            oc.register(
                "sessions",
                Relation::new(
                    prefix.schema().clone(),
                    prefix
                        .rows()
                        .iter()
                        .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                        .collect(),
                ),
            );
            let expected = execute(&pq.plan, &oc).unwrap();
            assert!(
                report.result.relation.approx_eq(&expected, 1e-6),
                "HDA batch {i} mismatch:\n{}\nvs\n{}",
                report.result.relation,
                expected
            );
            i += 1;
        }
    }

    #[test]
    fn hda_recomputation_grows_linearly() {
        let cat = conviva_catalog(400, 3);
        let reg = conviva_registry();
        let q = conviva_query("SBI").unwrap();
        let mut d = HdaDriver::from_sql(q.sql, &cat, &reg, "sessions", config(8)).unwrap();
        let reports = d.run_to_completion().unwrap();
        let first = reports[0].stats.recomputed_tuples;
        let last = reports.last().unwrap().stats.recomputed_tuples;
        assert!(
            last >= 6 * first,
            "HDA recompute must grow with D_i: first={first}, last={last}"
        );
    }
}
