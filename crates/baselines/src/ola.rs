//! Classic Online Aggregation (Hellerstein et al., [26]).
//!
//! OLA supports *flat SPJA queries only* (§1: "A limited form of incremental
//! query processing for simple SPJA queries was proposed in Online
//! Aggregation"); nested aggregate subqueries are outside its query class.
//! For the supported class its delta behaviour coincides with the classical
//! rules, so the implementation shares the flat path and rejects anything
//! nested.

use iolap_core::{BatchReport, DriverError, IolapConfig, IolapDriver};
use iolap_engine::{FunctionRegistry, Plan, PlannedQuery};
use iolap_relation::Catalog;

/// The OLA driver.
pub struct OlaDriver {
    inner: IolapDriver,
}

impl OlaDriver {
    /// Compile a flat SPJA query for OLA execution; errors on nested
    /// aggregate subqueries.
    pub fn from_sql(
        sql: &str,
        catalog: &Catalog,
        registry: &FunctionRegistry,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let pq = iolap_engine::plan_sql(sql, catalog, registry).map_err(DriverError::Plan)?;
        Self::from_plan(&pq, catalog, stream_table, config)
    }

    /// Compile a planned flat query.
    pub fn from_plan(
        pq: &PlannedQuery,
        catalog: &Catalog,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        if has_inner_aggregate(&pq.plan, true) {
            return Err(DriverError::Setup(
                "OLA supports only flat SPJA queries; nested aggregate subqueries require iOLAP"
                    .into(),
            ));
        }
        let inner = IolapDriver::from_plan(pq, catalog, stream_table, config)?;
        Ok(OlaDriver { inner })
    }

    /// Number of mini-batches.
    pub fn num_batches(&self) -> usize {
        self.inner.num_batches()
    }

    /// Process the next batch.
    pub fn step(&mut self) -> Option<Result<BatchReport, DriverError>> {
        self.inner.step()
    }

    /// Run all remaining batches.
    pub fn run_to_completion(&mut self) -> Result<Vec<BatchReport>, DriverError> {
        self.inner.run_to_completion()
    }
}

/// True when an Aggregate appears off the root Project/Select/Sort spine.
fn has_inner_aggregate(plan: &Plan, on_spine: bool) -> bool {
    match plan {
        Plan::Aggregate { input, .. } => {
            if on_spine {
                has_inner_aggregate(input, false)
            } else {
                true
            }
        }
        Plan::Select { input, .. } | Plan::Sort { input, .. } => {
            has_inner_aggregate(input, on_spine)
        }
        Plan::Project { input, .. } => has_inner_aggregate(input, on_spine),
        Plan::Join { left, right, .. } => {
            has_inner_aggregate(left, false) || has_inner_aggregate(right, false)
        }
        Plan::SemiJoin { left, right, .. } => {
            has_inner_aggregate(left, false) || has_inner_aggregate(right, false)
        }
        Plan::Union { inputs } => inputs.iter().any(|p| has_inner_aggregate(p, on_spine)),
        Plan::Scan { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};

    #[test]
    fn ola_accepts_flat() {
        let cat = conviva_catalog(200, 1);
        let reg = conviva_registry();
        let q = conviva_query("C3").unwrap();
        let mut d = OlaDriver::from_sql(
            q.sql,
            &cat,
            &reg,
            "sessions",
            IolapConfig::with_batches(4).trials(10),
        )
        .unwrap();
        let reports = d.run_to_completion().unwrap();
        assert_eq!(reports.len(), 4);
    }

    #[test]
    fn ola_rejects_nested() {
        let cat = conviva_catalog(200, 1);
        let reg = conviva_registry();
        let q = conviva_query("SBI").unwrap();
        let err = OlaDriver::from_sql(q.sql, &cat, &reg, "sessions", IolapConfig::with_batches(4))
            .err()
            .expect("must reject nested");
        assert!(matches!(err, DriverError::Setup(_)));
    }

    #[test]
    fn ola_union_with_aggregates_is_flat_enough() {
        // Top-level aggregates in union branches are still "flat".
        let cat = conviva_catalog(200, 1);
        let reg = conviva_registry();
        let sql = "SELECT AVG(play_time) FROM sessions WHERE cdn = 'cdn_alpha'";
        assert!(
            OlaDriver::from_sql(sql, &cat, &reg, "sessions", IolapConfig::with_batches(3)).is_ok()
        );
    }
}
