//! Cross-engine agreement tests: for any batch prefix, OLA, HDA, and iOLAP
//! must produce the same partial results on the queries all three support,
//! and all must converge to the batch baseline's exact answer.

use iolap_baselines::{run_baseline, HdaDriver, OlaDriver};
use iolap_core::{IolapConfig, IolapDriver};
use iolap_relation::PartitionMode;
use iolap_workloads::{conviva_catalog, conviva_query, conviva_registry};

fn config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(10).seed(31);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

#[test]
fn ola_hda_iolap_agree_per_batch_on_flat_queries() {
    let cat = conviva_catalog(500, 7);
    let registry = conviva_registry();
    for id in ["C3", "C5", "C11", "C12"] {
        let q = conviva_query(id).unwrap();
        let mut ola = OlaDriver::from_sql(q.sql, &cat, &registry, "sessions", config(5)).unwrap();
        let mut hda = HdaDriver::from_sql(q.sql, &cat, &registry, "sessions", config(5)).unwrap();
        let mut iolap =
            IolapDriver::from_sql(q.sql, &cat, &registry, "sessions", config(5)).unwrap();
        loop {
            match (ola.step(), hda.step(), iolap.step()) {
                (Some(a), Some(b), Some(c)) => {
                    let (a, b, c) = (a.unwrap(), b.unwrap(), c.unwrap());
                    assert!(
                        a.result.relation.approx_eq(&b.result.relation, 1e-6),
                        "{id} batch {}: OLA != HDA",
                        a.batch
                    );
                    assert!(
                        a.result.relation.approx_eq(&c.result.relation, 1e-6),
                        "{id} batch {}: OLA != iOLAP",
                        a.batch
                    );
                }
                (None, None, None) => break,
                _ => panic!("{id}: drivers disagree on batch count"),
            }
        }
    }
}

#[test]
fn all_engines_converge_to_exact_answer() {
    let cat = conviva_catalog(400, 8);
    let registry = conviva_registry();
    for id in ["C3", "SBI", "C4", "C9"] {
        let q = conviva_query(id).unwrap();
        let exact = run_baseline(q.sql, &cat, &registry).unwrap().relation;
        let mut iolap =
            IolapDriver::from_sql(q.sql, &cat, &registry, "sessions", config(4)).unwrap();
        let reports = iolap.run_to_completion().unwrap();
        assert!(
            reports
                .last()
                .unwrap()
                .result
                .relation
                .approx_eq(&exact, 1e-6),
            "{id}: iOLAP final != exact"
        );
        let mut hda = HdaDriver::from_sql(q.sql, &cat, &registry, "sessions", config(4)).unwrap();
        let hreports = hda.run_to_completion().unwrap();
        assert!(
            hreports
                .last()
                .unwrap()
                .result
                .relation
                .approx_eq(&exact, 1e-6),
            "{id}: HDA final != exact"
        );
    }
}

#[test]
fn hda_state_stays_small_for_maintained_views() {
    // The higher-order views are sketches: their state must not grow with
    // the data (only with group counts).
    let cat = conviva_catalog(1000, 9);
    let registry = conviva_registry();
    let q = conviva_query("SBI").unwrap();
    let mut hda = HdaDriver::from_sql(q.sql, &cat, &registry, "sessions", config(8)).unwrap();
    let reports = hda.run_to_completion().unwrap();
    let first = reports[0].state_bytes_other.max(1);
    let last = reports.last().unwrap().state_bytes_other.max(1);
    assert!(
        last <= first * 2,
        "global-aggregate view state must not grow: {first} -> {last}"
    );
}
