//! Operator-state behaviour tests, pinned directly to the §4.2/§5.2 rules:
//! the join drops a side's accumulation when the other side is exhausted
//! (SBI's fact side is never saved), select states shrink as ranges
//! tighten, and semi-join pending rows resolve on certain matches.
//!
//! These drive full pipelines through the driver and inspect the reported
//! state sizes and recompute counts — the same instrumentation the Fig 9(b)
//! experiments use.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::FunctionRegistry;
use iolap_relation::{Catalog, DataType, PartitionMode, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sessions_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
        ("cdn", DataType::Str),
    ]);
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 60.0),
                Value::Float(rng.gen::<f64>() * 600.0),
                Value::str(["a", "b", "c"][i % 3]),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("sessions", Relation::from_values(schema, rows));
    c.register(
        "cdns",
        Relation::from_values(
            Schema::from_pairs(&[("name", DataType::Str), ("tier", DataType::Int)]),
            vec![
                vec!["a".into(), 1.into()],
                vec!["b".into(), 1.into()],
                vec!["c".into(), 2.into()],
            ],
        ),
    );
    c
}

fn config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(16).seed(77);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

#[test]
fn sbi_join_never_accumulates_the_fact_side() {
    // §4.2 JOIN rule: the global inner aggregate emits its single group and
    // is then exhausted, so the fact side of the cross join must not be
    // retained. Join state stays tiny and flat.
    let cat = sessions_catalog(1200, 1);
    let registry = FunctionRegistry::with_builtins();
    let mut d = IolapDriver::from_sql(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        &registry,
        "sessions",
        config(8),
    )
    .unwrap();
    let reports = d.run_to_completion().unwrap();
    let max_join_state = reports.iter().map(|r| r.state_bytes_join).max().unwrap();
    let data_bytes = cat.get("sessions").unwrap().approx_bytes();
    assert!(
        max_join_state * 10 < data_bytes,
        "fact side leaked into join state: {max_join_state} vs data {data_bytes}"
    );
}

#[test]
fn grouped_inner_aggregate_keeps_fact_side_while_groups_may_appear() {
    // A per-cdn correlated subquery: the decorrelating join's right side is
    // a grouped aggregate that can emit new groups any batch, so the fact
    // side must be retained — the paper's "snowflake" join-state case
    // (Fig 9(b)).
    let cat = sessions_catalog(1200, 2);
    let registry = FunctionRegistry::with_builtins();
    let mut d = IolapDriver::from_sql(
        "SELECT COUNT(*) FROM sessions s \
         WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                WHERE i.cdn = s.cdn)",
        &cat,
        &registry,
        "sessions",
        config(8),
    )
    .unwrap();
    let reports = d.run_to_completion().unwrap();
    // On the final batch the stream is exhausted and the state is dropped;
    // inspect the second-to-last batch.
    let grown = reports[reports.len() - 2].state_bytes_join;
    let first = reports[0].state_bytes_join.max(1);
    assert!(
        grown > 4 * first,
        "grouped-aggregate join must accumulate the probe side: {first} -> {grown}"
    );
    assert_eq!(
        reports.last().unwrap().state_bytes_join,
        0,
        "exhausted stream must release the join state"
    );
}

#[test]
fn dimension_join_state_is_bounded_by_the_dimension() {
    // Fact ⋈ dimension: only the 3-row dimension table needs saving
    // (§4.2: "we only need to keep the smaller dimension table").
    let cat = sessions_catalog(1200, 3);
    let registry = FunctionRegistry::with_builtins();
    let mut d = IolapDriver::from_sql(
        "SELECT c.tier, SUM(s.play_time) FROM sessions s \
         JOIN cdns c ON s.cdn = c.name GROUP BY c.tier",
        &cat,
        &registry,
        "sessions",
        config(6),
    )
    .unwrap();
    let reports = d.run_to_completion().unwrap();
    let max_join_state = reports.iter().map(|r| r.state_bytes_join).max().unwrap();
    // Generous bound: a handful of KB, nowhere near the ~100 KB fact table.
    assert!(
        max_join_state < 4096,
        "dimension join state too large: {max_join_state}"
    );
}

#[test]
fn nondeterministic_set_shrinks_relative_to_data() {
    // §5.2: as variation ranges tighten, a growing share of each batch is
    // classified near-deterministically. The recompute fraction
    // (recomputed / rows seen) must fall from the early batches to the
    // late ones.
    let cat = sessions_catalog(3000, 4);
    let registry = FunctionRegistry::with_builtins();
    let mut d = IolapDriver::from_sql(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        &registry,
        "sessions",
        config(12),
    )
    .unwrap();
    let reports = d.run_to_completion().unwrap();
    let frac =
        |r: &iolap_core::BatchReport| r.stats.recomputed_tuples as f64 / (r.fraction * 3000.0);
    let early = frac(&reports[1]);
    let late = frac(reports.last().unwrap());
    assert!(
        late < early,
        "recompute fraction should fall: early {early:.3} late {late:.3}"
    );
}

#[test]
fn flat_queries_recompute_nothing() {
    // Deterministic predicates have no non-deterministic set at all —
    // the iOLAP == classical-delta-rules case (§8.2).
    let cat = sessions_catalog(900, 5);
    let registry = FunctionRegistry::with_builtins();
    let mut d = IolapDriver::from_sql(
        "SELECT cdn, AVG(play_time) FROM sessions WHERE buffer_time < 30 GROUP BY cdn",
        &cat,
        &registry,
        "sessions",
        config(6),
    )
    .unwrap();
    for r in d.run_to_completion().unwrap() {
        assert_eq!(r.stats.recomputed_tuples, 0, "batch {}", r.batch);
        assert!(!r.recovered);
    }
}

#[test]
fn semi_join_pending_rows_resolve_on_certain_membership() {
    // IN-subquery over a HAVING-filtered set: early rows are pending while
    // group membership is uncertain; they must be emitted exactly once when
    // membership becomes certain (no duplicates in the final exact answer).
    let cat = sessions_catalog(900, 6);
    let registry = FunctionRegistry::with_builtins();
    let sql = "SELECT COUNT(*) FROM sessions WHERE cdn IN \
               (SELECT cdn FROM sessions GROUP BY cdn HAVING COUNT(*) > 10)";
    let mut d = IolapDriver::from_sql(sql, &cat, &registry, "sessions", config(6)).unwrap();
    let reports = d.run_to_completion().unwrap();
    // Every cdn has ~300 rows, so all pass the HAVING in the exact answer.
    let final_count = reports.last().unwrap().result.relation.rows()[0].values[0]
        .as_f64()
        .unwrap();
    assert!((final_count - 900.0).abs() < 1e-6, "got {final_count}");
}

#[test]
fn block_shuffle_partitioning_end_to_end() {
    // The paper's default block-wise randomness through the full driver.
    let cat = sessions_catalog(800, 7);
    let registry = FunctionRegistry::with_builtins();
    let mut cfg = config(8);
    cfg.partition_mode = PartitionMode::BlockShuffle { block_rows: 25 };
    let mut d = IolapDriver::from_sql(
        "SELECT AVG(play_time) FROM sessions",
        &cat,
        &registry,
        "sessions",
        cfg,
    )
    .unwrap();
    let reports = d.run_to_completion().unwrap();
    assert_eq!(reports.len(), 8);
    // Final batch is exact.
    let exact: f64 = cat
        .get("sessions")
        .unwrap()
        .rows()
        .iter()
        .map(|r| r.values[2].as_f64().unwrap())
        .sum::<f64>()
        / 800.0;
    let got = reports.last().unwrap().result.relation.rows()[0].values[0]
        .as_f64()
        .unwrap();
    assert!((got - exact).abs() < 1e-6);
}
