//! Theorem 1 equivalence tests: "at batch i, the algorithm delivers the
//! same query result as Q(D_i)" — the iOLAP partial result after every
//! mini-batch must equal the batch engine run on the accumulated prefix
//! `D_i`, with streamed rows weighted by `m_i = |D|/|D_i|` (§2).
//!
//! These tests are the correctness anchor of the whole reproduction: they
//! exercise scan → join → select → aggregate pipelines, uncertain-predicate
//! partitioning, lineage thunks, semi-joins, HAVING, group-by, and the
//! failure-recovery path, always against the independent batch executor.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{Catalog, DataType, PartitionMode, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a synthetic sessions table.
fn sessions_table(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let cities = ["SF", "LA", "NYC", "SEA"];
    let schema = Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
        ("city", DataType::Str),
    ]);
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                // Un-rounded: integer-valued data can sit exactly on a
                // running-average predicate boundary, where incremental vs
                // single-pass float summation order legitimately differs in
                // the last ulp.
                Value::Float(rng.gen::<f64>() * 60.0),
                Value::Float(rng.gen::<f64>() * 600.0),
                Value::str(cities[rng.gen_range(0..cities.len())]),
            ]
        })
        .collect();
    Relation::from_values(schema, rows)
}

fn catalog(n: usize, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.register("sessions", sessions_table(n, seed));
    c.register(
        "cities",
        Relation::from_values(
            Schema::from_pairs(&[("name", DataType::Str), ("state", DataType::Str)]),
            vec![
                vec!["SF".into(), "CA".into()],
                vec!["LA".into(), "CA".into()],
                vec!["NYC".into(), "NY".into()],
                vec!["SEA".into(), "WA".into()],
            ],
        ),
    );
    c
}

/// Run `sql` incrementally and assert per-batch equivalence with the batch
/// engine on the scaled prefix. Returns the per-batch recomputed-tuple
/// counts for behavioural assertions.
fn assert_theorem1(sql: &str, cat: &Catalog, config: IolapConfig) -> Vec<usize> {
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(sql, cat, &registry).expect("plan");
    let mut driver = IolapDriver::from_plan(&pq, cat, "sessions", config.clone()).expect("driver");

    // Reconstruct the same partition to know each prefix D_i.
    let stream = cat.get("sessions").unwrap();
    let batches = iolap_relation::BatchedRelation::partition(
        &stream,
        config.num_batches,
        config.seed,
        config.partition_mode,
    );

    let mut recomputed = Vec::new();
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        recomputed.push(report.stats.recomputed_tuples);

        // Oracle: batch engine over D_i with multiplicity m_i on streamed
        // rows.
        let prefix = batches.union_through(i);
        let m = batches.scale_after(i);
        let mut oracle_cat = cat.clone();
        let scaled = Relation::new(
            prefix.schema().clone(),
            prefix
                .rows()
                .iter()
                .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                .collect(),
        );
        oracle_cat.register("sessions", scaled);
        let expected = execute(&pq.plan, &oracle_cat).expect("oracle");

        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch for {sql}\n== iOLAP ==\n{}\n== oracle ==\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    assert_eq!(i, config.num_batches);
    recomputed
}

fn default_config(batches: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches).trials(30).seed(11);
    c.partition_mode = PartitionMode::RowShuffle;
    c
}

#[test]
fn global_average() {
    let cat = catalog(200, 1);
    assert_theorem1(
        "SELECT AVG(play_time) FROM sessions",
        &cat,
        default_config(8),
    );
}

#[test]
fn sum_and_count_scale_by_m() {
    let cat = catalog(150, 2);
    assert_theorem1(
        "SELECT SUM(play_time), COUNT(*) FROM sessions",
        &cat,
        default_config(6),
    );
}

#[test]
fn group_by_city() {
    let cat = catalog(200, 3);
    assert_theorem1(
        "SELECT city, SUM(play_time), COUNT(*) FROM sessions GROUP BY city",
        &cat,
        default_config(7),
    );
}

#[test]
fn filtered_aggregate() {
    let cat = catalog(200, 4);
    assert_theorem1(
        "SELECT AVG(play_time) FROM sessions WHERE buffer_time < 30",
        &cat,
        default_config(5),
    );
}

#[test]
fn sbi_nested_subquery() {
    let cat = catalog(250, 5);
    let recomputed = assert_theorem1(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        default_config(10),
    );
    // Tuple-uncertainty partitioning: the non-deterministic set should
    // shrink relative to the data processed — by the last batches the
    // recomputation must be far below the accumulated input size.
    let last = *recomputed.last().unwrap();
    assert!(
        last < 250,
        "recomputation should stay below the full input ({recomputed:?})"
    );
}

#[test]
fn sbi_without_optimizations_still_correct() {
    // The HDA-equivalent configuration (both optimizations off) must be
    // slower but still exact — Theorem 1 is about correctness, not cost.
    let cat = catalog(150, 6);
    let config = default_config(6).optimizations(false, false);
    assert_theorem1(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        config,
    );
}

#[test]
fn correlated_subquery_per_city() {
    let cat = catalog(200, 7);
    assert_theorem1(
        "SELECT COUNT(*) FROM sessions s \
         WHERE s.buffer_time > (SELECT AVG(i.buffer_time) FROM sessions i \
                                WHERE i.city = s.city)",
        &cat,
        default_config(8),
    );
}

#[test]
fn join_with_dimension_table() {
    let cat = catalog(200, 8);
    assert_theorem1(
        "SELECT c.state, SUM(s.play_time) FROM sessions s \
         JOIN cities c ON s.city = c.name GROUP BY c.state",
        &cat,
        default_config(6),
    );
}

#[test]
fn semi_join_with_having_subquery() {
    // Q18-shaped: outer rows filtered by membership in an uncertain
    // HAVING-filtered group set.
    let cat = catalog(250, 9);
    assert_theorem1(
        "SELECT SUM(play_time) FROM sessions WHERE city IN \
         (SELECT city FROM sessions GROUP BY city HAVING SUM(play_time) > 5000)",
        &cat,
        default_config(8),
    );
}

#[test]
fn scaled_computed_subquery_boundary() {
    // Q17-shaped: computation over the uncertain aggregate crosses the
    // lineage-block boundary as a folded thunk.
    let cat = catalog(250, 10);
    assert_theorem1(
        "SELECT SUM(s.play_time) FROM sessions s \
         WHERE s.buffer_time < (SELECT 0.5 * AVG(i.buffer_time) FROM sessions i \
                                WHERE i.city = s.city)",
        &cat,
        default_config(8),
    );
}

#[test]
fn having_with_global_subquery() {
    let cat = catalog(200, 11);
    assert_theorem1(
        "SELECT city, AVG(play_time) FROM sessions GROUP BY city \
         HAVING AVG(play_time) > (SELECT AVG(play_time) FROM sessions)",
        &cat,
        default_config(8),
    );
}

#[test]
fn plain_spj_rows_scale() {
    let cat = catalog(100, 12);
    assert_theorem1(
        "SELECT session_id, play_time FROM sessions WHERE buffer_time < 10",
        &cat,
        default_config(5),
    );
}

#[test]
fn order_by_limit_presentation() {
    let cat = catalog(100, 13);
    let registry = FunctionRegistry::with_builtins();
    let sql = "SELECT city, SUM(play_time) AS total FROM sessions \
               GROUP BY city ORDER BY total DESC LIMIT 2";
    let pq = plan_sql(sql, &cat, &registry).unwrap();
    let mut driver = IolapDriver::from_plan(&pq, &cat, "sessions", default_config(4)).unwrap();
    let reports = driver.run_to_completion().unwrap();
    let final_rel = &reports.last().unwrap().result.relation;
    assert_eq!(final_rel.len(), 2);
    // Final batch must equal the exact batch answer.
    let expected = execute(&pq.plan, &cat).unwrap();
    assert!(final_rel.approx_eq(&expected, 1e-6));
    // Descending order by total.
    let a = final_rel.rows()[0].values[1].as_f64().unwrap();
    let b = final_rel.rows()[1].values[1].as_f64().unwrap();
    assert!(a >= b);
}

#[test]
fn error_estimates_shrink() {
    let cat = catalog(400, 14);
    let registry = FunctionRegistry::with_builtins();
    let sql = "SELECT AVG(play_time) FROM sessions";
    let mut driver = IolapDriver::from_sql(
        sql,
        &cat,
        &registry,
        "sessions",
        default_config(10).trials(60),
    )
    .unwrap();
    let reports = driver.run_to_completion().unwrap();
    let first = reports[0].result.max_relative_std().unwrap();
    let last = reports[reports.len() - 2]
        .result
        .max_relative_std()
        .unwrap();
    assert!(
        last < first,
        "relative stddev should shrink: first={first} last={last}"
    );
}

#[test]
fn union_all_branches() {
    let cat = catalog(120, 15);
    assert_theorem1(
        "SELECT AVG(play_time) FROM sessions WHERE city = 'SF' \
         UNION ALL SELECT AVG(play_time) FROM sessions WHERE city = 'LA'",
        &cat,
        default_config(5),
    );
}

#[test]
fn zero_slack_recovers_and_stays_correct() {
    // Slack 0 makes range failures likely (§8.4, Fig 9(d)); recovery must
    // preserve exactness at every batch.
    let cat = catalog(300, 16);
    let config = default_config(12).slack(0.0);
    assert_theorem1(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        &cat,
        config,
    );
}

#[test]
fn udf_in_predicate() {
    let cat = catalog(150, 17);
    assert_theorem1(
        "SELECT SUM(SQRT(play_time)) FROM sessions WHERE ABS(buffer_time - 30) < 15",
        &cat,
        default_config(5),
    );
}

#[test]
fn stratified_partitioning_stays_exact_and_covers_groups() {
    // §9 extension: stratified batching on the group column. Every batch
    // then contains every city, so grouped partial results list all groups
    // from batch 0 — and Theorem 1 must still hold.
    let cat = catalog(240, 18);
    let mut config = default_config(6);
    config.partition_mode = PartitionMode::StratifiedShuffle { column: 3 }; // city
    assert_theorem1(
        "SELECT city, AVG(play_time), COUNT(*) FROM sessions GROUP BY city",
        &cat,
        config.clone(),
    );
    // Coverage claim: the first partial result already has all 4 cities.
    let registry = FunctionRegistry::with_builtins();
    let mut driver = IolapDriver::from_sql(
        "SELECT city, COUNT(*) FROM sessions GROUP BY city",
        &cat,
        &registry,
        "sessions",
        config,
    )
    .unwrap();
    let first = driver.step().unwrap().unwrap();
    assert_eq!(first.result.relation.len(), 4);
}

#[test]
fn parallel_folding_matches_sequential() {
    // The crossbeam fold splits rows across workers and merges partial
    // sketches; results must match the sequential fold (within float
    // summation-order tolerance) and stay Theorem-1 exact.
    let cat = catalog(400, 19);
    let sql = "SELECT city, SUM(play_time), AVG(buffer_time), COUNT(*) \
               FROM sessions GROUP BY city";
    assert_theorem1(sql, &cat, default_config(6).parallelism(4));

    let registry = FunctionRegistry::with_builtins();
    let run = |workers: usize| {
        let mut d = IolapDriver::from_sql(
            sql,
            &cat,
            &registry,
            "sessions",
            default_config(6).parallelism(workers),
        )
        .unwrap();
        d.run_to_completion().unwrap()
    };
    let seq = run(1);
    let par = run(4);
    for (a, b) in seq.iter().zip(par.iter()) {
        assert!(
            a.result.relation.approx_eq(&b.result.relation, 1e-9),
            "batch {} differs between 1 and 4 workers",
            a.batch
        );
    }
}
