//! Failure-injection tests for the §5.1 recovery machinery: zero slack
//! forces range-integrity failures; correctness must survive checkpoint
//! intervals, quarantine, and repeated replays.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{
    BatchedRelation, Catalog, DataType, PartitionMode, Relation, Row, Schema, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deliberately drifting dataset: later rows have systematically larger
/// values, so running aggregates move and early ranges break. Values are
/// kept un-rounded: integer-valued data can collide *exactly* with a
/// running average at a predicate boundary, where incremental and
/// single-pass float summation orders legitimately disagree in the last
/// ulp and flip the boundary row (Theorem 1 is a statement over reals).
fn drifting_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("g", DataType::Str),
    ]);
    let rows = (0..n)
        .map(|i| {
            let drift = i as f64 / n as f64 * 40.0;
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 30.0 + drift),
                Value::Float(rng.gen::<f64>() * 100.0),
                Value::str(["p", "q", "r"][i % 3]),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

const NESTED_SQL: &str = "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)";

fn run_and_check(cat: &Catalog, config: IolapConfig) -> (usize, usize) {
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, cat, &registry).unwrap();
    let stream = cat.get("t").unwrap();
    let parts = BatchedRelation::partition(
        &stream,
        config.num_batches,
        config.seed,
        // Sequential keeps the drift in arrival order — worst case for
        // range stability.
        config.partition_mode,
    );
    let mut driver = IolapDriver::from_plan(&pq, cat, "t", config.clone()).unwrap();
    let mut recoveries = 0;
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        if report.recovered {
            recoveries += 1;
        }
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "t",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch after {recoveries} recoveries\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    (recoveries, driver.total_failures())
}

fn sequential_config(batches: usize, slack: f64, checkpoint: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches)
        .trials(16)
        .seed(5)
        .slack(slack);
    c.partition_mode = PartitionMode::Sequential;
    c.checkpoint_interval = checkpoint;
    c
}

#[test]
fn drifting_data_forces_recovery_and_stays_exact() {
    let cat = drifting_catalog(300, 1);
    let (recoveries, failures) = run_and_check(&cat, sequential_config(10, 0.0, 1));
    assert!(
        recoveries > 0,
        "zero slack on drifting data must fail at least once"
    );
    assert_eq!(recoveries, failures);
}

#[test]
fn sparse_checkpoints_still_recover_exactly() {
    // Checkpoint every 3 batches: recovery must fall back to an older
    // checkpoint and replay a longer combined delta, still exactly.
    let cat = drifting_catalog(300, 2);
    let (recoveries, _) = run_and_check(&cat, sequential_config(10, 0.0, 3));
    assert!(recoveries > 0);
}

#[test]
fn no_checkpoints_beyond_initial_still_recover() {
    // Interval larger than the batch count: only the initial checkpoint
    // exists; every recovery replays from scratch. Slow but exact.
    let cat = drifting_catalog(200, 3);
    let (recoveries, _) = run_and_check(&cat, sequential_config(8, 0.0, 100));
    assert!(recoveries > 0);
}

#[test]
fn quarantine_bounds_recovery_thrash() {
    // A first failure buys a replay and a fresh range (the attribute is
    // re-admitted for pruning); a second failure quarantines it for good.
    // So on a single-uncertain-attribute query the recovery count is ≤ 2
    // even on adversarial drift.
    let cat = drifting_catalog(400, 4);
    let (recoveries, _) = run_and_check(&cat, sequential_config(12, 0.0, 1));
    assert!(
        recoveries <= 2,
        "quarantine must stop repeated failures of the same attribute: {recoveries}"
    );
}

#[test]
fn generous_slack_avoids_recovery_on_stationary_data() {
    // Shuffled (stationary) data with the paper's slack = 2: recoveries
    // should be rare to absent (§8.4).
    let mut cat = Catalog::new();
    let mut rng = StdRng::seed_from_u64(9);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("g", DataType::Str),
    ]);
    let rows = (0..400)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 50.0),
                Value::Float(rng.gen::<f64>() * 100.0),
                Value::str(["p", "q"][i % 2]),
            ]
        })
        .collect();
    cat.register("t", Relation::from_values(schema, rows));
    let mut config = sequential_config(10, 2.0, 1);
    config.partition_mode = PartitionMode::RowShuffle;
    let (recoveries, _) = run_and_check(&cat, config);
    // The bootstrap envelope is a max over trials, so a single tail draw
    // can still poke past the merged range at one batch — "rare", not
    // impossible. Anything systematic (recoveries scaling with batches)
    // would trip this bound.
    assert!(
        recoveries <= 1,
        "slack 2 on shuffled data should almost never fail: {recoveries}"
    );
}

#[test]
fn recovery_preserves_error_estimates() {
    let cat = drifting_catalog(300, 6);
    let registry = FunctionRegistry::with_builtins();
    let mut driver = IolapDriver::from_sql(
        NESTED_SQL,
        &cat,
        &registry,
        "t",
        sequential_config(10, 0.0, 1),
    )
    .unwrap();
    let reports = driver.run_to_completion().unwrap();
    // Every batch, including recovered ones, carries a usable estimate.
    for r in &reports {
        assert_eq!(r.result.relation.len(), 1);
        assert!(
            r.result.estimates[0][0].is_some(),
            "estimate missing at batch {}",
            r.batch
        );
    }
}
