//! Property tests on the uncertainty machinery itself:
//!
//! * interval soundness — the interval computed for an expression must
//!   contain every value the expression actually takes across trial modes;
//! * classification soundness — a near-deterministic decision must agree
//!   with the concrete evaluation at every trial value in range.

use iolap_core::{classify, interval_of, AggRegistry, Decision, IntervalValue};
use iolap_engine::{ArithOp, CmpOp, EvalContext, Expr, RefMode};
use iolap_relation::{AggRef, Row, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn key() -> Arc<[Value]> {
    Arc::from(Vec::<Value>::new())
}

fn registry_with(trials: &[f64], slack: f64) -> AggRegistry {
    let mut reg = AggRegistry::new();
    let mean = trials.iter().sum::<f64>() / trials.len().max(1) as f64;
    reg.publish(
        0,
        key(),
        vec![Value::Float(mean)],
        vec![Arc::from(trials.to_vec())],
        slack,
    );
    reg
}

fn aref() -> Value {
    Value::Ref(AggRef {
        agg: 0,
        column: 0,
        key: key(),
    })
}

/// Expressions over [deterministic col 0, uncertain ref col 1].
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Col(0)),
        Just(Expr::Col(1)),
        (-50.0f64..50.0).prop_map(|x| Expr::Lit(Value::Float(x))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul),],
        )
            .prop_map(|(l, r, op)| Expr::Arith {
                op,
                left: Box::new(l),
                right: Box::new(r),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Interval soundness: for every trial t, evaluating the expression in
    /// Trial(t) mode yields a value inside the computed interval.
    #[test]
    fn interval_contains_all_trial_values(
        trials in prop::collection::vec(-100.0f64..100.0, 1..12),
        det in -100.0f64..100.0,
        expr in expr_strategy(),
    ) {
        let reg = registry_with(&trials, 0.0);
        let row = Row {
            values: vec![Value::Float(det), aref()].into(),
            mult: 1.0,
        };
        let iv = interval_of(&expr, &row, &reg);
        let range = match iv {
            IntervalValue::Point(ref v) => {
                iolap_bootstrap::VariationRange::point(v.as_f64().unwrap_or(f64::NAN))
            }
            IntervalValue::Range(r) => r,
            IntervalValue::Unknown => return Ok(()), // conservative: fine
        };
        let ctx = EvalContext::with_resolver(&reg);
        for t in 0..trials.len() {
            let v = expr
                .eval(&row, &ctx.with_mode(RefMode::Trial(t)))
                .ok()
                .and_then(|x| x.as_f64());
            if let Some(v) = v {
                prop_assert!(
                    range.contains(v) || (v - range.lo).abs() < 1e-6 || (v - range.hi).abs() < 1e-6,
                    "trial value {v} outside interval [{}, {}] for {expr:?}",
                    range.lo,
                    range.hi
                );
            }
        }
        // The current value is also covered (it is included in the tracked
        // envelope at publish time).
        let cur = expr.eval(&row, &ctx).ok().and_then(|x| x.as_f64());
        if let Some(cur) = cur {
            prop_assert!(range.contains(cur) || (cur - range.lo).abs() < 1e-6
                || (cur - range.hi).abs() < 1e-6);
        }
    }

    /// Classification soundness: AlwaysTrue/AlwaysFalse decisions agree
    /// with the concrete predicate evaluation in every trial mode and at
    /// the current value.
    #[test]
    fn decisive_classification_agrees_with_all_trials(
        trials in prop::collection::vec(-100.0f64..100.0, 1..12),
        det in -100.0f64..100.0,
        lhs in expr_strategy(),
        rhs in expr_strategy(),
        op in prop_oneof![
            Just(CmpOp::Lt), Just(CmpOp::Le), Just(CmpOp::Gt),
            Just(CmpOp::Ge), Just(CmpOp::Eq), Just(CmpOp::Neq)
        ],
    ) {
        let reg = registry_with(&trials, 0.0);
        let row = Row {
            values: vec![Value::Float(det), aref()].into(),
            mult: 1.0,
        };
        let pred = Expr::Cmp {
            op,
            left: Box::new(lhs),
            right: Box::new(rhs),
        };
        let decision = classify(&pred, &row, &reg);
        if decision == Decision::Uncertain {
            return Ok(()); // no claim made
        }
        let want = decision == Decision::AlwaysTrue;
        let ctx = EvalContext::with_resolver(&reg);
        for t in 0..trials.len() {
            if let Ok(b) = pred.eval_predicate(&row, &ctx.with_mode(RefMode::Trial(t))) {
                prop_assert_eq!(
                    b, want,
                    "decision {:?} contradicted by trial {} for {:?}",
                    decision, t, &pred
                );
            }
        }
        if let Ok(b) = pred.eval_predicate(&row, &ctx) {
            prop_assert_eq!(b, want, "decision contradicted by current value");
        }
    }
}
