//! Regression test: a panicking UDAF inside the *parallel* sketch fold must
//! surface as a driver error, not abort the process. Before the fix,
//! `fold_rows` joined its workers with `.unwrap()` / `.expect(...)`, so a
//! poisoned accumulator took the whole process down.

use iolap_core::{DriverError, IolapConfig, IolapDriver};
use iolap_engine::aggregate::{Accumulator, Udaf};
use iolap_engine::{EngineError, FunctionRegistry};
use iolap_relation::{Catalog, DataType, Relation, Schema, Value};
use std::sync::Arc;

/// An accumulator that panics the moment it sees a value — the stand-in for
/// any UDAF with a latent bug (overflow, failed invariant, poisoned state).
#[derive(Clone, Debug, Default)]
struct PoisonAcc;

impl Accumulator for PoisonAcc {
    fn update(&mut self, _v: &Value, _weight: f64) {
        panic!("poisoned UDAF: invariant violated");
    }
    fn merge(&mut self, _other: &dyn Accumulator) -> Result<(), EngineError> {
        Ok(())
    }
    fn output(&self, _scale: f64) -> Value {
        Value::Null
    }
    fn boxed_clone(&self) -> Box<dyn Accumulator> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct Poison;

impl Udaf for Poison {
    fn name(&self) -> &str {
        "POISON"
    }
    fn accumulator(&self) -> Box<dyn Accumulator> {
        Box::new(PoisonAcc)
    }
}

fn catalog(n: usize) -> Catalog {
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]);
    let rows = (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64)])
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

#[test]
fn panicking_udaf_in_parallel_fold_is_an_error_not_an_abort() {
    // Workers print panic traces by default; silence them for this binary —
    // the panics are the point of the test.
    std::panic::set_hook(Box::new(|_| {}));

    let cat = catalog(64);
    let mut registry = FunctionRegistry::with_builtins();
    registry.register_udaf(Arc::new(Poison));

    // One 64-row batch with 4 workers: 64 >= 4 * workers, so the fold takes
    // the parallel path and every worker hits the poisoned accumulator.
    let config = IolapConfig::with_batches(1)
        .trials(8)
        .seed(1)
        .parallelism(4);
    let mut driver = IolapDriver::from_sql("SELECT POISON(x) FROM t", &cat, &registry, "t", config)
        .expect("planning a POISON aggregate must succeed");

    let step = driver.step().expect("one batch scheduled");
    let err = step.expect_err("a panicking UDAF must produce a batch error");
    let _ = std::panic::take_hook();

    match err {
        DriverError::Engine(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("panicked") && msg.contains("poisoned UDAF"),
                "error should carry the worker panic payload, got: {msg}"
            );
        }
        other => panic!("expected DriverError::Engine, got: {other}"),
    }
}
