//! Property-based Theorem-1 tests: randomized datasets and randomized
//! query shapes from the supported class, each checked per batch against
//! the batch oracle. These sweep parameter combinations the hand-written
//! tests don't.

use iolap_core::{IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{
    BatchedRelation, Catalog, DataType, PartitionMode, Relation, Row, Schema, Value,
};
use proptest::prelude::*;

/// Random small sessions table.
fn table_strategy() -> impl Strategy<Value = Vec<(i64, f64, f64, u8)>> {
    prop::collection::vec(
        (
            0i64..1_000_000,
            0.0f64..80.0,
            0.0f64..700.0,
            0u8..3, // city index
        ),
        20..120,
    )
}

fn build_catalog(rows: &[(i64, f64, f64, u8)]) -> Catalog {
    let cities = ["SF", "LA", "NYC"];
    let schema = Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
        ("city", DataType::Str),
    ]);
    let data = rows
        .iter()
        .map(|(id, b, p, c)| {
            vec![
                Value::Int(*id),
                Value::Float(*b),
                Value::Float(*p),
                Value::str(cities[*c as usize % 3]),
            ]
        })
        .collect();
    let mut cat = Catalog::new();
    cat.register("sessions", Relation::from_values(schema, data));
    cat
}

/// The randomized query family: flat and nested shapes over the sessions
/// schema, parameterized by thresholds so selectivities vary.
fn query_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT AVG(play_time), SUM(buffer_time), COUNT(*) FROM sessions".to_string()),
        (0.0f64..80.0).prop_map(|t| format!(
            "SELECT city, SUM(play_time) FROM sessions WHERE buffer_time < {t:.1} GROUP BY city"
        )),
        (0.1f64..2.0).prop_map(|f| format!(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT {f:.2} * AVG(buffer_time) FROM sessions)"
        )),
        (0.1f64..2.0).prop_map(|f| format!(
            "SELECT COUNT(*) FROM sessions s \
             WHERE s.play_time < (SELECT {f:.2} * AVG(i.play_time) FROM sessions i \
                                  WHERE i.city = s.city)"
        )),
        (0.0f64..3000.0).prop_map(|t| format!(
            "SELECT SUM(play_time) FROM sessions WHERE city IN \
             (SELECT city FROM sessions GROUP BY city HAVING SUM(buffer_time) > {t:.0})"
        )),
        (0.0f64..700.0).prop_map(|t| format!(
            "SELECT city, AVG(buffer_time) FROM sessions GROUP BY city \
             HAVING AVG(play_time) > {t:.0}"
        )),
    ]
}

fn check_equivalence(
    rows: &[(i64, f64, f64, u8)],
    sql: &str,
    batches: usize,
    seed: u64,
    slack: f64,
) -> Result<(), TestCaseError> {
    let cat = build_catalog(rows);
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(sql, &cat, &registry).expect("queries in the family must plan");
    let mut cfg = IolapConfig::with_batches(batches)
        .trials(12)
        .seed(seed)
        .slack(slack);
    cfg.partition_mode = PartitionMode::RowShuffle;
    let stream = cat.get("sessions").unwrap();
    let parts = BatchedRelation::partition(&stream, batches, seed, cfg.partition_mode);
    let mut driver = IolapDriver::from_plan(&pq, &cat, "sessions", cfg).expect("driver");
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.expect("batch");
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "sessions",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        prop_assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch for `{sql}`\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Theorem 1 over randomized data, query shape, batching, and slack.
    #[test]
    fn randomized_theorem1(
        rows in table_strategy(),
        sql in query_strategy(),
        batches in 2usize..7,
        seed in any::<u64>(),
        slack in prop_oneof![Just(0.0f64), Just(1.0), Just(2.0)],
    ) {
        check_equivalence(&rows, &sql, batches, seed, slack)?;
    }

    /// Theorem 1 must also hold with the optimizations disabled (the
    /// conservative §4.2 algorithm) — same answers, different costs.
    #[test]
    fn randomized_theorem1_without_optimizations(
        rows in table_strategy(),
        sql in query_strategy(),
        seed in any::<u64>(),
    ) {
        let cat = build_catalog(&rows);
        let registry = FunctionRegistry::with_builtins();
        let pq = plan_sql(&sql, &cat, &registry).unwrap();
        let mut cfg = IolapConfig::with_batches(4).trials(8).seed(seed);
        cfg.partition_mode = PartitionMode::RowShuffle;
        cfg = cfg.optimizations(false, false);
        let stream = cat.get("sessions").unwrap();
        let parts = BatchedRelation::partition(&stream, 4, seed, cfg.partition_mode);
        let mut driver = IolapDriver::from_plan(&pq, &cat, "sessions", cfg).unwrap();
        let mut i = 0;
        while let Some(step) = driver.step() {
            let report = step.expect("batch");
            let prefix = parts.union_through(i);
            let m = parts.scale_after(i);
            let mut oc = cat.clone();
            oc.register(
                "sessions",
                Relation::new(
                    prefix.schema().clone(),
                    prefix
                        .rows()
                        .iter()
                        .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                        .collect(),
                ),
            );
            let expected = execute(&pq.plan, &oc).unwrap();
            prop_assert!(
                report.result.relation.approx_eq(&expected, 1e-6),
                "unoptimized batch {i} mismatch for `{sql}`"
            );
            i += 1;
        }
    }
}
