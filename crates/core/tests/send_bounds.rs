//! Compile-time `Send`/`Sync` pins for the types the serving layer moves
//! across scheduler workers. A session's `IolapDriver` is stepped by
//! whichever worker picks it up next, so the driver (and everything it
//! transitively owns: sink, registry, checkpoints, fault injector, tracer)
//! must be `Send`; the shared observability handles must additionally be
//! `Sync`. If a future PR stores an `Rc`, a raw pointer, or a non-`Sync`
//! cell inside any of these, this file stops compiling — which is the
//! entire point.

use iolap_core::{
    BatchReport, FaultInjector, FaultPlan, IolapConfig, IolapDriver, QueryResult, Sink, Tracer,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn engine_types_are_session_safe() {
    // Moved between scheduler workers, one step at a time.
    assert_send::<IolapDriver>();
    // Handed from worker threads back to polling clients.
    assert_send::<BatchReport>();
    assert_send::<QueryResult>();
    assert_send::<Sink>();
    assert_send::<IolapConfig>();
    // Shared behind `Arc` by the driver, its workers, and the trace/fault
    // observers simultaneously.
    assert_send::<Tracer>();
    assert_sync::<Tracer>();
    assert_send::<FaultInjector>();
    assert_sync::<FaultInjector>();
    assert_send::<FaultPlan>();
}
