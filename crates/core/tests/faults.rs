//! End-to-end deterministic fault-injection tests (§5.1 hardening).
//!
//! A `FaultPlan` in the config arms seed-driven faults — forced range
//! failures, dropped/corrupted checkpoints, panicking fold workers and
//! derefs, perturbed ranges — and the driver must come through every one
//! of them with answers still matching the offline oracle on the scaled
//! prefix (Theorem 1 does not get a fault-injection exemption).

use iolap_core::{FaultKind, FaultPlan, IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{
    BatchedRelation, Catalog, DataType, PartitionMode, Relation, Row, Schema, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NESTED_SQL: &str = "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)";

/// Stationary data: with the paper's slack = 2 no organic range failure is
/// expected, so every recovery observed below is attributable to the
/// injected fault.
fn stationary_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 50.0),
                Value::Float(rng.gen::<f64>() * 100.0),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

/// Drifting data (as in `recovery.rs`): zero slack forces organic
/// failures, which the checkpoint-level faults then sabotage.
fn drifting_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|i| {
            let drift = i as f64 / n as f64 * 40.0;
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 30.0 + drift),
                Value::Float(rng.gen::<f64>() * 100.0),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

fn config(batches: usize, slack: f64, ckpt: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches)
        .trials(16)
        .seed(5)
        .slack(slack);
    c.partition_mode = PartitionMode::Sequential;
    c.checkpoint_interval = ckpt;
    c
}

/// Run to completion, checking every batch against the offline oracle on
/// the scaled prefix. Returns the finished driver (for metrics / fire
/// counts) and the number of batches that recovered.
fn run_exact(cat: &Catalog, config: IolapConfig) -> (IolapDriver, usize) {
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, cat, &registry).unwrap();
    let stream = cat.get("t").unwrap();
    let parts = BatchedRelation::partition(
        &stream,
        config.num_batches,
        config.seed,
        config.partition_mode,
    );
    let mut driver = IolapDriver::from_plan(&pq, cat, "t", config).unwrap();
    let mut recoveries = 0;
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        if report.recovered {
            recoveries += 1;
        }
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "t",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch under fault injection\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    (driver, recoveries)
}

fn fires_for(driver: &IolapDriver, label: &str) -> u64 {
    driver
        .fault_fires()
        .iter()
        .filter(|(l, _, _)| *l == label)
        .map(|(_, _, n)| n)
        .sum()
}

#[test]
fn forced_range_failure_recovers_and_stays_exact() {
    let cat = stationary_catalog(300, 11);
    let cfg = config(10, 2.0, 1).fault_plan(FaultPlan::new(7).with(
        3,
        FaultKind::FailRange {
            agg: None,
            column: None,
        },
    ));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "fail_range"), 1, "fault must fire once");
    assert!(recoveries >= 1, "forced failure must trigger recovery");
    assert!(driver.total_failures() >= 1);
    assert!(driver.metrics().get("recovery.replays") >= 1);
}

#[test]
fn cascading_mid_replay_failure_triggers_bounded_re_recovery() {
    // Two armed FailRange faults at the same batch on a query with two
    // pruning subqueries: the first flips one attribute's outcome on the
    // fresh pass; during the replay that attribute sits in quarantine, so
    // the second fault lands on the *other* (still-live) attribute — a
    // failure detected mid-replay. That is the exact scenario the old
    // controller silently discarded (its replay outcomes went to
    // `let _ =`). The hardened loop must run a second, bounded recovery
    // and still agree with the oracle.
    let two_pred_sql =
        "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t) AND y < (SELECT SUM(y) FROM t)";
    let cat = stationary_catalog(300, 12);
    let cfg = config(10, 2.0, 1).fault_plan(
        FaultPlan::new(7)
            .with(
                4,
                FaultKind::FailRange {
                    agg: None,
                    column: None,
                },
            )
            .with(
                4,
                FaultKind::FailRange {
                    agg: None,
                    column: None,
                },
            ),
    );
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(two_pred_sql, &cat, &registry).unwrap();
    let stream = cat.get("t").unwrap();
    let parts = BatchedRelation::partition(&stream, cfg.num_batches, cfg.seed, cfg.partition_mode);
    let mut driver = IolapDriver::from_plan(&pq, &cat, "t", cfg).unwrap();
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "t",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch under cascading faults\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    assert_eq!(fires_for(&driver, "fail_range"), 2);
    assert_eq!(
        driver.total_failures(),
        2,
        "both the fresh-pass and the mid-replay failure must be counted"
    );
    assert!(
        driver.metrics().get("recovery.cascades") >= 1,
        "the second failure arrives mid-replay and must register as a cascade"
    );
}

#[test]
fn forced_failure_with_sparse_checkpoints_stays_exact() {
    // Interval 3: the recovery target rarely has a same-batch checkpoint,
    // so the replay must start at the *checkpoint's* successor batch (the
    // old `restored_batch` ignored its argument, which this exercises
    // end-to-end).
    let cat = stationary_catalog(300, 13);
    let cfg = config(10, 2.0, 3).fault_plan(FaultPlan::new(7).with(
        5,
        FaultKind::FailRange {
            agg: None,
            column: None,
        },
    ));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "fail_range"), 1);
    assert!(recoveries >= 1);
    assert!(driver.metrics().get("recovery.replayed_rows") >= 1);
}

#[test]
fn dropped_checkpoints_degrade_to_longer_replays() {
    // Every save is dropped: only the initial checkpoint survives, so each
    // organic recovery replays the full prefix — slow but exact.
    let cat = drifting_catalog(300, 14);
    let mut plan = FaultPlan::new(7);
    for b in 0..10 {
        plan = plan.with(b, FaultKind::DropCheckpoint);
    }
    let cfg = config(10, 0.0, 1).fault_plan(plan);
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert!(recoveries >= 1, "zero slack on drifting data must recover");
    assert!(driver.metrics().get("ckpt.dropped") >= 1);
    assert_eq!(driver.metrics().get("ckpt.saves"), 0, "all saves dropped");
    let (count, bytes) = driver.checkpoint_footprint();
    assert_eq!((count, bytes), (1, 0), "only the initial checkpoint left");
}

#[test]
fn corrupted_checkpoints_are_detected_and_skipped() {
    // Every save is corrupted at write time; restores must detect the
    // digest mismatch, discard the save, and fall back — ultimately to the
    // pristine initial checkpoint — without ever restoring damaged state.
    let cat = drifting_catalog(300, 15);
    let mut plan = FaultPlan::new(7);
    for b in 0..10 {
        plan = plan.with(b, FaultKind::CorruptCheckpoint);
    }
    let cfg = config(10, 0.0, 1).fault_plan(plan);
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert!(recoveries >= 1);
    assert!(
        driver.metrics().get("ckpt.corrupt_detected") >= 1,
        "a restore must have tripped over a damaged checkpoint"
    );
}

#[test]
fn worker_panic_is_recovered_via_error_replay() {
    let cat = stationary_catalog(300, 16);
    let cfg = config(10, 2.0, 1)
        .parallelism(2)
        .fault_plan(FaultPlan::new(7).with(4, FaultKind::WorkerPanic));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "worker_panic"), 1);
    assert!(recoveries >= 1, "the panicked batch must report recovery");
    assert!(driver.metrics().get("recovery.error_replays") >= 1);
    assert_eq!(
        driver.total_failures(),
        0,
        "an execution error is not a range-integrity failure"
    );
}

#[test]
fn deref_panic_is_recovered() {
    let cat = stationary_catalog(300, 17);
    let cfg = config(10, 2.0, 1).fault_plan(FaultPlan::new(7).with(4, FaultKind::DerefPanic));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "deref_panic"), 1);
    assert!(recoveries >= 1);
    let m = driver.metrics();
    assert!(
        m.get("recovery.error_replays") + m.get("recovery.publish_retries") >= 1,
        "the panic must surface either mid-process (error replay) or mid-publish (retry)"
    );
}

#[test]
fn perturbed_ranges_remain_sound() {
    // PerturbRanges only moves ranges in conservative directions (wider
    // classification view, tighter monitored envelope), so answers stay
    // exact; at most it costs extra recoveries.
    let cat = stationary_catalog(300, 18);
    let cfg = config(10, 2.0, 1)
        .fault_plan(FaultPlan::new(7).with(3, FaultKind::PerturbRanges { epsilon: 0.5 }));
    let (driver, _) = run_exact(&cat, cfg);
    assert!(
        fires_for(&driver, "perturb_ranges") >= 1,
        "perturbation must have touched at least one range"
    );
}

#[test]
fn fault_free_plan_changes_nothing() {
    // An armed injector with an empty fault list must be a strict no-op:
    // identical reports to a production (no-plan) run.
    let cat = drifting_catalog(200, 19);
    let base = config(8, 0.0, 1);
    let with_empty_plan = config(8, 0.0, 1).fault_plan(FaultPlan::new(7));
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, &cat, &registry).unwrap();
    let mut a = IolapDriver::from_plan(&pq, &cat, "t", base).unwrap();
    let mut b = IolapDriver::from_plan(&pq, &cat, "t", with_empty_plan).unwrap();
    let ra = a.run_to_completion().unwrap();
    let rb = b.run_to_completion().unwrap();
    assert_eq!(ra.len(), rb.len());
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert!(x.result.relation.approx_eq(&y.result.relation, 0.0));
        assert_eq!(x.recovered, y.recovered);
    }
    assert!(b.fault_fires().iter().all(|(_, _, n)| *n == 0));
}
