//! End-to-end deterministic fault-injection tests (§5.1 hardening).
//!
//! A `FaultPlan` in the config arms seed-driven faults — forced range
//! failures, dropped/corrupted checkpoints, panicking fold workers and
//! derefs, perturbed ranges — and the driver must come through every one
//! of them with answers still matching the offline oracle on the scaled
//! prefix (Theorem 1 does not get a fault-injection exemption).

use iolap_core::{FaultKind, FaultPlan, IolapConfig, IolapDriver};
use iolap_engine::{execute, plan_sql, FunctionRegistry};
use iolap_relation::{
    BatchedRelation, Catalog, DataType, PartitionMode, Relation, Row, Schema, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NESTED_SQL: &str = "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)";

/// Stationary data: with the paper's slack = 2 no organic range failure is
/// expected, so every recovery observed below is attributable to the
/// injected fault.
fn stationary_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 50.0),
                Value::Float(rng.gen::<f64>() * 100.0),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

/// Drifting data (as in `recovery.rs`): zero slack forces organic
/// failures, which the checkpoint-level faults then sabotage.
fn drifting_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|i| {
            let drift = i as f64 / n as f64 * 40.0;
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen::<f64>() * 30.0 + drift),
                Value::Float(rng.gen::<f64>() * 100.0),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register("t", Relation::from_values(schema, rows));
    c
}

fn config(batches: usize, slack: f64, ckpt: usize) -> IolapConfig {
    let mut c = IolapConfig::with_batches(batches)
        .trials(16)
        .seed(5)
        .slack(slack);
    c.partition_mode = PartitionMode::Sequential;
    c.checkpoint_interval = ckpt;
    c
}

/// Run to completion, checking every batch against the offline oracle on
/// the scaled prefix. Returns the finished driver (for metrics / fire
/// counts) and the number of batches that recovered.
fn run_exact(cat: &Catalog, config: IolapConfig) -> (IolapDriver, usize) {
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, cat, &registry).unwrap();
    let stream = cat.get("t").unwrap();
    let parts = BatchedRelation::partition(
        &stream,
        config.num_batches,
        config.seed,
        config.partition_mode,
    );
    let mut driver = IolapDriver::from_plan(&pq, cat, "t", config).unwrap();
    let mut recoveries = 0;
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        if report.recovered {
            recoveries += 1;
        }
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "t",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch under fault injection\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    (driver, recoveries)
}

fn fires_for(driver: &IolapDriver, label: &str) -> u64 {
    driver
        .fault_fires()
        .iter()
        .filter(|(l, _, _)| *l == label)
        .map(|(_, _, n)| n)
        .sum()
}

#[test]
fn forced_range_failure_recovers_and_stays_exact() {
    let cat = stationary_catalog(300, 11);
    let cfg = config(10, 2.0, 1).fault_plan(FaultPlan::new(7).with(
        3,
        FaultKind::FailRange {
            agg: None,
            column: None,
        },
    ));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "fail_range"), 1, "fault must fire once");
    assert!(recoveries >= 1, "forced failure must trigger recovery");
    assert!(driver.total_failures() >= 1);
    assert!(driver.metrics().get("recovery.replays") >= 1);
}

#[test]
fn cascading_mid_replay_failure_triggers_bounded_re_recovery() {
    // Two armed FailRange faults at the same batch on a query with two
    // pruning subqueries: the first flips one attribute's outcome on the
    // fresh pass; during the replay that attribute sits in quarantine, so
    // the second fault lands on the *other* (still-live) attribute — a
    // failure detected mid-replay. That is the exact scenario the old
    // controller silently discarded (its replay outcomes went to
    // `let _ =`). The hardened loop must run a second, bounded recovery
    // and still agree with the oracle.
    let two_pred_sql =
        "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t) AND y < (SELECT SUM(y) FROM t)";
    let cat = stationary_catalog(300, 12);
    let cfg = config(10, 2.0, 1).fault_plan(
        FaultPlan::new(7)
            .with(
                4,
                FaultKind::FailRange {
                    agg: None,
                    column: None,
                },
            )
            .with(
                4,
                FaultKind::FailRange {
                    agg: None,
                    column: None,
                },
            ),
    );
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(two_pred_sql, &cat, &registry).unwrap();
    let stream = cat.get("t").unwrap();
    let parts = BatchedRelation::partition(&stream, cfg.num_batches, cfg.seed, cfg.partition_mode);
    let mut driver = IolapDriver::from_plan(&pq, &cat, "t", cfg).unwrap();
    let mut i = 0;
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        let prefix = parts.union_through(i);
        let m = parts.scale_after(i);
        let mut oc = cat.clone();
        oc.register(
            "t",
            Relation::new(
                prefix.schema().clone(),
                prefix
                    .rows()
                    .iter()
                    .map(|r| Row::with_mult(r.values.to_vec(), r.mult * m))
                    .collect(),
            ),
        );
        let expected = execute(&pq.plan, &oc).unwrap();
        assert!(
            report.result.relation.approx_eq(&expected, 1e-6),
            "batch {i} mismatch under cascading faults\niOLAP:\n{}\noracle:\n{}",
            report.result.relation,
            expected
        );
        i += 1;
    }
    assert_eq!(fires_for(&driver, "fail_range"), 2);
    assert_eq!(
        driver.total_failures(),
        2,
        "both the fresh-pass and the mid-replay failure must be counted"
    );
    assert!(
        driver.metrics().get("recovery.cascades") >= 1,
        "the second failure arrives mid-replay and must register as a cascade"
    );
}

#[test]
fn forced_failure_with_sparse_checkpoints_stays_exact() {
    // Interval 3: the recovery target rarely has a same-batch checkpoint,
    // so the replay must start at the *checkpoint's* successor batch (the
    // old `restored_batch` ignored its argument, which this exercises
    // end-to-end).
    let cat = stationary_catalog(300, 13);
    let cfg = config(10, 2.0, 3).fault_plan(FaultPlan::new(7).with(
        5,
        FaultKind::FailRange {
            agg: None,
            column: None,
        },
    ));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "fail_range"), 1);
    assert!(recoveries >= 1);
    assert!(driver.metrics().get("recovery.replayed_rows") >= 1);
}

#[test]
fn dropped_checkpoints_degrade_to_longer_replays() {
    // Every save is dropped: only the initial checkpoint survives, so each
    // organic recovery replays the full prefix — slow but exact.
    let cat = drifting_catalog(300, 14);
    let mut plan = FaultPlan::new(7);
    for b in 0..10 {
        plan = plan.with(b, FaultKind::DropCheckpoint);
    }
    let cfg = config(10, 0.0, 1).fault_plan(plan);
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert!(recoveries >= 1, "zero slack on drifting data must recover");
    assert!(driver.metrics().get("ckpt.dropped") >= 1);
    assert_eq!(driver.metrics().get("ckpt.saves"), 0, "all saves dropped");
    let (count, bytes) = driver.checkpoint_footprint();
    assert_eq!((count, bytes), (1, 0), "only the initial checkpoint left");
}

#[test]
fn corrupted_checkpoints_are_detected_and_skipped() {
    // Every save is corrupted at write time; restores must detect the
    // digest mismatch, discard the save, and fall back — ultimately to the
    // pristine initial checkpoint — without ever restoring damaged state.
    let cat = drifting_catalog(300, 15);
    let mut plan = FaultPlan::new(7);
    for b in 0..10 {
        plan = plan.with(b, FaultKind::CorruptCheckpoint);
    }
    let cfg = config(10, 0.0, 1).fault_plan(plan);
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert!(recoveries >= 1);
    assert!(
        driver.metrics().get("ckpt.corrupt_detected") >= 1,
        "a restore must have tripped over a damaged checkpoint"
    );
}

#[test]
fn worker_panic_is_recovered_via_error_replay() {
    let cat = stationary_catalog(300, 16);
    let cfg = config(10, 2.0, 1)
        .parallelism(2)
        .fault_plan(FaultPlan::new(7).with(4, FaultKind::WorkerPanic));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "worker_panic"), 1);
    assert!(recoveries >= 1, "the panicked batch must report recovery");
    assert!(driver.metrics().get("recovery.error_replays") >= 1);
    assert_eq!(
        driver.total_failures(),
        0,
        "an execution error is not a range-integrity failure"
    );
}

#[test]
fn deref_panic_is_recovered() {
    let cat = stationary_catalog(300, 17);
    let cfg = config(10, 2.0, 1).fault_plan(FaultPlan::new(7).with(4, FaultKind::DerefPanic));
    let (driver, recoveries) = run_exact(&cat, cfg);
    assert_eq!(fires_for(&driver, "deref_panic"), 1);
    assert!(recoveries >= 1);
    let m = driver.metrics();
    assert!(
        m.get("recovery.error_replays") + m.get("recovery.publish_retries") >= 1,
        "the panic must surface either mid-process (error replay) or mid-publish (retry)"
    );
}

#[test]
fn perturbed_ranges_remain_sound() {
    // PerturbRanges only moves ranges in conservative directions (wider
    // classification view, tighter monitored envelope), so answers stay
    // exact; at most it costs extra recoveries.
    let cat = stationary_catalog(300, 18);
    let cfg = config(10, 2.0, 1)
        .fault_plan(FaultPlan::new(7).with(3, FaultKind::PerturbRanges { epsilon: 0.5 }));
    let (driver, _) = run_exact(&cat, cfg);
    assert!(
        fires_for(&driver, "perturb_ranges") >= 1,
        "perturbation must have touched at least one range"
    );
}

/// What [`run_with_durable_hooks`] observed per batch: the driver plus
/// each durable hook's `(batch, value)` fires.
type DurableHookFires = (
    IolapDriver,
    Vec<(usize, f64)>,
    Vec<(usize, f64)>,
    Vec<(usize, u64)>,
);

/// Drive the injector exactly as the serving layer's durable spill path
/// does: after each batch, offer the report's index to each durable
/// fault hook. Core owns the *kinds* and their arming; the byte damage
/// itself is applied by the store layer.
fn run_with_durable_hooks(cat: &Catalog, config: IolapConfig) -> DurableHookFires {
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, cat, &registry).unwrap();
    let mut driver = IolapDriver::from_plan(&pq, cat, "t", config).unwrap();
    let (mut torn, mut chopped, mut stale) = (Vec::new(), Vec::new(), Vec::new());
    while let Some(step) = driver.step() {
        let report = step.unwrap();
        if let Some(inj) = driver.fault_injector() {
            if let Some(f) = inj.inject_torn_write(report.batch) {
                torn.push((report.batch, f));
            }
            if let Some(f) = inj.inject_truncated_segment(report.batch) {
                chopped.push((report.batch, f));
            }
            if let Some(mask) = inj.inject_stale_manifest(report.batch) {
                stale.push((report.batch, mask));
            }
        }
    }
    (driver, torn, chopped, stale)
}

#[test]
fn torn_write_fault_is_seeded_one_shot_and_a_valid_fraction() {
    let cat = stationary_catalog(300, 20);
    let plan = || FaultPlan::new(9).with(2, FaultKind::TornWrite);
    let cfg = config(6, 2.0, 1).fault_plan(plan());
    let (driver, torn, chopped, stale) = run_with_durable_hooks(&cat, cfg);
    assert_eq!(torn.len(), 1, "one-shot: fires exactly once");
    assert!(
        chopped.is_empty() && stale.is_empty(),
        "kinds are independent"
    );
    let (batch, frac) = torn[0];
    assert_eq!(batch, 2, "fires at the armed batch");
    assert!(
        (0.0..1.0).contains(&frac) && frac > 0.0,
        "tear keeps a strict prefix: {frac}"
    );
    assert_eq!(fires_for(&driver, "torn_write"), 1);
    // Seeded: an identically-configured run tears at the same byte.
    let cfg = config(6, 2.0, 1).fault_plan(plan());
    let (_, torn2, _, _) = run_with_durable_hooks(&cat, cfg);
    assert_eq!(torn, torn2, "same seed, same tear point");
}

#[test]
fn truncated_segment_fault_replays_exactly_from_the_surviving_prefix() {
    let cat = stationary_catalog(300, 21);
    let cfg = config(6, 2.0, 1).fault_plan(FaultPlan::new(9).with(3, FaultKind::TruncatedSegment));
    let (driver, torn, chopped, _) = run_with_durable_hooks(&cat, cfg);
    assert!(torn.is_empty());
    assert_eq!(chopped, {
        let cfg =
            config(6, 2.0, 1).fault_plan(FaultPlan::new(9).with(3, FaultKind::TruncatedSegment));
        run_with_durable_hooks(&cat, cfg).2
    });
    assert_eq!(chopped.len(), 1);
    assert!(chopped[0].1 > 0.0 && chopped[0].1 <= 1.0);
    assert_eq!(fires_for(&driver, "truncated_segment"), 1);

    // Truncation loses the log tail; what recovery sees is a shorter
    // event prefix. Replaying that prefix must regenerate reports
    // identical to the uninterrupted run's first batches — the oracle
    // contract the server's crash matrix pins bytewise.
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, &cat, &registry).unwrap();
    let base = config(6, 2.0, 1);
    let mut full = IolapDriver::from_plan(&pq, &cat, "t", base.clone()).unwrap();
    let reports = full.run_to_completion().unwrap();
    let mut resumed = IolapDriver::from_plan(&pq, &cat, "t", base).unwrap();
    let events: Vec<_> = (0..3).map(iolap_core::ReplayEvent::Batch).collect();
    let outcome = resumed.resume_replay(&events).unwrap();
    assert_eq!(outcome.replayed_batches, 3);
    assert_eq!(outcome.stale_digests, 0);
    assert_eq!(outcome.reports.len(), 3);
    for (r, e) in outcome.reports.iter().zip(reports.iter()) {
        assert_eq!(r.batch, e.batch);
        assert_eq!(r.recovered, e.recovered);
        assert!(
            r.result.relation.approx_eq(&e.result.relation, 0.0),
            "replayed batch {} diverged from the uninterrupted run",
            r.batch
        );
    }
}

#[test]
fn stale_manifest_digest_is_detected_but_replay_stays_exact() {
    // A stale manifest poisons the *recorded* digest, never the data: the
    // replay re-derives state from the stream, flags the mismatch, and the
    // regenerated reports still match the uninterrupted run exactly.
    let cat = stationary_catalog(300, 22);
    let cfg = config(6, 2.0, 1).fault_plan(FaultPlan::new(9).with(1, FaultKind::StaleManifest));
    let (_, _, _, stale) = run_with_durable_hooks(&cat, cfg);
    assert_eq!(stale.len(), 1);
    let mask = stale[0].1;
    assert_ne!(mask, 0, "mask must actually flip digest bits");

    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, &cat, &registry).unwrap();
    let base = config(6, 2.0, 1);
    let mut full = IolapDriver::from_plan(&pq, &cat, "t", base.clone()).unwrap();
    let reports = full.run_to_completion().unwrap();
    let (digest, _) = full.checkpoint_for(5).expect("interval-1 checkpoints");

    // Undamaged digest: verified clean.
    let replay = |poison: u64| {
        let mut d = IolapDriver::from_plan(&pq, &cat, "t", base.clone()).unwrap();
        let events: Vec<_> = (0..6)
            .map(iolap_core::ReplayEvent::Batch)
            .chain(std::iter::once(iolap_core::ReplayEvent::Checkpoint {
                batch: 5,
                digest: digest ^ poison,
            }))
            .collect();
        d.resume_replay(&events).unwrap()
    };
    let clean = replay(0);
    assert_eq!(clean.stale_digests, 0, "pristine digest must verify");
    let poisoned = replay(mask);
    assert_eq!(poisoned.stale_digests, 1, "mask must trip the digest check");
    assert_eq!(poisoned.reports.len(), reports.len());
    for (r, e) in poisoned.reports.iter().zip(reports.iter()) {
        assert!(
            r.result.relation.approx_eq(&e.result.relation, 0.0),
            "stale digest must not change replayed answers (batch {})",
            r.batch
        );
    }
}

#[test]
fn durable_faults_are_option_gated() {
    // L004: production configs carry no injector at all — the durable
    // spill path's hooks hang off `fault_injector()` returning `None`,
    // not off a disarmed injector.
    let cat = stationary_catalog(100, 23);
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, &cat, &registry).unwrap();
    let driver = IolapDriver::from_plan(&pq, &cat, "t", config(4, 2.0, 1)).unwrap();
    assert!(driver.fault_injector().is_none());
}

#[test]
fn fault_free_plan_changes_nothing() {
    // An armed injector with an empty fault list must be a strict no-op:
    // identical reports to a production (no-plan) run.
    let cat = drifting_catalog(200, 19);
    let base = config(8, 0.0, 1);
    let with_empty_plan = config(8, 0.0, 1).fault_plan(FaultPlan::new(7));
    let registry = FunctionRegistry::with_builtins();
    let pq = plan_sql(NESTED_SQL, &cat, &registry).unwrap();
    let mut a = IolapDriver::from_plan(&pq, &cat, "t", base).unwrap();
    let mut b = IolapDriver::from_plan(&pq, &cat, "t", with_empty_plan).unwrap();
    let ra = a.run_to_completion().unwrap();
    let rb = b.run_to_completion().unwrap();
    assert_eq!(ra.len(), rb.len());
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert!(x.result.relation.approx_eq(&y.result.relation, 0.0));
        assert_eq!(x.recovered, y.recovered);
    }
    assert!(b.fault_fires().iter().all(|(_, _, n)| *n == 0));
}
