//! The SINK virtual operator (§4.2) and per-batch result publication.
//!
//! The sink accumulates the root operator's certain rows, tracks the
//! current uncertain rows, and renders a [`QueryResult`] each batch:
//! lineage cells are resolved to their current values, extensive row
//! multiplicities are scaled by `m_i`, ORDER BY/LIMIT presentation is
//! applied, and every uncertain numeric output gets a bootstrap
//! [`ErrorEstimate`].

use crate::channel::ORow;
use crate::registry::AggRegistry;
use iolap_bootstrap::ErrorEstimate;
use iolap_engine::{EvalContext, Expr, RefMode};
use iolap_relation::{Relation, Row, Schema, Value};

/// Presentation config carried from a top-level `Plan::Sort`.
#[derive(Clone, Debug, Default)]
pub struct Presentation {
    /// `(key expr, ascending)` pairs over the output schema.
    pub sort_keys: Vec<(Expr, bool)>,
    /// Row limit.
    pub limit: Option<u64>,
}

/// Accumulated sink state.
#[derive(Clone, Debug)]
pub struct Sink {
    /// Output schema.
    pub schema: Schema,
    /// Output column names.
    pub names: Vec<String>,
    /// Presentation (ORDER BY / LIMIT).
    pub presentation: Presentation,
    /// Power of `m_i` applied to row multiplicities (number of streamed
    /// base-row factors in each output row's provenance; 0 for aggregated
    /// outputs).
    pub stream_factor: u32,
    /// Number of visible output columns; trailing columns are hidden sort
    /// keys hoisted by the rewriter and stripped at publish time.
    pub visible: Option<usize>,
    certain: Vec<ORow>,
    uncertain: Vec<ORow>,
}

/// One published partial result.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The (scaled) partial result relation.
    pub relation: Relation,
    /// Output column names.
    pub names: Vec<String>,
    /// Per row, per column: bootstrap error estimate for uncertain numeric
    /// cells (`None` for deterministic cells).
    pub estimates: Vec<Vec<Option<ErrorEstimate>>>,
}

impl QueryResult {
    /// Largest relative standard deviation across all uncertain cells —
    /// the paper's accuracy axis (Fig 7(a)).
    pub fn max_relative_std(&self) -> Option<f64> {
        self.estimates
            .iter()
            .flatten()
            .flatten()
            .map(|e| e.relative_std)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Largest relative confidence-interval half-width across all uncertain
    /// cells, i.e. the worst "±x%" a client currently sees. `None` when the
    /// result carries no error estimates (a fully deterministic batch), and
    /// `INFINITY` when any uncertain estimate is exactly zero — both cases
    /// make a `StopPolicy::RelativeCI` accuracy contract *not yet met*
    /// rather than trivially satisfied.
    pub fn max_relative_ci_halfwidth(&self) -> Option<f64> {
        self.estimates
            .iter()
            .flatten()
            .flatten()
            .map(|e| e.relative_ci_halfwidth())
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

impl Sink {
    /// New sink.
    pub fn new(
        schema: Schema,
        names: Vec<String>,
        presentation: Presentation,
        stream_factor: u32,
        visible: Option<usize>,
    ) -> Self {
        Sink {
            schema,
            names,
            presentation,
            stream_factor,
            visible,
            certain: Vec::new(),
            uncertain: Vec::new(),
        }
    }

    /// Ingest one batch's root output.
    pub fn ingest(&mut self, delta_certain: Vec<ORow>, uncertain: Vec<ORow>) {
        self.certain.extend(delta_certain);
        self.uncertain = uncertain;
    }

    /// Number of accumulated certain rows (tests / instrumentation).
    pub fn certain_len(&self) -> usize {
        self.certain.len()
    }

    /// Render the current partial result (§2's `Q(D_i, m_i)`).
    pub fn publish(
        &self,
        registry: &AggRegistry,
        scale: f64,
        trials: usize,
        confidence: f64,
    ) -> QueryResult {
        self.publish_traced(
            registry,
            scale,
            trials,
            confidence,
            None,
            crate::trace::NO_BATCH,
            crate::trace::SpanId::NONE,
        )
    }

    /// [`Sink::publish`] with the driver's trace hook: when `tracer` is
    /// armed, the render is wrapped in a `sink.publish` span under
    /// `parent` carrying input/output row counts and the applied scale.
    /// A panic mid-render (a poisoned lineage deref) leaves the span open
    /// — the flight recorder then shows publish as the phase in flight.
    #[allow(clippy::too_many_arguments)]
    pub fn publish_traced(
        &self,
        registry: &AggRegistry,
        scale: f64,
        trials: usize,
        confidence: f64,
        tracer: Option<&crate::trace::Tracer>,
        batch: usize,
        parent: crate::trace::SpanId,
    ) -> QueryResult {
        let span = tracer.map(|t| {
            let s = t.begin("sink.publish", batch, parent);
            t.instant(
                "sink.ingested",
                batch,
                s,
                (self.certain.len() + self.uncertain.len()) as u64,
                format!(
                    "certain={} uncertain={} scale_pow={}",
                    self.certain.len(),
                    self.uncertain.len(),
                    self.stream_factor
                ),
            );
            s
        });
        let result = self.render(registry, scale, trials, confidence);
        if let (Some(t), Some(s)) = (tracer, span) {
            t.end(
                "sink.publish",
                batch,
                s,
                parent,
                result.relation.len() as u64,
            );
        }
        result
    }

    fn render(
        &self,
        registry: &AggRegistry,
        scale: f64,
        trials: usize,
        confidence: f64,
    ) -> QueryResult {
        let ctx = EvalContext::with_resolver(registry);
        // Pass 1: resolve lineage cells to current values, remembering which
        // cells are uncertain (estimates are computed only for rows that
        // survive ORDER BY/LIMIT — percentile sorting every group's trial
        // vector just to truncate them away would dominate LIMIT queries).
        let mut rows: Vec<Row> = Vec::with_capacity(self.certain.len() + self.uncertain.len());
        let mut cells: Vec<Vec<Option<Value>>> = Vec::with_capacity(rows.capacity());
        for orow in self.certain.iter().chain(self.uncertain.iter()) {
            let mut values = Vec::with_capacity(orow.values.len());
            let mut row_cells = Vec::with_capacity(orow.values.len());
            for v in orow.values.iter() {
                match v {
                    Value::Ref(_) | Value::Pending(_) => {
                        let probe = Row {
                            values: vec![v.clone()].into(),
                            mult: 1.0,
                        };
                        let current = Expr::Col(0).eval(&probe, &ctx).unwrap_or(Value::Null);
                        values.push(current);
                        row_cells.push(Some(v.clone()));
                    }
                    other => {
                        values.push(other.clone());
                        row_cells.push(None);
                    }
                }
            }
            let mult = orow.mult * scale.powi(self.stream_factor as i32);
            rows.push(Row::with_mult(values, mult));
            cells.push(row_cells);
        }

        // Pass 2: presentation (ORDER BY + LIMIT) over the rendered rows.
        if !self.presentation.sort_keys.is_empty() || self.presentation.limit.is_some() {
            let mut keyed: Vec<(Vec<Value>, Row, Vec<Option<Value>>)> = rows
                .into_iter()
                .zip(cells)
                .map(|(r, e)| {
                    let k = self
                        .presentation
                        .sort_keys
                        .iter()
                        .map(|(expr, _)| expr.eval(&r, &ctx).unwrap_or(Value::Null))
                        .collect();
                    (k, r, e)
                })
                .collect();
            keyed.sort_by(|(ka, _, _), (kb, _, _)| {
                for ((x, y), (_, asc)) in ka
                    .iter()
                    .zip(kb.iter())
                    .zip(self.presentation.sort_keys.iter())
                {
                    let mut ord = x.total_cmp(y);
                    if !asc {
                        ord = ord.reverse();
                    }
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            if let Some(n) = self.presentation.limit {
                keyed.truncate(n as usize);
            }
            rows = Vec::with_capacity(keyed.len());
            cells = Vec::with_capacity(keyed.len());
            for (_, r, e) in keyed {
                rows.push(r);
                cells.push(e);
            }
        }

        // Pass 3: bootstrap error estimates for the surviving rows.
        let estimates: Vec<Vec<Option<ErrorEstimate>>> = rows
            .iter()
            .zip(cells.iter())
            .map(|(row, row_cells)| {
                row_cells
                    .iter()
                    .zip(row.values.iter())
                    .map(|(cell, current)| {
                        let cell = cell.as_ref()?;
                        let cur = current.as_f64()?;
                        let tv = trial_values(cell, registry, trials, &ctx);
                        ErrorEstimate::from_trials(cur, &tv, confidence)
                    })
                    .collect()
            })
            .collect();

        // Strip hidden sort-key columns.
        let (schema, rows, estimates) = match self.visible {
            Some(v) if v < self.schema.len() => {
                let schema = Schema::new(self.schema.fields()[..v].to_vec());
                let rows = rows
                    .into_iter()
                    .map(|r| Row::with_mult(r.values[..v].to_vec(), r.mult))
                    .collect();
                let estimates = estimates
                    .into_iter()
                    .map(|mut e| {
                        e.truncate(v);
                        e
                    })
                    .collect();
                (schema, rows, estimates)
            }
            _ => (self.schema.clone(), rows, estimates),
        };
        QueryResult {
            relation: Relation::new(schema, rows),
            names: self.names.clone(),
            estimates,
        }
    }
}

/// Per-trial values of an uncertain cell: one registry lookup for bare
/// refs, per-mode evaluation for folded thunks.
fn trial_values(
    cell: &Value,
    registry: &AggRegistry,
    trials: usize,
    ctx: &EvalContext<'_>,
) -> Vec<f64> {
    match cell {
        Value::Ref(r) => registry
            .group(r.agg, &r.key)
            .and_then(|e| e.trials.get(r.column as usize))
            .map(|tv| tv.iter().copied().filter(|x| x.is_finite()).collect())
            .unwrap_or_default(),
        Value::Pending(_) => {
            let probe = Row {
                values: vec![cell.clone()].into(),
                mult: 1.0,
            };
            (0..trials)
                .filter_map(|t| {
                    Expr::Col(0)
                        .eval(&probe, &ctx.with_mode(RefMode::Trial(t)))
                        .ok()
                        .and_then(|x| x.as_f64())
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_relation::{AggRef, DataType};
    use std::sync::Arc;

    #[test]
    fn publish_resolves_refs_and_estimates() {
        let mut reg = AggRegistry::new();
        let key: Arc<[Value]> = Arc::from(Vec::<Value>::new());
        reg.publish(
            0,
            key.clone(),
            vec![Value::Float(42.0)],
            vec![Arc::from(vec![40.0, 44.0, 42.0])],
            2.0,
        );
        let schema = Schema::from_pairs(&[("avg", DataType::Float)]);
        let mut sink = Sink::new(schema, vec!["avg".into()], Presentation::default(), 0, None);
        sink.ingest(
            vec![ORow::new(vec![Value::Ref(AggRef {
                agg: 0,
                column: 0,
                key,
            })])],
            vec![],
        );
        let out = sink.publish(&reg, 1.0, 3, 0.95);
        assert_eq!(out.relation.rows()[0].values[0], Value::Float(42.0));
        let est = out.estimates[0][0].as_ref().unwrap();
        assert_eq!(est.estimate, 42.0);
        assert!(est.std_error > 0.0);
        assert!(out.max_relative_std().unwrap() > 0.0);
        // The serving layer's RelativeCI stop rule reads this: finite and
        // positive here, `None` on a result with no uncertain cells.
        assert!(out.max_relative_ci_halfwidth().unwrap() > 0.0);
        assert!(out.max_relative_ci_halfwidth().unwrap().is_finite());
        let certain = QueryResult {
            relation: out.relation.clone(),
            names: out.names.clone(),
            estimates: vec![vec![None]],
        };
        assert_eq!(certain.max_relative_ci_halfwidth(), None);
    }

    #[test]
    fn uncertain_rows_replaced_each_batch() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(schema, vec!["x".into()], Presentation::default(), 0, None);
        sink.ingest(vec![], vec![ORow::new(vec![Value::Int(1)])]);
        sink.ingest(vec![], vec![ORow::new(vec![Value::Int(2)])]);
        let reg = AggRegistry::new();
        let out = sink.publish(&reg, 1.0, 0, 0.95);
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.rows()[0].values[0], Value::Int(2));
    }

    #[test]
    fn row_scaling_applies_to_spj_outputs() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(schema, vec!["x".into()], Presentation::default(), 1, None);
        sink.ingest(vec![ORow::new(vec![Value::Int(1)])], vec![]);
        let reg = AggRegistry::new();
        let out = sink.publish(&reg, 4.0, 0, 0.95);
        assert!((out.relation.rows()[0].mult - 4.0).abs() < 1e-12);
    }

    #[test]
    fn publish_traced_journals_span_and_ingest_mark() {
        use crate::trace::{EventKind, SpanId, Tracer};
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(schema, vec!["x".into()], Presentation::default(), 0, None);
        sink.ingest(
            vec![ORow::new(vec![Value::Int(1)])],
            vec![ORow::new(vec![Value::Int(2)])],
        );
        let reg = AggRegistry::new();
        let t = Tracer::new();
        let out = sink.publish_traced(&reg, 1.0, 0, 0.95, Some(&t), 3, SpanId::NONE);
        assert_eq!(out.relation.len(), 2);
        let evs = t.events();
        let begin = evs
            .iter()
            .find(|e| e.name == "sink.publish" && e.kind == EventKind::Begin)
            .expect("publish opens a span");
        let end = evs
            .iter()
            .find(|e| e.name == "sink.publish" && e.kind == EventKind::End)
            .expect("publish closes its span");
        assert_eq!(begin.batch, 3);
        assert_eq!(end.span, begin.span);
        assert_eq!(end.n, 2, "end event carries published row count");
        let mark = evs
            .iter()
            .find(|e| e.name == "sink.ingested")
            .expect("ingest mark fires on publish");
        assert_eq!(mark.parent, begin.span);
        assert_eq!(mark.n, 2);
        assert!(mark.detail.contains("certain=1 uncertain=1"));
    }

    #[test]
    fn publish_traced_reports_stream_scaling() {
        use crate::trace::{SpanId, Tracer};
        // stream_factor 1: SPJ outputs scale by m_i, and the trace's ingest
        // mark must say so (the scale_pow detail drives the `experiments
        // trace` timeline annotations).
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(schema, vec!["x".into()], Presentation::default(), 1, None);
        sink.ingest(vec![ORow::new(vec![Value::Int(1)])], vec![]);
        let reg = AggRegistry::new();
        let t = Tracer::new();
        let out = sink.publish_traced(&reg, 4.0, 0, 0.95, Some(&t), 0, SpanId::NONE);
        assert!((out.relation.rows()[0].mult - 4.0).abs() < 1e-12);
        let evs = t.events();
        let mark = evs.iter().find(|e| e.name == "sink.ingested").unwrap();
        assert!(
            mark.detail.contains("scale_pow=1"),
            "scaling path surfaces in the mark: {}",
            mark.detail
        );
    }

    #[test]
    fn untraced_publish_journals_nothing() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(schema, vec!["x".into()], Presentation::default(), 0, None);
        sink.ingest(vec![ORow::new(vec![Value::Int(1)])], vec![]);
        let reg = AggRegistry::new();
        // The untraced wrapper takes the same render path with zero journal
        // activity — the Option gate is the only overhead.
        let out = sink.publish(&reg, 1.0, 0, 0.95);
        assert_eq!(out.relation.len(), 1);
    }

    #[test]
    fn presentation_sorts_and_limits() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut sink = Sink::new(
            schema,
            vec!["x".into()],
            Presentation {
                sort_keys: vec![(Expr::Col(0), false)],
                limit: Some(2),
            },
            0,
            None,
        );
        sink.ingest(
            vec![
                ORow::new(vec![Value::Int(5)]),
                ORow::new(vec![Value::Int(9)]),
                ORow::new(vec![Value::Int(7)]),
            ],
            vec![],
        );
        let reg = AggRegistry::new();
        let out = sink.publish(&reg, 1.0, 0, 0.95);
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.relation.rows()[0].values[0], Value::Int(9));
        assert_eq!(out.relation.rows()[1].values[0], Value::Int(7));
    }
}
