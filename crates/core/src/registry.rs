//! The aggregate registry: lazy evaluation's broadcast table (§6.2).
//!
//! Every online AGGREGATE operator publishes, per group, its current running
//! value and per-trial bootstrap values here, keyed by `(agg_id, group
//! key)`. Tuples elsewhere in the plan carry `Value::Ref` lineage cells
//! pointing into this table; expression evaluation dereferences them
//! on demand. This is the paper's broadcast-join formulation: "in practice
//! the aggregate relation `rel` is usually very small, and it is often very
//! efficient to broadcast-join `t` and `rel`" — here the broadcast table is
//! the registry and the join is a hash lookup at eval time.
//!
//! The registry also owns each uncertain attribute's [`RangeTracker`]
//! (variation ranges, §5.1), so predicate classification and failure
//! detection read from one place.

use crate::channel::ORow;
use crate::faults::FaultInjector;
use iolap_bootstrap::{RangeOutcome, RangeTracker, VariationRange};
use iolap_engine::{EvalContext, Expr, RefMode, RefResolver};
use iolap_relation::{AggRef, PendingCell, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload of a `Value::Pending` cell: the static lineage function `f`
/// together with its folded input row `x` (§6.1: "iOLAP only propagates
/// `x`"; `f` is extracted at compile time and shared — here via `Arc`).
pub struct ThunkPayload {
    /// The lineage function over the captured row.
    pub expr: Arc<Expr>,
    /// Folded operands: deterministic values are materialized; uncertain
    /// operands remain `Ref`/`Pending` cells.
    pub row: Arc<[Value]>,
}

/// One group's published state. Values and trials are stored *unscaled*;
/// the per-column `scale` (the extensive-aggregate `m_i`, 1.0 for intensive
/// columns) is applied lazily at resolution. This is what makes *delta
/// publication* possible: a group untouched by a batch only needs its scale
/// refreshed (an O(1) range observation), not its trial vectors rebuilt.
#[derive(Clone, Debug)]
pub struct GroupEntry {
    /// Current running values, unscaled, one per aggregate column.
    pub current: Vec<Value>,
    /// Per-trial unscaled values: `trials[c][t]` = column `c` in trial `t`.
    pub trials: Vec<Arc<[f64]>>,
    /// Per-column scale factor applied at resolution.
    pub scale: Vec<f64>,
    /// Cached `(min, max, std)` of the unscaled observations (trials +
    /// current), per column; `None` when no finite observation exists.
    pub stats: Vec<Option<(f64, f64, f64)>>,
    /// Variation-range tracker per aggregate column (tracks *scaled*
    /// observations — the values predicates actually see).
    pub trackers: Vec<RangeTracker>,
}

impl GroupEntry {
    /// Scaled current value of column `c`.
    pub fn scaled_current(&self, c: usize) -> Value {
        match self.current.get(c) {
            Some(v) => scale_value(v, self.scale.get(c).copied().unwrap_or(1.0)),
            None => Value::Null,
        }
    }

    /// Scaled finite trial values of column `c`.
    pub fn scaled_trials(&self, c: usize) -> Vec<f64> {
        let s = self.scale.get(c).copied().unwrap_or(1.0);
        self.trials
            .get(c)
            .map(|tv| {
                tv.iter()
                    .copied()
                    .filter(|x| x.is_finite())
                    .map(|x| x * s)
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn scale_value(v: &Value, s: f64) -> Value {
    if s == 1.0 {
        return v.clone();
    }
    match v.as_f64() {
        Some(x) => Value::Float(x * s),
        None => v.clone(),
    }
}

/// The shared registry. Cloning snapshots it (used by checkpointing).
#[derive(Debug, Default)]
pub struct AggRegistry {
    groups: HashMap<(u32, Arc<[Value]>), GroupEntry>,
    /// Attributes whose variation range produced a near-deterministic
    /// pruning decision (§5.2), mapped to the first batch that happened in.
    /// A range-integrity failure only requires replay when — and as far
    /// back as — the failed attribute was *used*: unused ranges influence
    /// no saved decision, and decisions cannot predate first use (the
    /// Theorem-1 argument only depends on decisions actually made).
    used_for_pruning: HashMap<AggRef, usize>,
    /// Attributes whose range failed while in use. Quarantined attributes
    /// report no variation range, so classification keeps their tuples in
    /// the non-deterministic set — bounded recomputation instead of
    /// repeated failure-recovery thrash. (Engineering extension; the paper
    /// leaves repeated-failure behaviour unspecified.)
    quarantined: std::collections::HashSet<AggRef>,
    /// Bytes published this batch (the broadcast cost; Fig 9(c)).
    published_bytes: usize,
    /// Lineage dereferences served (metric `registry.derefs`). Atomic
    /// because resolution runs through `&self` during expression
    /// evaluation, including inside parallel fold workers.
    derefs: AtomicU64,
    /// Fault-injection hooks, armed only when the driver's config carries a
    /// `FaultPlan`. Shared (not snapshotted) across checkpoint clones so
    /// one-shot faults stay one-shot through restores.
    faults: Option<Arc<FaultInjector>>,
    /// Shared trace journal, armed by the driver when tracing is enabled.
    /// Like `faults`, shared (not snapshotted) across checkpoint clones —
    /// a restored registry keeps appending to the same journal.
    tracer: Option<Arc<crate::trace::Tracer>>,
}

impl Clone for AggRegistry {
    fn clone(&self) -> Self {
        AggRegistry {
            groups: self.groups.clone(),
            used_for_pruning: self.used_for_pruning.clone(),
            quarantined: self.quarantined.clone(),
            published_bytes: self.published_bytes,
            derefs: AtomicU64::new(self.derefs.load(Ordering::Relaxed)),
            faults: self.faults.clone(),
            tracer: self.tracer.clone(),
        }
    }
}

impl AggRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        AggRegistry::default()
    }

    /// Arm fault-injection hooks (driver setup, only when the config
    /// carries a `FaultPlan`).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    /// Arm the shared trace journal (driver setup, only when the config
    /// enables tracing). Quarantine transitions — the registry's
    /// controller-visible state changes — are journaled.
    pub fn set_tracer(&mut self, tracer: Arc<crate::trace::Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Publish (or update) one group's values. `slack` seeds new range
    /// trackers. Returns the per-column range outcomes (failures trigger
    /// controller recovery).
    pub fn publish(
        &mut self,
        agg_id: u32,
        key: Arc<[Value]>,
        current: Vec<Value>,
        trials: Vec<Arc<[f64]>>,
        slack: f64,
    ) -> Vec<RangeOutcome> {
        let cols = current.len();
        self.publish_at(
            agg_id,
            key,
            current,
            trials,
            vec![1.0; cols],
            slack,
            usize::MAX,
        )
    }

    /// Like [`AggRegistry::publish`], with per-column scale factors and the
    /// global batch index tagging range observations (drives recovery
    /// targets; `usize::MAX` means "next local index", used in tests).
    /// `current`/`trials` are unscaled.
    #[allow(clippy::too_many_arguments)]
    pub fn publish_at(
        &mut self,
        agg_id: u32,
        key: Arc<[Value]>,
        current: Vec<Value>,
        trials: Vec<Arc<[f64]>>,
        scale: Vec<f64>,
        slack: f64,
        batch: usize,
    ) -> Vec<RangeOutcome> {
        self.published_bytes += current.len() * std::mem::size_of::<Value>()
            + trials.iter().map(|t| t.len() * 8).sum::<usize>();
        let cols = current.len();
        let entry = self
            .groups
            .entry((agg_id, key))
            .or_insert_with(|| GroupEntry {
                current: Vec::new(),
                trials: Vec::new(),
                scale: vec![1.0; cols],
                stats: vec![None; cols],
                trackers: (0..cols).map(|_| RangeTracker::new(slack)).collect(),
            });
        entry.current = current;
        let mut outcomes = Vec::with_capacity(cols);
        for (c, tr) in trials.iter().enumerate() {
            let s = scale.get(c).copied().unwrap_or(1.0);
            // The tracked envelope must cover the *current* running value as
            // well as the bootstrap outputs: near-deterministic pruning
            // (§5.2) is only sound if every value the predicate may actually
            // see lies inside R(u) — Theorem 1's premise. Non-finite trial
            // values (empty resamples) carry no information; if nothing
            // finite remains (non-smooth aggregates publish no trials), the
            // range is left untouched and classification stays conservative.
            let mut summary = iolap_bootstrap::summary_of(tr);
            if !tr.is_empty() {
                if let Some(cur) = entry.current[c].as_f64() {
                    if cur.is_finite() {
                        summary = Some(match summary {
                            Some((lo, hi, sd)) => (lo.min(cur), hi.max(cur), sd),
                            None => (cur, cur, 0.0),
                        });
                    }
                }
            }
            entry.stats[c] = summary;
            match summary {
                None => outcomes.push(iolap_bootstrap::RangeOutcome::Ok),
                Some((lo, hi, sd)) => {
                    let b = if batch == usize::MAX {
                        entry.trackers[c].batches()
                    } else {
                        batch
                    };
                    // Injected perturbation shrinks the observed envelope
                    // (sound: escapes are detected earlier, recovery covers
                    // the rest).
                    let (slo, shi) = match &self.faults {
                        Some(f) => f.inject_envelope_shrink(agg_id, c as u16, lo * s, hi * s),
                        None => (lo * s, hi * s),
                    };
                    outcomes.push(entry.trackers[c].observe_summary(slo, shi, sd * s, b));
                }
            }
        }
        entry.trials = trials;
        entry.scale = scale;
        outcomes
    }

    /// Current (scaled) value of one aggregate cell.
    pub fn current(&self, r: &AggRef) -> Option<Value> {
        self.groups
            .get(&(r.agg, r.key.clone()))
            .map(|e| e.scaled_current(r.column as usize))
    }

    /// Refresh an untouched group after a scale change: O(1) per column —
    /// re-observe the cached unscaled summary under the new scale. Returns
    /// the per-column range outcomes.
    pub fn refresh_scale(
        &mut self,
        agg_id: u32,
        key: &Arc<[Value]>,
        scale: &[f64],
        batch: usize,
    ) -> Vec<RangeOutcome> {
        let Some(entry) = self.groups.get_mut(&(agg_id, key.clone())) else {
            return Vec::new();
        };
        let mut outcomes = Vec::with_capacity(entry.current.len());
        for c in 0..entry.current.len() {
            let s = scale.get(c).copied().unwrap_or(1.0);
            let changed = (entry.scale[c] - s).abs() > f64::EPSILON * s.abs();
            entry.scale[c] = s;
            match entry.stats[c] {
                Some((lo, hi, sd)) if changed => {
                    outcomes.push(entry.trackers[c].observe_summary(lo * s, hi * s, sd * s, batch));
                }
                _ => outcomes.push(RangeOutcome::Ok),
            }
        }
        outcomes
    }

    /// Variation range of one aggregate cell, if being tracked (quarantined
    /// attributes report none).
    pub fn range(&self, r: &AggRef) -> Option<VariationRange> {
        if self.quarantined.contains(r) {
            return None;
        }
        let range = self
            .groups
            .get(&(r.agg, r.key.clone()))
            .and_then(|e| e.trackers.get(r.column as usize))
            .and_then(|t| t.current().copied());
        // Injected perturbation widens the classification view (sound:
        // more tuples stay in the non-deterministic set).
        match (&self.faults, range) {
            (Some(f), Some(range)) => Some(f.inject_range_widening(r.agg, r.column, range)),
            (_, range) => range,
        }
    }

    /// Exclude `r` from future pruning (after a failure while in use).
    pub fn quarantine(&mut self, r: AggRef) {
        if let Some(t) = &self.tracer {
            t.instant(
                "registry.quarantine",
                crate::trace::NO_BATCH,
                crate::trace::SpanId::NONE,
                0,
                format!("agg={} col={}", r.agg, r.column),
            );
        }
        self.quarantined.insert(r);
    }

    /// Re-admit `r` for pruning. Called once a recovery replay completes:
    /// the tracker has adopted a fresh range at the failed batch and every
    /// decision that depended on the violated range has been recomputed, so
    /// monitoring can resume (§5.1).
    pub fn unquarantine(&mut self, r: &AggRef) {
        if let Some(t) = &self.tracer {
            t.instant(
                "registry.unquarantine",
                crate::trace::NO_BATCH,
                crate::trace::SpanId::NONE,
                0,
                format!("agg={} col={}", r.agg, r.column),
            );
        }
        self.quarantined.remove(r);
    }

    /// Whether `r` is quarantined.
    pub fn is_quarantined(&self, r: &AggRef) -> bool {
        self.quarantined.contains(r)
    }

    /// Group entry lookup (lazy resolution, tests, instrumentation).
    pub fn group(&self, agg_id: u32, key: &Arc<[Value]>) -> Option<&GroupEntry> {
        self.groups.get(&(agg_id, key.clone()))
    }

    /// Number of published groups across all aggregates.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Bytes published (broadcast) so far; the driver diffs this per batch.
    pub fn published_bytes(&self) -> usize {
        self.published_bytes
    }

    /// Lineage dereferences served so far (cumulative; the driver diffs
    /// this per batch into the `registry.derefs` metric).
    pub fn deref_count(&self) -> u64 {
        self.derefs.load(Ordering::Relaxed)
    }

    /// Rough memory footprint of the registry.
    pub fn approx_bytes(&self) -> usize {
        self.groups
            .values()
            .map(|e| {
                e.current.len() * std::mem::size_of::<Value>()
                    + e.trials.iter().map(|t| t.len() * 8).sum::<usize>()
                    + e.trackers.len() * std::mem::size_of::<RangeTracker>()
            })
            .sum()
    }

    /// Record that `r`'s variation range decided a pruning outcome at
    /// `batch` (keeps the earliest batch).
    pub fn mark_used(&mut self, r: AggRef, batch: usize) {
        self.used_for_pruning.entry(r).or_insert(batch);
    }

    /// The first batch at which `r`'s range pruned a tuple (since the last
    /// restored checkpoint), if any.
    pub fn first_used(&self, r: &AggRef) -> Option<usize> {
        self.used_for_pruning.get(r).copied()
    }

    /// Earliest first-use batch over attributes not in `barred` — the
    /// oldest batch a future recovery could still target (checkpoint
    /// retention; permanently quarantined attributes no longer drive
    /// recovery). `None` when no live attribute has pruned.
    pub fn min_live_first_use(&self, barred: &std::collections::HashSet<AggRef>) -> Option<usize> {
        let mut min: Option<usize> = None;
        for (r, b) in self.used_for_pruning.iter() {
            if barred.contains(r) {
                continue;
            }
            min = Some(min.map_or(*b, |m: usize| m.min(*b)));
        }
        min
    }

    /// Build a `Pending` lineage cell for a computed uncertain attribute:
    /// capture the lineage function and the folded row (§6.1). The captured
    /// row is narrowed to the columns the expression references.
    pub fn make_thunk(expr: &Arc<Expr>, row: &ORow) -> Value {
        // Content token: a deterministic digest of the lineage expression and
        // the captured operand row, so cell identity survives re-creation and
        // never depends on allocation addresses.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{expr:?}").hash(&mut h);
        row.values.hash(&mut h);
        Value::Pending(PendingCell::new(
            Arc::new(ThunkPayload {
                expr: expr.clone(),
                row: row.values.clone(),
            }),
            h.finish(),
        ))
    }
}

impl RefResolver for AggRegistry {
    fn resolve(&self, r: &AggRef, mode: RefMode) -> Value {
        self.derefs.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            f.inject_deref_panic();
        }
        let Some(entry) = self.groups.get(&(r.agg, r.key.clone())) else {
            return Value::Null;
        };
        match mode {
            RefMode::Current => entry.scaled_current(r.column as usize),
            RefMode::Trial(t) => {
                let c = r.column as usize;
                let s = entry.scale.get(c).copied().unwrap_or(1.0);
                entry
                    .trials
                    .get(c)
                    .and_then(|tr| tr.get(t).copied())
                    .map(|x| Value::Float(x * s))
                    .unwrap_or(Value::Null)
            }
        }
    }

    fn resolve_pending(&self, cell: &PendingCell, mode: RefMode) -> Value {
        self.derefs.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            f.inject_deref_panic();
        }
        let Some(thunk) = cell.payload.downcast_ref::<ThunkPayload>() else {
            return Value::Null;
        };
        let row = iolap_relation::Row {
            values: thunk.row.clone(),
            mult: 1.0,
        };
        let ctx = EvalContext::with_resolver(self).with_mode(mode);
        thunk.expr.eval(&row, &ctx).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_engine::{ArithOp, CmpOp};

    fn key() -> Arc<[Value]> {
        Arc::from(Vec::<Value>::new())
    }

    fn aref(agg: u32, column: u16) -> AggRef {
        AggRef {
            agg,
            column,
            key: key(),
        }
    }

    #[test]
    fn publish_and_resolve_current_and_trials() {
        let mut reg = AggRegistry::new();
        reg.publish(
            0,
            key(),
            vec![Value::Float(37.0)],
            vec![Arc::from(vec![35.0, 36.0, 39.0])],
            2.0,
        );
        let r = aref(0, 0);
        assert_eq!(reg.resolve(&r, RefMode::Current), Value::Float(37.0));
        assert_eq!(reg.resolve(&r, RefMode::Trial(2)), Value::Float(39.0));
        assert_eq!(reg.resolve(&r, RefMode::Trial(99)), Value::Null);
    }

    #[test]
    fn unknown_ref_resolves_null() {
        let reg = AggRegistry::new();
        assert_eq!(reg.resolve(&aref(9, 0), RefMode::Current), Value::Null);
        assert_eq!(reg.range(&aref(9, 0)), None);
    }

    #[test]
    fn ranges_track_and_shrink() {
        let mut reg = AggRegistry::new();
        reg.publish(
            0,
            key(),
            vec![Value::Float(37.0)],
            vec![Arc::from(vec![30.0, 44.0])],
            0.0,
        );
        let r0 = reg.range(&aref(0, 0)).unwrap();
        let outs = reg.publish(
            0,
            key(),
            vec![Value::Float(36.0)],
            vec![Arc::from(vec![33.0, 40.0])],
            0.0,
        );
        assert_eq!(outs, vec![RangeOutcome::Ok]);
        let r1 = reg.range(&aref(0, 0)).unwrap();
        assert!(r0.covers(&r1));
    }

    #[test]
    fn failure_reported_on_escape() {
        let mut reg = AggRegistry::new();
        reg.publish(
            0,
            key(),
            vec![Value::Float(10.0)],
            vec![Arc::from(vec![9.0, 11.0])],
            0.0,
        );
        let outs = reg.publish(
            0,
            key(),
            vec![Value::Float(50.0)],
            vec![Arc::from(vec![49.0, 51.0])],
            0.0,
        );
        assert!(matches!(outs[0], RangeOutcome::Failure { .. }));
    }

    #[test]
    fn thunk_resolves_through_registry() {
        // Lineage function: 0.2 * AVG, with the AVG arriving by ref.
        let mut reg = AggRegistry::new();
        reg.publish(
            1,
            key(),
            vec![Value::Float(50.0)],
            vec![Arc::from(vec![45.0, 55.0])],
            2.0,
        );
        let expr = Arc::new(Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(Expr::Lit(Value::Float(0.2))),
            right: Box::new(Expr::Col(0)),
        });
        let row = ORow::new(vec![Value::Ref(aref(1, 0))]);
        let cell = AggRegistry::make_thunk(&expr, &row);
        assert_eq!(
            reg.resolve_pending(
                match &cell {
                    Value::Pending(c) => c,
                    _ => panic!(),
                },
                RefMode::Current
            ),
            Value::Float(10.0)
        );
        // Trial mode pulls trial values through the thunk.
        assert_eq!(
            reg.resolve_pending(
                match &cell {
                    Value::Pending(c) => c,
                    _ => panic!(),
                },
                RefMode::Trial(0)
            ),
            Value::Float(9.0)
        );
        // And a comparison through EvalContext sees the thunk transparently.
        let pred = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Col(1)),
        };
        let t = iolap_relation::Row {
            values: vec![Value::Float(5.0), cell].into(),
            mult: 1.0,
        };
        let ctx = EvalContext::with_resolver(&reg);
        assert!(pred.eval_predicate(&t, &ctx).unwrap()); // 5 < 10
    }
}
