//! Online operators: the delta-update algorithm (§4.2) with tuple-
//! uncertainty partitioning (§5) and lazy lineage evaluation (§6).
//!
//! Operators form a tree mirroring the logical plan. Each batch, the driver
//! calls [`OnlineOp::process`] on the root; operators pull from children and
//! emit [`BatchData`] on the dual certain/uncertain channels. Stateful
//! operators (SELECT over uncertain predicates, JOIN, semi-join, AGGREGATE)
//! own exactly the states prescribed by §4.2/§5.2, and the whole tree is
//! `Clone` so the driver can checkpoint it for §5.1 failure recovery.

use crate::channel::{BatchData, ORow};
use crate::classify::{classify, collect_refs, Decision};
use crate::ops_agg::AggregateOp;
use crate::ops_join::{JoinOp, SemiJoinOp};
use crate::registry::AggRegistry;
use iolap_bootstrap::poisson::block_trial_weights;
use iolap_bootstrap::RangeOutcome;
use iolap_engine::{CmpOp, EngineError, EvalContext, Expr, RefMode};
use iolap_relation::kernels::filter::{filter_cmp_value, CmpKind};
use iolap_relation::{Column, Relation, Schema, SelVec, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Per-batch instrumentation (drives Figures 8(e,f), 9(a–c), 10(c,d)).
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Tuples re-evaluated this batch: non-deterministic-set rows plus
    /// uncertain-channel rows reprocessed downstream.
    pub recomputed_tuples: usize,
    /// Bytes "shipped": rows consumed by shuffle-boundary operators (joins,
    /// aggregates) plus registry broadcasts.
    pub shipped_bytes: usize,
    /// Range-integrity failures observed this batch.
    pub failures: usize,
}

/// Mutable context threaded through one batch's processing.
pub struct BatchCtx<'a> {
    /// The shared aggregate registry (lazy-evaluation broadcast table).
    pub registry: &'a mut AggRegistry,
    /// Current batch index (0-based).
    pub batch_index: usize,
    /// Result-scaling multiplicity `m_i = |D|/|D_i|` (§2).
    pub scale: f64,
    /// Variation-range slack `ε`.
    pub slack: f64,
    /// Bootstrap trial count.
    pub trials: usize,
    /// OPT1: tuple-uncertainty partitioning enabled.
    pub opt1: bool,
    /// OPT2: lineage propagation + lazy evaluation enabled.
    pub opt2: bool,
    /// True on the final batch (stream completes).
    pub last_batch: bool,
    /// This batch's delta of the streamed relation.
    pub stream_delta: &'a Relation,
    /// Name of the streamed relation (lowercase).
    pub stream_table: &'a str,
    /// Catalog for dimension scans.
    pub catalog: &'a iolap_relation::Catalog,
    /// Seed for bootstrap draws.
    pub seed: u64,
    /// Worker threads for parallel sketch folding (1 = sequential).
    pub parallelism: usize,
    /// Shard pool for scale-out fold dispatch; `None` (the production
    /// default) folds every partition in-process. The partition-stable
    /// grid ([`crate::shard`]) keeps results bit-identical either way.
    pub shards: Option<&'a dyn crate::shard::ShardExec>,
    /// Instrumentation.
    pub stats: BatchStats,
    /// Named per-operator counters and spans for this batch (see
    /// [`crate::metrics`] for the naming convention).
    pub metrics: crate::metrics::Metrics,
    /// Range outcomes collected from aggregate publications, tagged with
    /// the attribute they belong to.
    pub outcomes: Vec<(iolap_relation::AggRef, RangeOutcome)>,
    /// Fault-injection hooks; `None` (the production default) unless the
    /// driver's config carries a `FaultPlan`.
    pub faults: Option<&'a crate::faults::FaultInjector>,
    /// Causal trace journal; `None` (the production default) unless the
    /// driver's config enables a [`crate::trace::TraceMode`]. Same gating
    /// discipline as `faults`: disabled cost is one pointer check per
    /// operator call.
    pub trace: Option<&'a crate::trace::Tracer>,
    /// Innermost open trace span (the parent for new operator spans);
    /// meaningless when `trace` is `None`.
    pub cur_span: crate::trace::SpanId,
}

/// Handle for an open operator trace span; close with
/// [`BatchCtx::close_op`]. `Copy` and inert when tracing is off.
#[derive(Clone, Copy, Debug)]
pub struct SpanScope {
    id: crate::trace::SpanId,
    prev: crate::trace::SpanId,
    name: &'static str,
}

impl SpanScope {
    /// The no-op scope returned when tracing is disabled.
    pub const NONE: SpanScope = SpanScope {
        id: crate::trace::SpanId::NONE,
        prev: crate::trace::SpanId::NONE,
        name: "",
    };
}

impl BatchCtx<'_> {
    /// Evaluation context resolving lineage against the registry.
    pub fn eval(&self) -> EvalContext<'_> {
        EvalContext::with_resolver(self.registry)
    }

    /// Open an operator span under the innermost open span. Every
    /// `OnlineOp::process` implementation must call this on entry (lint
    /// L005) and pair it with [`BatchCtx::close_op`] on its success
    /// paths; a span left open by an error propagation shows up in the
    /// flight recorder as the operator that was in flight when the batch
    /// died — which is the point.
    #[inline]
    pub fn op_span(&mut self, name: &'static str) -> SpanScope {
        match self.trace {
            Some(t) => {
                let prev = self.cur_span;
                let id = t.begin(name, self.batch_index, prev);
                self.cur_span = id;
                SpanScope { id, prev, name }
            }
            None => SpanScope::NONE,
        }
    }

    /// Close an operator span with payload count `n` (rows produced).
    #[inline]
    pub fn close_op(&mut self, scope: SpanScope, n: u64) {
        if let Some(t) = self.trace {
            if scope.id != crate::trace::SpanId::NONE {
                t.end(scope.name, self.batch_index, scope.id, scope.prev, n);
                self.cur_span = scope.prev;
            }
        }
    }

    /// Record a point event under the innermost open span.
    #[inline]
    pub fn trace_instant(&mut self, name: &'static str, n: u64, detail: &str) {
        if let Some(t) = self.trace {
            t.instant(name, self.batch_index, self.cur_span, n, detail);
        }
    }
}

/// An online operator tree node.
#[derive(Clone, Debug)]
pub enum OnlineOp {
    /// Base-table scan (streamed or dimension).
    Scan(ScanOp),
    /// Filter with optional uncertainty partitioning.
    Select(SelectOp),
    /// Projection with lineage-preserving cell modes.
    Project(ProjectOp),
    /// Symmetric delta hash join.
    Join(JoinOp),
    /// Semi-join for `IN (SELECT …)`.
    SemiJoin(SemiJoinOp),
    /// `UNION ALL` of children.
    Union(UnionOp),
    /// Grouped aggregation with sketch state and registry publication.
    Aggregate(AggregateOp),
}

impl OnlineOp {
    /// Process one batch.
    pub fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        match self {
            OnlineOp::Scan(op) => op.process(ctx),
            OnlineOp::Select(op) => op.process(ctx),
            OnlineOp::Project(op) => op.process(ctx),
            OnlineOp::Join(op) => op.process(ctx),
            OnlineOp::SemiJoin(op) => op.process(ctx),
            OnlineOp::Union(op) => op.process(ctx),
            OnlineOp::Aggregate(op) => op.process(ctx),
        }
    }

    /// Rough state footprint: `(join_bytes, other_bytes)`, recursive
    /// (Fig 9(b)/10(c) accounting).
    pub fn state_bytes(&self) -> (usize, usize) {
        let own = match self {
            OnlineOp::Scan(_) => (0, 0),
            OnlineOp::Select(op) => (0, op.state_bytes()),
            OnlineOp::Project(_) => (0, 0),
            OnlineOp::Join(op) => (op.state_bytes(), 0),
            OnlineOp::SemiJoin(op) => (op.state_bytes(), 0),
            OnlineOp::Union(_) => (0, 0),
            OnlineOp::Aggregate(op) => (0, op.state_bytes()),
        };
        let mut total = own;
        for c in self.children() {
            let (j, o) = c.state_bytes();
            total.0 += j;
            total.1 += o;
        }
        total
    }

    /// EXPLAIN-style rendering of the online operator tree, with the
    /// §4.2/§5.2 state annotations that distinguish it from the logical
    /// plan (uncertain predicates, streamed scans).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let line = match self {
            OnlineOp::Scan(op) => format!(
                "OnlineScan {}{}",
                op.table,
                if op.streamed { " [streamed]" } else { "" }
            ),
            OnlineOp::Select(op) => format!(
                "OnlineSelect {:?}{}",
                op.predicate,
                if op.uncertain_pred {
                    " [uncertainty-partitioned]"
                } else {
                    ""
                }
            ),
            OnlineOp::Project(op) => {
                let modes: Vec<&str> = op
                    .modes
                    .iter()
                    .map(|m| match m {
                        ProjMode::Plain(_) => "plain",
                        ProjMode::PassCell(_) => "ref",
                        ProjMode::Thunk(_) => "thunk",
                    })
                    .collect();
                format!("OnlineProject [{}]", modes.join(", "))
            }
            OnlineOp::Join(op) => {
                if op.left_keys.is_empty() {
                    "OnlineCrossJoin".to_string()
                } else {
                    format!("OnlineHashJoin {:?} = {:?}", op.left_keys, op.right_keys)
                }
            }
            OnlineOp::SemiJoin(op) => {
                format!("OnlineSemiJoin {:?} IN {:?}", op.left_keys, op.right_keys)
            }
            OnlineOp::Union(_) => "OnlineUnionAll".to_string(),
            OnlineOp::Aggregate(op) => format!(
                "OnlineAggregate[id={}] group={:?}{}",
                op.agg_id,
                op.group_cols,
                if op.arg_uncertain.iter().any(|b| *b) {
                    " [unsketchable args]"
                } else {
                    ""
                }
            ),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.explain_into(out, indent + 1);
        }
    }

    /// Child operators, in plan order (introspection hook for the static
    /// plan verifier and for `explain`).
    pub fn children(&self) -> Vec<&OnlineOp> {
        match self {
            OnlineOp::Scan(_) => vec![],
            OnlineOp::Select(op) => vec![&op.child],
            OnlineOp::Project(op) => vec![&op.child],
            OnlineOp::Join(op) => vec![&op.left, &op.right],
            OnlineOp::SemiJoin(op) => vec![&op.left, &op.right],
            OnlineOp::Union(op) => op.children.iter().collect(),
            OnlineOp::Aggregate(op) => vec![&op.child],
        }
    }

    /// Short node label used in verifier diagnostics' operator paths, e.g.
    /// `Aggregate[id=0]` or `Scan(sessions)`.
    pub fn kind(&self) -> String {
        match self {
            OnlineOp::Scan(op) => format!("Scan({})", op.table),
            OnlineOp::Select(_) => "Select".to_string(),
            OnlineOp::Project(_) => "Project".to_string(),
            OnlineOp::Join(_) => "Join".to_string(),
            OnlineOp::SemiJoin(_) => "SemiJoin".to_string(),
            OnlineOp::Union(_) => "Union".to_string(),
            OnlineOp::Aggregate(op) => format!("Aggregate[id={}]", op.agg_id),
        }
    }

    /// Names of the state components this node snapshots into checkpoints
    /// for §5.1 failure recovery, as *configured* (non-recursive). Empty for
    /// operators configured stateless. The plan verifier cross-checks this
    /// against the states §4.2/§5.2 *require*: PROJECT and UNION must be ∅,
    /// while streamed scans, uncertainty-partitioned selects, joins and
    /// aggregates must all report their replay-critical state here.
    pub fn checkpoint_state(&self) -> Vec<&'static str> {
        match self {
            OnlineOp::Scan(op) => {
                if op.streamed {
                    vec!["scan.cursor"]
                } else {
                    vec!["scan.dimension_done"]
                }
            }
            OnlineOp::Select(op) => {
                if op.uncertain_pred {
                    vec!["select.nondeterministic_set"]
                } else {
                    vec![]
                }
            }
            OnlineOp::Project(_) => vec![],
            OnlineOp::Join(_) => vec!["join.left_accumulator", "join.right_accumulator"],
            OnlineOp::SemiJoin(_) => vec!["semijoin.certain_keys", "semijoin.pending"],
            OnlineOp::Union(_) => vec![],
            OnlineOp::Aggregate(_) => {
                vec!["agg.sketch", "agg.unsketchable_rows", "agg.emitted_certain"]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// Base-table scan.
///
/// Streamed scans emit each mini-batch's rows once on the certain channel —
/// the accumulated sampling function `s(t; i)` is monotone (§4.1), so a seen
/// tuple's multiplicity never changes. Each streamed row gets deterministic
/// Poisson(1) trial weights keyed by `(seed, table, row ordinal)`, so that
/// re-evaluations across batches see identical resamples (and so that two
/// scans of the same table — self-join shaped queries like SBI — resample
/// coherently).
#[derive(Clone, Debug)]
pub struct ScanOp {
    /// Catalog table name (lowercase).
    pub table: String,
    /// Output schema.
    pub schema: Schema,
    /// Whether this scan streams mini-batches.
    pub streamed: bool,
    rows_emitted: u64,
    dimension_done: bool,
}

impl ScanOp {
    /// New scan operator.
    pub fn new(table: String, schema: Schema, streamed: bool) -> Self {
        ScanOp {
            table: table.to_ascii_lowercase(),
            schema,
            streamed,
            rows_emitted: 0,
            dimension_done: false,
        }
    }

    fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Scan");
        let mut out = BatchData::empty(self.schema.clone());
        if self.streamed {
            debug_assert_eq!(self.table, ctx.stream_table);
            let table_salt = {
                let mut h = DefaultHasher::new();
                self.table.hash(&mut h);
                h.finish()
            };
            // Vectorized Poisson kernel: draw the whole mini-batch's trial
            // weights in one row-major block (bit-identical per (seed, row,
            // trial) to the per-row path), then slice per-row `Arc`s off it.
            let rows = ctx.stream_delta.rows();
            let wsp = crate::metrics::Span::start();
            let block = block_trial_weights(
                ctx.seed ^ table_salt,
                self.rows_emitted,
                rows.len(),
                ctx.trials,
            );
            wsp.stop(&mut ctx.metrics, "scan.weights_ns");
            self.rows_emitted += rows.len() as u64;
            if ctx.trials == 0 {
                for row in rows {
                    out.delta_certain.push(ORow {
                        values: row.values.clone(),
                        mult: row.mult,
                        weights: Some(Vec::new().into()),
                    });
                }
            } else {
                for (row, chunk) in rows.iter().zip(block.chunks_exact(ctx.trials)) {
                    out.delta_certain.push(ORow {
                        values: row.values.clone(),
                        mult: row.mult,
                        weights: Some(Arc::from(chunk)),
                    });
                }
            }
            out.exhausted = ctx.last_batch;
        } else {
            if !self.dimension_done {
                let rel = ctx.catalog.get(&self.table)?;
                for row in rel.rows() {
                    out.delta_certain.push(ORow {
                        values: row.values.clone(),
                        mult: row.mult,
                        weights: None,
                    });
                }
                self.dimension_done = true;
            }
            out.exhausted = true;
        }
        ctx.metrics.add("scan.rows", out.delta_certain.len() as u64);
        ctx.close_op(sp, out.delta_certain.len() as u64);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

/// Filter operator.
///
/// With a deterministic predicate this is a plain filter on both channels.
/// With a predicate over uncertain attributes it implements §5.2: incoming
/// certain rows are classified against variation ranges into the
/// near-deterministic sets (decided forever: emitted once or dropped) and
/// the non-deterministic set `U_i` (saved in state, re-evaluated every
/// batch, emitted on the uncertain channel while currently satisfied).
/// Ranges shrink monotonically, so saved rows are *promoted* out of `U` over
/// time — the sub-linear recomputation of Fig 8(e,f).
#[derive(Clone, Debug)]
pub struct SelectOp {
    /// Input operator.
    pub child: Box<OnlineOp>,
    /// Compiled predicate.
    pub predicate: Expr,
    /// Compile-time: predicate reads uncertain attributes (§4.1 tagging).
    pub uncertain_pred: bool,
    state: Vec<ORow>,
}

impl SelectOp {
    /// New select operator.
    pub fn new(child: OnlineOp, predicate: Expr, uncertain_pred: bool) -> Self {
        SelectOp {
            child: Box::new(child),
            predicate,
            uncertain_pred,
            state: Vec::new(),
        }
    }

    /// Rows currently held in the non-deterministic set.
    pub fn nondeterministic_len(&self) -> usize {
        self.state.len()
    }

    fn state_bytes(&self) -> usize {
        self.state.iter().map(ORow::approx_bytes).sum()
    }

    fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Select");
        let input = self.child.process(ctx)?;
        let mut out = BatchData::empty(input.schema.clone());

        if !self.uncertain_pred {
            let filter_span = crate::metrics::Span::start();
            let plan = vector_filter_plan(&self.predicate);
            filter_channel(
                &self.predicate,
                plan,
                input.delta_certain,
                &mut out.delta_certain,
                ctx,
            )?;
            filter_channel(
                &self.predicate,
                plan,
                input.uncertain,
                &mut out.uncertain,
                ctx,
            )?;
            filter_span.stop(&mut ctx.metrics, "select.filter_ns");
            out.exhausted = input.exhausted;
            ctx.close_op(sp, (out.delta_certain.len() + out.uncertain.len()) as u64);
            return Ok(out);
        }

        // Uncertain predicate: classify fresh certain rows.
        let classify_span = crate::metrics::Span::start();
        let fresh = input.delta_certain.len();
        for row in input.delta_certain {
            let decision = if ctx.opt1 {
                classify(&self.predicate, &row.to_row(), ctx.registry)
            } else {
                Decision::Uncertain
            };
            if decision != Decision::Uncertain {
                mark_pruning_refs(&self.predicate, &row, ctx);
            }
            match decision {
                Decision::AlwaysTrue => out.delta_certain.push(row),
                Decision::AlwaysFalse => {}
                Decision::Uncertain => self.state.push(row),
            }
        }

        // Re-evaluate the saved non-deterministic set — THE recomputation
        // the optimizations minimize.
        ctx.stats.recomputed_tuples += self.state.len();
        if ctx.opt1 {
            // Every fresh row and every saved row is checked against the
            // variation ranges once this batch.
            ctx.metrics
                .add("range.checks", (fresh + self.state.len()) as u64);
        }
        if !ctx.opt2 {
            // OPT2 ablation: without lineage + lazy evaluation, updating an
            // uncertain attribute means regenerating the tuple (§4.3:
            // "deleting the old tuple followed by inserting a tuple …
            // generating a new tuple requires going through the entire
            // plan"). We charge that cost by materializing a fresh copy of
            // every saved row with all lineage cells resolved.
            let regenerated: Vec<ORow> = self
                .state
                .iter()
                .map(|row| regenerate_row(row, ctx.registry))
                .collect();
            drop(regenerated);
        }
        let mut promoted = Vec::new();
        let mut current = Vec::new();
        let mut decided = Vec::new();
        self.state.retain(|row| {
            let decision = if ctx.opt1 {
                classify(&self.predicate, &row.to_row(), ctx.registry)
            } else {
                Decision::Uncertain
            };
            match decision {
                Decision::AlwaysTrue => {
                    decided.push(row.clone());
                    promoted.push(row.clone());
                    false
                }
                Decision::AlwaysFalse => {
                    decided.push(row.clone());
                    false
                }
                Decision::Uncertain => {
                    current.push(row.clone());
                    true
                }
            }
        });
        for row in &decided {
            mark_pruning_refs(&self.predicate, row, ctx);
        }
        let promoted_count = promoted.len();
        let dropped = decided.len() - promoted_count;
        out.delta_certain.extend(promoted);
        // Uncertain-channel input rows are counted where they are saved
        // (upstream state); filtering them here is derived work.
        let ectx = ctx.eval();
        for row in current {
            if self.predicate.eval_predicate(&row.to_row(), &ectx)? {
                out.uncertain.push(row);
            }
        }
        for row in input.uncertain {
            if self.predicate.eval_predicate(&row.to_row(), &ectx)? {
                out.uncertain.push(row);
            }
        }

        ctx.metrics.add("select.fresh_rows", fresh as u64);
        ctx.metrics.add("select.promoted", promoted_count as u64);
        ctx.metrics.add("select.dropped", dropped as u64);
        ctx.metrics
            .add("select.nondet_rows", self.state.len() as u64);
        classify_span.stop(&mut ctx.metrics, "select.classify_ns");
        if ctx.opt1 {
            ctx.trace_instant("range.check", (fresh + self.state.len()) as u64, "");
        }

        out.exhausted = input.exhausted && self.state.is_empty() && out.uncertain.is_empty();
        ctx.close_op(sp, (out.delta_certain.len() + out.uncertain.len()) as u64);
        Ok(out)
    }
}

/// Recognize `Col ϑ Lit` / `Lit ϑ Col` predicate shapes that the typed
/// comparison kernels can run without materializing rows. Anything else
/// (arithmetic, conjunctions, lineage literals) stays on the row path.
fn vector_filter_plan(pred: &Expr) -> Option<(usize, CmpKind, &Value)> {
    let Expr::Cmp { op, left, right } = pred else {
        return None;
    };
    let kind = match op {
        CmpOp::Eq => CmpKind::Eq,
        CmpOp::Neq => CmpKind::Ne,
        CmpOp::Lt => CmpKind::Lt,
        CmpOp::Le => CmpKind::Le,
        CmpOp::Gt => CmpKind::Gt,
        CmpOp::Ge => CmpKind::Ge,
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Col(i), Expr::Lit(v)) => Some((*i, kind, v)),
        (Expr::Lit(v), Expr::Col(i)) => Some((*i, kind.mirror(), v)),
        _ => None,
    }
}

/// Vectorized filter of one channel: build the predicate column once, run
/// the comparison kernel to a selection vector, and move the selected rows
/// into `out`. Returns the rows untouched (`Err`) when the kernel can't
/// decide — lineage cells in the column or in the literal — so the caller
/// falls back to row-at-a-time evaluation with identical semantics.
fn filter_channel_vectorized(
    rows: Vec<ORow>,
    col: usize,
    op: CmpKind,
    lit: &Value,
    out: &mut Vec<ORow>,
) -> Result<(), Vec<ORow>> {
    if rows.is_empty() {
        return Ok(());
    }
    let (column, saw_lineage) = Column::from_cells(rows.iter().map(|r| &r.values[col]));
    if saw_lineage {
        return Err(rows);
    }
    let mut sel = SelVec::with_capacity(rows.len());
    if !filter_cmp_value(&column, op, lit, &mut sel) {
        return Err(rows);
    }
    let mut want = sel.iter();
    let mut next = want.next();
    for (i, row) in rows.into_iter().enumerate() {
        if next == Some(i) {
            out.push(row);
            next = want.next();
        }
    }
    Ok(())
}

/// Filter one channel of a deterministic SELECT: kernel path when the
/// predicate shape matched, row-at-a-time `eval_predicate` otherwise.
fn filter_channel(
    predicate: &Expr,
    plan: Option<(usize, CmpKind, &Value)>,
    rows: Vec<ORow>,
    out: &mut Vec<ORow>,
    ctx: &BatchCtx<'_>,
) -> Result<(), EngineError> {
    let rows = match plan {
        Some((col, op, lit)) => match filter_channel_vectorized(rows, col, op, lit, out) {
            Ok(()) => return Ok(()),
            Err(rows) => rows,
        },
        None => rows,
    };
    for row in rows {
        if predicate.eval_predicate(&row.to_row(), &ctx.eval())? {
            out.push(row);
        }
    }
    Ok(())
}

/// Record in the registry every lineage ref a decisive classification
/// depended on (gates failure recovery, §5.1).
fn mark_pruning_refs(predicate: &Expr, row: &ORow, ctx: &mut BatchCtx<'_>) {
    let mut refs = Vec::new();
    collect_refs(predicate, &row.to_row(), &mut refs);
    for r in refs {
        ctx.registry.mark_used(r, ctx.batch_index);
    }
}

/// Materialize a fresh copy of a row with every lineage cell resolved to its
/// current value (OPT2-off cost model; also used by the sink).
pub fn regenerate_row(row: &ORow, registry: &AggRegistry) -> ORow {
    let ctx = EvalContext::with_resolver(registry).with_mode(RefMode::Current);
    let values: Vec<Value> = row
        .values
        .iter()
        .map(|v| match v {
            Value::Ref(_) | Value::Pending(_) => {
                let probe = iolap_relation::Row {
                    values: vec![v.clone()].into(),
                    mult: 1.0,
                };
                Expr::Col(0).eval(&probe, &ctx).unwrap_or(Value::Null)
            }
            other => other.clone(),
        })
        .collect();
    ORow {
        values: values.into(),
        mult: row.mult,
        weights: row.weights.clone(),
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// How one projected column is produced (compile-time, from §4.1 tags).
#[derive(Clone, Debug)]
pub enum ProjMode {
    /// Deterministic expression: evaluate eagerly.
    Plain(Expr),
    /// Bare reference to an uncertain column: copy the lineage cell.
    PassCell(usize),
    /// Computation over uncertain columns: emit a folded-lineage thunk
    /// (§6.1) so consumers evaluate lazily.
    Thunk(Arc<Expr>),
}

/// Projection operator. Stateless (§4.2: "the operator states for PROJECT
/// and UNION are always ∅").
#[derive(Clone, Debug)]
pub struct ProjectOp {
    /// Input operator.
    pub child: Box<OnlineOp>,
    /// Per-output-column production modes.
    pub modes: Vec<ProjMode>,
    /// Output schema.
    pub schema: Schema,
}

impl ProjectOp {
    /// New projection.
    pub fn new(child: OnlineOp, modes: Vec<ProjMode>, schema: Schema) -> Self {
        ProjectOp {
            child: Box::new(child),
            modes,
            schema,
        }
    }

    fn project_row(&self, row: &ORow, ctx: &BatchCtx<'_>) -> Result<ORow, EngineError> {
        let r = row.to_row();
        let mut values = Vec::with_capacity(self.modes.len());
        for mode in &self.modes {
            let v = match mode {
                ProjMode::Plain(e) => e.eval(&r, &ctx.eval())?,
                ProjMode::PassCell(i) => row.values[*i].clone(),
                ProjMode::Thunk(e) => AggRegistry::make_thunk(e, row),
            };
            values.push(v);
        }
        Ok(ORow {
            values: values.into(),
            mult: row.mult,
            weights: row.weights.clone(),
        })
    }

    fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Project");
        let input = self.child.process(ctx)?;
        let rows = input.delta_certain.len() + input.uncertain.len();
        let mut out = BatchData::empty(self.schema.clone());
        for row in &input.delta_certain {
            out.delta_certain.push(self.project_row(row, ctx)?);
        }
        for row in &input.uncertain {
            out.uncertain.push(self.project_row(row, ctx)?);
        }
        ctx.metrics.add("project.rows", rows as u64);
        out.exhausted = input.exhausted;
        ctx.close_op(sp, rows as u64);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

/// `UNION ALL`: concatenates children's channels. Stateless.
#[derive(Clone, Debug)]
pub struct UnionOp {
    /// Input operators.
    pub children: Vec<OnlineOp>,
}

impl UnionOp {
    /// New union.
    pub fn new(children: Vec<OnlineOp>) -> Self {
        UnionOp { children }
    }

    fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Union");
        let mut outputs = Vec::with_capacity(self.children.len());
        for c in &mut self.children {
            outputs.push(c.process(ctx)?);
        }
        let schema = outputs[0].schema.clone();
        let mut out = BatchData::empty(schema);
        out.exhausted = true;
        for o in outputs {
            out.delta_certain.extend(o.delta_certain);
            out.uncertain.extend(o.uncertain);
            out.exhausted &= o.exhausted;
        }
        ctx.close_op(sp, (out.delta_certain.len() + out.uncertain.len()) as u64);
        Ok(out)
    }
}
