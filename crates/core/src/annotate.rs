//! Compile-time uncertainty annotation (§4.1).
//!
//! Implements the paper's uncertainty-propagation rules to tag, for every
//! operator output in a plan:
//!
//! * `attr_uncertain[c]` — the attribute-uncertainty tag `uA` per column:
//!   whether column `c`'s value may change across batches;
//! * `tuple_uncertain` — whether tuples of this output can carry tuple
//!   uncertainty `u#` (changing multiplicity).
//!
//! The rules are exactly §4.1's: streamed scans introduce tuple
//! uncertainty; AGGREGATE converts input tuple/attribute uncertainty into
//! output attribute uncertainty; SELECT over uncertain attributes introduces
//! tuple uncertainty; JOIN/UNION propagate both. The annotation drives the
//! online rewriter: which aggregate outputs get lineage refs, which selects
//! need variation-range partitioning, which aggregate inputs cannot be
//! sketched, and the §3.3 checks (deterministic join/group keys).

use iolap_engine::{Expr, Plan};
use std::collections::HashSet;
use std::fmt;

/// Uncertainty annotation of one operator's output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpAnnotation {
    /// `uA` per output column.
    pub attr_uncertain: Vec<bool>,
    /// Whether output tuples can have uncertain multiplicity (`u#`).
    pub tuple_uncertain: bool,
    /// Whether the operator's subtree reads the streamed relation (used for
    /// result scaling `m_i`).
    pub reads_stream: bool,
}

impl OpAnnotation {
    /// True if `expr` (over this output's schema) references any uncertain
    /// column.
    pub fn expr_uncertain(&self, expr: &Expr) -> bool {
        let mut cols = Vec::new();
        expr.referenced_columns(&mut cols);
        cols.iter().any(|&c| self.attr_uncertain[c])
    }
}

/// Annotation errors — queries outside the supported class (§3.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnotateError {
    /// Join or semi-join key over an uncertain attribute.
    UncertainJoinKey(String),
    /// Group-by column over an uncertain attribute.
    UncertainGroupKey(String),
}

impl fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotateError::UncertainJoinKey(m) => write!(
                f,
                "approximate join keys are not supported under sampling (§3.3): {m}"
            ),
            AnnotateError::UncertainGroupKey(m) => write!(
                f,
                "approximate group-by keys are not supported under sampling (§3.3): {m}"
            ),
        }
    }
}

impl std::error::Error for AnnotateError {}

/// Annotate `plan` given the set of streamed table names. Returns the root
/// annotation; per-node annotations are produced by calling this on
/// sub-plans (the rewriter annotates during its own traversal).
pub fn annotate(plan: &Plan, streamed: &HashSet<String>) -> Result<OpAnnotation, AnnotateError> {
    match plan {
        Plan::Scan { table, schema } => {
            let is_streamed = streamed.contains(&table.to_ascii_lowercase());
            Ok(OpAnnotation {
                // Base-relation attributes are deterministic (§4.1).
                attr_uncertain: vec![false; schema.len()],
                // Streamed relations have u#(t) = T until each tuple is seen.
                tuple_uncertain: is_streamed,
                reads_stream: is_streamed,
            })
        }
        Plan::Select { input, predicate } => {
            let a = annotate(input, streamed)?;
            // SELECT: uA passes through; u# |= predicate over uncertain
            // attributes.
            let pred_uncertain = a.expr_uncertain(predicate);
            Ok(OpAnnotation {
                attr_uncertain: a.attr_uncertain.clone(),
                tuple_uncertain: a.tuple_uncertain || pred_uncertain,
                reads_stream: a.reads_stream,
            })
        }
        Plan::Project { input, exprs, .. } => {
            let a = annotate(input, streamed)?;
            // PROJECT: output column uncertain iff its expression reads an
            // uncertain input column; u# passes through.
            let attr_uncertain = exprs.iter().map(|e| a.expr_uncertain(e)).collect();
            Ok(OpAnnotation {
                attr_uncertain,
                tuple_uncertain: a.tuple_uncertain,
                reads_stream: a.reads_stream,
            })
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            ..
        } => {
            let l = annotate(left, streamed)?;
            let r = annotate(right, streamed)?;
            for k in left_keys {
                if l.expr_uncertain(k) {
                    return Err(AnnotateError::UncertainJoinKey(format!("{k:?}")));
                }
            }
            for k in right_keys {
                if r.expr_uncertain(k) {
                    return Err(AnnotateError::UncertainJoinKey(format!("{k:?}")));
                }
            }
            // JOIN: concatenated uA; u# = l.u# ∨ r.u#.
            let mut attr_uncertain = l.attr_uncertain.clone();
            attr_uncertain.extend(r.attr_uncertain.iter().copied());
            Ok(OpAnnotation {
                attr_uncertain,
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
            })
        }
        Plan::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = annotate(left, streamed)?;
            let r = annotate(right, streamed)?;
            for k in left_keys {
                if l.expr_uncertain(k) {
                    return Err(AnnotateError::UncertainJoinKey(format!("{k:?}")));
                }
            }
            for k in right_keys {
                if r.expr_uncertain(k) {
                    return Err(AnnotateError::UncertainJoinKey(format!("{k:?}")));
                }
            }
            Ok(OpAnnotation {
                attr_uncertain: l.attr_uncertain.clone(),
                tuple_uncertain: l.tuple_uncertain || r.tuple_uncertain,
                reads_stream: l.reads_stream || r.reads_stream,
            })
        }
        Plan::Union { inputs } => {
            // UNION: per-column OR; u# OR.
            let mut anns = inputs
                .iter()
                .map(|p| annotate(p, streamed))
                .collect::<Result<Vec<_>, _>>()?;
            let mut acc = anns.remove(0);
            for a in anns {
                for (x, y) in acc.attr_uncertain.iter_mut().zip(a.attr_uncertain) {
                    *x |= y;
                }
                acc.tuple_uncertain |= a.tuple_uncertain;
                acc.reads_stream |= a.reads_stream;
            }
            Ok(acc)
        }
        Plan::Aggregate {
            input,
            group_cols,
            aggs,
            ..
        } => {
            let a = annotate(input, streamed)?;
            for &g in group_cols {
                if a.attr_uncertain[g] {
                    return Err(AnnotateError::UncertainGroupKey(format!("column {g}")));
                }
            }
            // AGGREGATE: aggregate output columns are uncertain if any input
            // tuple is uncertain OR the argument reads uncertain attributes;
            // group columns stay deterministic. Output tuple uncertainty
            // follows the input's (a group is certain once it contains one
            // certain tuple: u#(t) = ⋀ u'#(t')).
            let mut attr_uncertain = vec![false; group_cols.len()];
            for call in aggs {
                let arg_uncertain = a.expr_uncertain(&call.input);
                attr_uncertain.push(a.tuple_uncertain || arg_uncertain);
            }
            Ok(OpAnnotation {
                attr_uncertain,
                tuple_uncertain: a.tuple_uncertain,
                reads_stream: a.reads_stream,
            })
        }
        Plan::Sort { input, .. } => annotate(input, streamed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_engine::{plan_sql, FunctionRegistry};
    use iolap_relation::{Catalog, DataType, Relation, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "sessions",
            Relation::empty(Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("buffer_time", DataType::Float),
                ("play_time", DataType::Float),
            ])),
        );
        c.register(
            "cities",
            Relation::empty(Schema::from_pairs(&[
                ("name", DataType::Str),
                ("state", DataType::Str),
            ])),
        );
        c
    }

    fn annotate_sql(sql: &str, streamed: &[&str]) -> Result<OpAnnotation, AnnotateError> {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let pq = plan_sql(sql, &c, &r).unwrap();
        let set: HashSet<String> = streamed.iter().map(|s| s.to_string()).collect();
        annotate(&pq.plan, &set)
    }

    #[test]
    fn streamed_aggregate_output_is_uncertain() {
        // Figure 3: AVG over the streamed Sessions relation → attribute
        // uncertainty at the aggregate output.
        let a = annotate_sql("SELECT AVG(buffer_time) FROM sessions", &["sessions"]).unwrap();
        assert_eq!(a.attr_uncertain, vec![true]);
        assert!(a.tuple_uncertain);
    }

    #[test]
    fn non_streamed_aggregate_is_deterministic() {
        let a = annotate_sql("SELECT COUNT(*) FROM cities", &["sessions"]).unwrap();
        assert_eq!(a.attr_uncertain, vec![false]);
        assert!(!a.tuple_uncertain);
    }

    #[test]
    fn sbi_propagation_matches_figure_3() {
        // The SBI query: the final AVG(play_time) is uncertain, and the
        // query carries tuple uncertainty throughout.
        let a = annotate_sql(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
            &["sessions"],
        )
        .unwrap();
        assert_eq!(a.attr_uncertain, vec![true]);
    }

    #[test]
    fn group_keys_stay_deterministic() {
        let a = annotate_sql(
            "SELECT session_id, SUM(play_time) FROM sessions GROUP BY session_id",
            &["sessions"],
        )
        .unwrap();
        assert_eq!(a.attr_uncertain, vec![false, true]);
    }

    #[test]
    fn join_with_dimension_keeps_dimension_columns_certain() {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let pq = plan_sql(
            "SELECT s.play_time, c.state FROM sessions s JOIN cities c ON s.session_id = c.name",
            &c,
            &r,
        );
        // Type-mismatched join key is fine for annotation purposes; planner
        // allows it. Use a realistic query instead if it failed.
        if let Ok(pq) = pq {
            let set: HashSet<String> = ["sessions".to_string()].into();
            let a = annotate(&pq.plan, &set).unwrap();
            assert_eq!(a.attr_uncertain, vec![false, false]);
            assert!(a.tuple_uncertain);
        }
    }
}
