//! The online query rewriter (§7 step 1, Appendix C).
//!
//! Compiles a logical [`Plan`] into the online operator tree, performing the
//! Appendix C rewriting:
//!
//! 1. annotate every operator with §4.1 uncertainty tags,
//! 2. piggyback bootstrap (scans attach per-trial multiplicities — our
//!    row-level equivalent of "inserting columns representing
//!    bootstrap-generated multiplicities"),
//! 3. replace operators with their online counterparts, configuring the
//!    §4.2/§5.2 states, and
//! 4. wire lineage propagation and lazy evaluation: uncertain aggregate
//!    outputs become `Ref` cells, computed uncertain projections become
//!    folded-lineage thunks (§6.1).

use crate::annotate::{annotate, AnnotateError, OpAnnotation};
use crate::ops::{OnlineOp, ProjMode, ProjectOp, ScanOp, SelectOp, UnionOp};
use crate::ops_agg::AggregateOp;
use crate::ops_join::{JoinOp, SemiJoinOp};
use crate::sink::{Presentation, Sink};
use iolap_engine::{Expr, Plan, PlannedQuery};
use iolap_relation::{Field, Schema};
use std::collections::HashSet;
use std::fmt;

/// Rewriter errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// Annotation rejected the query (§3.3 restrictions).
    Annotate(AnnotateError),
    /// Plan shape outside what the online engine supports.
    Unsupported(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Annotate(e) => write!(f, "{e}"),
            RewriteError::Unsupported(m) => write!(f, "unsupported online plan: {m}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<AnnotateError> for RewriteError {
    fn from(e: AnnotateError) -> Self {
        RewriteError::Annotate(e)
    }
}

/// A compiled online query: operator tree + sink.
#[derive(Clone, Debug)]
pub struct OnlineQuery {
    /// Root online operator.
    pub root: OnlineOp,
    /// Result sink.
    pub sink: Sink,
    /// Root annotation (drives result scaling).
    pub root_annotation: OpAnnotation,
}

/// Rewrite a planned query for online execution. `streamed` is the set of
/// relation names processed in mini-batches (§2: the user specifies which
/// input relations are streamed).
pub fn rewrite(pq: &PlannedQuery, streamed: &HashSet<String>) -> Result<OnlineQuery, RewriteError> {
    // Peel presentation (ORDER BY/LIMIT) into the sink. The planner places
    // Sort either at the very top (unions) or directly below the final
    // projection (single-block queries, where sort keys may reference
    // non-projected columns). In the latter case the sort keys are hoisted
    // into hidden output columns that the sink sorts by and strips.
    let (body, presentation, visible) = peel_presentation(&pq.plan);
    let body_ref = body.as_ref().unwrap_or(&pq.plan);
    let root_annotation = annotate(body_ref, streamed)?;
    let root = build(body_ref, streamed)?;
    // Streamed base rows reaching the output unaggregated must be scaled by
    // m_i per factor (§2's Q(D_i, m_i)); aggregate outputs scale internally
    // (extensive functions multiply by m_i at publish time).
    let stream_factor = stream_factor(body_ref, streamed);
    let sink = Sink::new(
        body_ref.schema().clone(),
        pq.output_names.clone(),
        presentation,
        stream_factor,
        visible,
    );
    Ok(OnlineQuery {
        root,
        sink,
        root_annotation,
    })
}

/// Peel ORDER BY/LIMIT off the plan top into a [`Presentation`]. Returns
/// `(replacement body, presentation, visible column count)`; the body is
/// `None` when the plan is already presentation-free.
fn peel_presentation(plan: &Plan) -> (Option<Plan>, Presentation, Option<usize>) {
    match plan {
        // Union-level sort: keys are over the output schema.
        Plan::Sort { input, keys, limit } => (
            Some((**input).clone()),
            Presentation {
                sort_keys: keys.clone(),
                limit: *limit,
            },
            None,
        ),
        // Single-block queries: Project over Sort. Hoist the sort keys into
        // hidden trailing output columns; the sink sorts by them and strips
        // them from the published relation.
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            if let Plan::Sort {
                input: inner,
                keys,
                limit,
            } = input.as_ref()
            {
                let visible = exprs.len();
                let mut new_exprs = exprs.clone();
                let mut fields: Vec<Field> = schema.fields().to_vec();
                let mut sort_keys = Vec::with_capacity(keys.len());
                for (k, (expr, asc)) in keys.iter().enumerate() {
                    new_exprs.push(expr.clone());
                    fields.push(Field::new(
                        format!("__sort{k}"),
                        iolap_engine::infer_type(expr, inner.schema()),
                    ));
                    sort_keys.push((Expr::Col(visible + k), *asc));
                }
                let body = Plan::Project {
                    input: inner.clone(),
                    exprs: new_exprs,
                    schema: Schema::new(fields),
                };
                return (
                    Some(body),
                    Presentation {
                        sort_keys,
                        limit: *limit,
                    },
                    Some(visible),
                );
            }
            (None, Presentation::default(), None)
        }
        _ => (None, Presentation::default(), None),
    }
}

/// Number of streamed base-row factors multiplying into each output row:
/// the power of `m_i` the sink applies to row multiplicities. Aggregates
/// reset the count (their group rows have multiplicity 1; scaling happens
/// inside extensive aggregate outputs).
fn stream_factor(plan: &Plan, streamed: &HashSet<String>) -> u32 {
    match plan {
        Plan::Scan { table, .. } => u32::from(streamed.contains(&table.to_ascii_lowercase())),
        Plan::Select { input, .. } | Plan::Sort { input, .. } => stream_factor(input, streamed),
        Plan::Project { input, .. } => stream_factor(input, streamed),
        Plan::Join { left, right, .. } => {
            stream_factor(left, streamed) + stream_factor(right, streamed)
        }
        Plan::SemiJoin { left, .. } => stream_factor(left, streamed),
        Plan::Union { inputs } => inputs
            .iter()
            .map(|p| stream_factor(p, streamed))
            .max()
            .unwrap_or(0),
        Plan::Aggregate { .. } => 0,
    }
}

fn build(plan: &Plan, streamed: &HashSet<String>) -> Result<OnlineOp, RewriteError> {
    Ok(match plan {
        Plan::Scan { table, schema } => {
            let is_streamed = streamed.contains(&table.to_ascii_lowercase());
            OnlineOp::Scan(ScanOp::new(table.clone(), schema.clone(), is_streamed))
        }
        Plan::Select { input, predicate } => {
            let ann = annotate(input, streamed)?;
            let child = build(input, streamed)?;
            let uncertain_pred = ann.expr_uncertain(predicate);
            OnlineOp::Select(SelectOp::new(child, predicate.clone(), uncertain_pred))
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let ann = annotate(input, streamed)?;
            let child = build(input, streamed)?;
            let modes = exprs
                .iter()
                .map(|e| {
                    if !ann.expr_uncertain(e) {
                        ProjMode::Plain(e.clone())
                    } else if let Expr::Col(i) = e {
                        ProjMode::PassCell(*i)
                    } else {
                        ProjMode::Thunk(std::sync::Arc::new(e.clone()))
                    }
                })
                .collect();
            OnlineOp::Project(ProjectOp::new(child, modes, schema.clone()))
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            schema,
        } => {
            let l = build(left, streamed)?;
            let r = build(right, streamed)?;
            OnlineOp::Join(JoinOp::new(
                l,
                r,
                left_keys.clone(),
                right_keys.clone(),
                schema.clone(),
            ))
        }
        Plan::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = build(left, streamed)?;
            let r = build(right, streamed)?;
            OnlineOp::SemiJoin(SemiJoinOp::new(l, r, left_keys.clone(), right_keys.clone()))
        }
        Plan::Union { inputs } => {
            let children = inputs
                .iter()
                .map(|p| build(p, streamed))
                .collect::<Result<Vec<_>, _>>()?;
            OnlineOp::Union(UnionOp::new(children))
        }
        Plan::Aggregate {
            input,
            group_cols,
            aggs,
            schema,
            agg_id,
        } => {
            let ann = annotate(input, streamed)?;
            let child = build(input, streamed)?;
            let arg_uncertain: Vec<bool> =
                aggs.iter().map(|a| ann.expr_uncertain(&a.input)).collect();
            OnlineOp::Aggregate(AggregateOp::new(
                child,
                group_cols.clone(),
                aggs.clone(),
                schema.clone(),
                *agg_id,
                arg_uncertain,
                ann.tuple_uncertain,
                ann.reads_stream,
            ))
        }
        Plan::Sort { .. } => {
            return Err(RewriteError::Unsupported(
                "ORDER BY below the top level".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_engine::{plan_sql, FunctionRegistry};
    use iolap_relation::{Catalog, DataType, Relation, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "sessions",
            Relation::empty(Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("buffer_time", DataType::Float),
                ("play_time", DataType::Float),
            ])),
        );
        c
    }

    fn rewrite_sql(sql: &str) -> OnlineQuery {
        let c = catalog();
        let r = FunctionRegistry::with_builtins();
        let pq = plan_sql(sql, &c, &r).unwrap();
        let streamed: HashSet<String> = ["sessions".to_string()].into();
        rewrite(&pq, &streamed).unwrap()
    }

    #[test]
    fn sbi_rewrites_with_uncertain_select() {
        let q = rewrite_sql(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        );
        // Find the SelectOp with an uncertain predicate.
        let mut found = false;
        fn walk(op: &OnlineOp, found: &mut bool) {
            if let OnlineOp::Select(s) = op {
                if s.uncertain_pred {
                    *found = true;
                }
            }
            match op {
                OnlineOp::Select(s) => walk(&s.child, found),
                OnlineOp::Project(p) => walk(&p.child, found),
                OnlineOp::Join(j) => {
                    walk(&j.left, found);
                    walk(&j.right, found);
                }
                OnlineOp::SemiJoin(j) => {
                    walk(&j.left, found);
                    walk(&j.right, found);
                }
                OnlineOp::Union(u) => u.children.iter().for_each(|c| walk(c, found)),
                OnlineOp::Aggregate(a) => walk(&a.child, found),
                OnlineOp::Scan(_) => {}
            }
        }
        walk(&q.root, &mut found);
        assert!(found, "SBI must contain an uncertainty-partitioned select");
        assert!(q.root_annotation.attr_uncertain.iter().any(|b| *b));
    }

    #[test]
    fn sort_peels_into_presentation() {
        let q = rewrite_sql("SELECT session_id FROM sessions ORDER BY play_time DESC LIMIT 3");
        assert_eq!(q.sink.presentation.sort_keys.len(), 1);
        assert_eq!(q.sink.presentation.limit, Some(3));
        assert_eq!(q.sink.stream_factor, 1, "plain SPJ output scales by m_i");
    }

    #[test]
    fn online_explain_marks_uncertainty() {
        let q = rewrite_sql(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        );
        let text = q.root.explain();
        assert!(text.contains("[streamed]"), "{text}");
        assert!(text.contains("[uncertainty-partitioned]"), "{text}");
        assert!(text.contains("OnlineAggregate"), "{text}");
    }

    #[test]
    fn aggregated_root_does_not_scale_rows() {
        let q = rewrite_sql("SELECT AVG(play_time) FROM sessions");
        assert_eq!(q.sink.stream_factor, 0);
    }
}
