//! iOLAP engine configuration.

use iolap_relation::PartitionMode;

/// Tunable knobs of the iOLAP engine (paper §7, §8.4).
#[derive(Clone, Debug)]
pub struct IolapConfig {
    /// Number of bootstrap trials (the paper uses 100 throughout §8).
    pub trials: usize,
    /// Slack `ε` on variation ranges (§5.1; default 2.0 per §8.4: "slack =
    /// 2.0 leads to a good trade-off in practice").
    pub slack: f64,
    /// RNG seed for partitioning and bootstrap draws.
    pub seed: u64,
    /// Number of mini-batches the streamed relation is split into.
    pub num_batches: usize,
    /// How rows are randomized before batching.
    pub partition_mode: PartitionMode,
    /// Confidence level of reported intervals.
    pub confidence: f64,
    /// OPT1: tuple-uncertainty partitioning via variation ranges (§5).
    /// Disabling it keeps every tuple under an uncertain predicate in the
    /// non-deterministic set — the middle bar of Figure 9(a).
    pub opt_tuple_partition: bool,
    /// OPT2: lineage propagation + lazy evaluation (§6). Disabling it
    /// materializes uncertain attributes (stale values are refreshed by
    /// recomputing saved tuples from their source rows).
    pub opt_lazy_lineage: bool,
    /// Checkpoint operator state every `n` batches for failure recovery
    /// (§5.1). `1` = every batch.
    pub checkpoint_interval: usize,
    /// Worker threads for parallel sketch folding inside aggregates — the
    /// single-process analogue of the paper's partition parallelism
    /// ("demonstrated … on over 100 machines"). `1` disables threading.
    pub parallelism: usize,
}

impl Default for IolapConfig {
    fn default() -> Self {
        IolapConfig {
            trials: 100,
            slack: 2.0,
            seed: 0xD1CE,
            num_batches: 10,
            partition_mode: PartitionMode::RowShuffle,
            confidence: 0.95,
            opt_tuple_partition: true,
            opt_lazy_lineage: true,
            checkpoint_interval: 1,
            parallelism: 1,
        }
    }
}

impl IolapConfig {
    /// Config with a given batch count and defaults elsewhere.
    pub fn with_batches(num_batches: usize) -> Self {
        IolapConfig {
            num_batches,
            ..Default::default()
        }
    }

    /// Builder-style setter for the slack parameter.
    pub fn slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Builder-style setter for the trial count.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style toggle for both §5/§6 optimizations (Fig 9(a)
    /// ablation).
    pub fn optimizations(mut self, opt1: bool, opt2: bool) -> Self {
        self.opt_tuple_partition = opt1;
        self.opt_lazy_lineage = opt2;
        self
    }

    /// Builder-style setter for worker threads.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IolapConfig::default();
        assert_eq!(c.trials, 100);
        assert_eq!(c.slack, 2.0);
        assert!(c.opt_tuple_partition && c.opt_lazy_lineage);
    }

    #[test]
    fn builders_compose() {
        let c = IolapConfig::with_batches(5).slack(1.0).trials(40).seed(7);
        assert_eq!(c.num_batches, 5);
        assert_eq!(c.slack, 1.0);
        assert_eq!(c.trials, 40);
        assert_eq!(c.seed, 7);
    }
}
