//! iOLAP engine configuration.

use crate::faults::FaultPlan;
use crate::trace::TraceMode;
use iolap_relation::PartitionMode;

/// Tunable knobs of the iOLAP engine (paper §7, §8.4).
#[derive(Clone, Debug)]
pub struct IolapConfig {
    /// Number of bootstrap trials (the paper uses 100 throughout §8).
    pub trials: usize,
    /// Slack `ε` on variation ranges (§5.1; default 2.0 per §8.4: "slack =
    /// 2.0 leads to a good trade-off in practice").
    pub slack: f64,
    /// RNG seed for partitioning and bootstrap draws.
    pub seed: u64,
    /// Number of mini-batches the streamed relation is split into.
    pub num_batches: usize,
    /// How rows are randomized before batching.
    pub partition_mode: PartitionMode,
    /// Confidence level of reported intervals.
    pub confidence: f64,
    /// OPT1: tuple-uncertainty partitioning via variation ranges (§5).
    /// Disabling it keeps every tuple under an uncertain predicate in the
    /// non-deterministic set — the middle bar of Figure 9(a).
    pub opt_tuple_partition: bool,
    /// OPT2: lineage propagation + lazy evaluation (§6). Disabling it
    /// materializes uncertain attributes (stale values are refreshed by
    /// recomputing saved tuples from their source rows).
    pub opt_lazy_lineage: bool,
    /// Checkpoint operator state every `n` batches for failure recovery
    /// (§5.1). `1` = every batch.
    pub checkpoint_interval: usize,
    /// Worker threads for parallel sketch folding inside aggregates — the
    /// single-process analogue of the paper's partition parallelism
    /// ("demonstrated … on over 100 machines"). `1` disables threading.
    pub parallelism: usize,
    /// Cap on cascading recovery passes within one mini-batch (a failure
    /// detected during a recovery replay re-enters recovery). Exceeding it
    /// degrades gracefully: the offending attributes are permanently barred
    /// from pruning and the whole retained prefix is recomputed HDA-style
    /// (metric `recovery.degraded`).
    pub max_recovery_depth: usize,
    /// Cap on retained checkpoints (≥ 2 is enforced at use). Retention
    /// first prunes checkpoints older than the oldest feasible recovery
    /// point, then keeps the feasibility anchor plus the most recent saves;
    /// memory stays O(1) in batch count.
    pub max_checkpoints: usize,
    /// Deterministic fault-injection schedule (§5.1 hardening harness).
    /// `None` — the production default — compiles every injection hook down
    /// to a skipped pointer check.
    pub fault_plan: Option<FaultPlan>,
    /// Causal trace journal: `Off` (default; all hooks are `None` and the
    /// hot paths pay one pointer check per operator call), `Journal`
    /// (unbounded, for exports/experiments), or `Flight` (bounded ring
    /// that survives panics and is dumped on hard engine errors).
    pub trace_mode: TraceMode,
}

impl Default for IolapConfig {
    fn default() -> Self {
        IolapConfig {
            trials: 100,
            slack: 2.0,
            seed: 0xD1CE,
            num_batches: 10,
            partition_mode: PartitionMode::RowShuffle,
            confidence: 0.95,
            opt_tuple_partition: true,
            opt_lazy_lineage: true,
            checkpoint_interval: 1,
            parallelism: 1,
            max_recovery_depth: 4,
            max_checkpoints: 4,
            fault_plan: None,
            trace_mode: TraceMode::Off,
        }
    }
}

impl IolapConfig {
    /// Config with a given batch count and defaults elsewhere.
    pub fn with_batches(num_batches: usize) -> Self {
        IolapConfig {
            num_batches,
            ..Default::default()
        }
    }

    /// Builder-style setter for the slack parameter.
    pub fn slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Builder-style setter for the trial count.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style toggle for both §5/§6 optimizations (Fig 9(a)
    /// ablation).
    pub fn optimizations(mut self, opt1: bool, opt2: bool) -> Self {
        self.opt_tuple_partition = opt1;
        self.opt_lazy_lineage = opt2;
        self
    }

    /// Builder-style setter for worker threads.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Builder-style setter for the cascading-recovery depth cap.
    pub fn max_recovery_depth(mut self, depth: usize) -> Self {
        self.max_recovery_depth = depth;
        self
    }

    /// Builder-style setter for the checkpoint retention cap.
    pub fn max_checkpoints(mut self, n: usize) -> Self {
        self.max_checkpoints = n;
        self
    }

    /// Builder-style setter arming a fault-injection schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style setter for the trace journal mode.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Builder-style shorthand arming the flight recorder at its default
    /// ring capacity.
    pub fn flight_recorder(mut self) -> Self {
        self.trace_mode = TraceMode::Flight {
            capacity: TraceMode::DEFAULT_FLIGHT_CAPACITY,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IolapConfig::default();
        assert_eq!(c.trials, 100);
        assert_eq!(c.slack, 2.0);
        assert!(c.opt_tuple_partition && c.opt_lazy_lineage);
        assert!(c.fault_plan.is_none(), "faults must be off by default");
        assert_eq!(c.trace_mode, TraceMode::Off, "tracing off by default");
        assert!(c.max_recovery_depth >= 1);
        assert!(c.max_checkpoints >= 2);
    }

    #[test]
    fn fault_plan_builder_arms_injection() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = IolapConfig::with_batches(4)
            .fault_plan(FaultPlan::new(7).with(1, FaultKind::DropCheckpoint))
            .max_recovery_depth(2)
            .max_checkpoints(3);
        assert_eq!(c.fault_plan.as_ref().unwrap().faults.len(), 1);
        assert_eq!(c.max_recovery_depth, 2);
        assert_eq!(c.max_checkpoints, 3);
    }

    #[test]
    fn trace_mode_builders() {
        let c = IolapConfig::with_batches(3).trace_mode(TraceMode::Journal);
        assert_eq!(c.trace_mode, TraceMode::Journal);
        let c = IolapConfig::with_batches(3).flight_recorder();
        assert!(matches!(c.trace_mode, TraceMode::Flight { capacity } if capacity > 0));
    }

    #[test]
    fn builders_compose() {
        let c = IolapConfig::with_batches(5).slack(1.0).trials(40).seed(7);
        assert_eq!(c.num_batches, 5);
        assert_eq!(c.slack, 1.0);
        assert_eq!(c.trials, 40);
        assert_eq!(c.seed, 7);
    }
}
