//! Dual-channel delta streams between online operators.
//!
//! Between two online operators a batch delivers two row sets that realize
//! the paper's tuple-uncertainty dichotomy (§4.1) plus the §5 refinement:
//!
//! * **`delta_certain`** — rows whose multiplicity will never change
//!   (`u# = F`). They are *deltas*: each such row is delivered exactly once
//!   over the whole execution, and downstream operators may fold it into
//!   compressed sketch state (§4.2, AGGREGATE).
//! * **`uncertain`** — the *current full contents* of the non-deterministic
//!   set `U_i` (§5.1): rows whose multiplicity may still change. They are
//!   re-delivered (recomputed) every batch, which is exactly the
//!   recomputation that iOLAP's optimizations minimize.
//!
//! A third flag, `exhausted`, signals that the producing operator will emit
//! nothing further on either channel; consumers use it to drop join state
//! they would otherwise retain (§4.2 JOIN: a side's tuples need saving only
//! while the *other* side can still produce matches).

use iolap_relation::{Row, Schema, Value};
use std::sync::Arc;

/// Per-row bootstrap weights: one Poisson(1) multiplier per trial. `None`
/// means all-ones (rows not descended from the streamed relation).
pub type TrialWeights = Option<Arc<[f64]>>;

/// A row flowing between online operators.
#[derive(Clone, Debug)]
pub struct ORow {
    /// Attribute values (may contain `Value::Ref` / `Value::Pending`
    /// lineage cells).
    pub values: Arc<[Value]>,
    /// Base multiplicity (Appendix A).
    pub mult: f64,
    /// Bootstrap trial multipliers.
    pub weights: TrialWeights,
}

impl ORow {
    /// Row with multiplicity 1 and no trial weights.
    pub fn new(values: Vec<Value>) -> Self {
        ORow {
            values: values.into(),
            mult: 1.0,
            weights: None,
        }
    }

    /// Effective weight of this row in trial `t` (base multiplicity times
    /// the Poisson draw).
    pub fn trial_weight(&self, t: usize) -> f64 {
        match &self.weights {
            None => self.mult,
            Some(w) => self.mult * w[t],
        }
    }

    /// Convert to a plain relation row (dropping weights).
    pub fn to_row(&self) -> Row {
        Row {
            values: self.values.clone(),
            mult: self.mult,
        }
    }

    /// Combine the trial-weight vectors of two joined rows (product per
    /// trial; `None` is the all-ones vector).
    pub fn combine_weights(a: &TrialWeights, b: &TrialWeights) -> TrialWeights {
        match (a, b) {
            (None, None) => None,
            (Some(w), None) | (None, Some(w)) => Some(w.clone()),
            (Some(x), Some(y)) => Some(
                x.iter()
                    .zip(y.iter())
                    .map(|(a, b)| a * b)
                    .collect::<Vec<_>>()
                    .into(),
            ),
        }
    }

    /// Rough in-memory footprint (state accounting, Fig 9(b)/10(c)).
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<ORow>();
        for v in self.values.iter() {
            n += std::mem::size_of::<Value>() + v.approx_heap_bytes();
        }
        if let Some(w) = &self.weights {
            n += w.len() * std::mem::size_of::<f64>();
        }
        n
    }
}

/// One batch's output of an online operator.
#[derive(Clone, Debug)]
pub struct BatchData {
    /// Output schema (stable across batches).
    pub schema: Schema,
    /// New rows that will never change (`u# = F`); delivered once.
    pub delta_certain: Vec<ORow>,
    /// Current contents of the non-deterministic set; re-delivered each
    /// batch.
    pub uncertain: Vec<ORow>,
    /// No further rows will ever be emitted on either channel.
    pub exhausted: bool,
}

impl BatchData {
    /// Empty output with a schema.
    pub fn empty(schema: Schema) -> Self {
        BatchData {
            schema,
            delta_certain: Vec::new(),
            uncertain: Vec::new(),
            exhausted: false,
        }
    }

    /// Total rows delivered this batch on both channels.
    pub fn len(&self) -> usize {
        self.delta_certain.len() + self.uncertain.len()
    }

    /// True when both channels are empty.
    pub fn is_empty(&self) -> bool {
        self.delta_certain.is_empty() && self.uncertain.is_empty()
    }

    /// Bytes delivered this batch (data-shipped accounting, Fig 9(c)).
    pub fn approx_bytes(&self) -> usize {
        self.delta_certain
            .iter()
            .chain(self.uncertain.iter())
            .map(ORow::approx_bytes)
            .sum()
    }

    /// Record this batch's dual-channel traffic under `channel.*` metrics.
    /// The driver calls this on the root operator's output just before the
    /// sink ingests it, so every batch's certain/uncertain split and shipped
    /// bytes land in [`BatchReport::metrics`](crate::driver::BatchReport).
    pub fn record_channel(&self, m: &mut crate::metrics::Metrics) {
        m.add("channel.certain_rows", self.delta_certain.len() as u64);
        m.add("channel.uncertain_rows", self.uncertain.len() as u64);
        m.add("channel.bytes", self.approx_bytes() as u64);
        if self.exhausted {
            m.add("channel.exhausted", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_relation::DataType;

    #[test]
    fn trial_weight_defaults_to_mult() {
        let mut r = ORow::new(vec![Value::Int(1)]);
        r.mult = 2.5;
        assert_eq!(r.trial_weight(0), 2.5);
        r.weights = Some(vec![0.0, 2.0].into());
        assert_eq!(r.trial_weight(0), 0.0);
        assert_eq!(r.trial_weight(1), 5.0);
    }

    #[test]
    fn combine_weights_products() {
        let a: TrialWeights = Some(vec![1.0, 2.0].into());
        let b: TrialWeights = Some(vec![3.0, 0.5].into());
        let c = ORow::combine_weights(&a, &b).unwrap();
        assert_eq!(c.as_ref(), &[3.0, 1.0]);
        assert!(ORow::combine_weights(&None, &None).is_none());
        let d = ORow::combine_weights(&a, &None).unwrap();
        assert_eq!(d.as_ref(), &[1.0, 2.0]);
    }

    #[test]
    fn batch_data_accounting() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = BatchData::empty(schema);
        assert!(b.is_empty());
        b.delta_certain.push(ORow::new(vec![Value::Int(1)]));
        b.uncertain.push(ORow::new(vec![Value::Int(2)]));
        assert_eq!(b.len(), 2);
        assert!(b.approx_bytes() > 0);
    }

    #[test]
    fn record_channel_fires_metrics() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = BatchData::empty(schema);
        b.delta_certain.push(ORow::new(vec![Value::Int(1)]));
        b.delta_certain.push(ORow::new(vec![Value::Int(3)]));
        b.uncertain.push(ORow::new(vec![Value::Int(2)]));
        let mut m = crate::metrics::Metrics::new();
        b.record_channel(&mut m);
        assert_eq!(m.get("channel.certain_rows"), 2);
        assert_eq!(m.get("channel.uncertain_rows"), 1);
        assert_eq!(m.get("channel.bytes"), b.approx_bytes() as u64);
        assert_eq!(m.get("channel.exhausted"), 0, "not exhausted yet");
        b.exhausted = true;
        b.record_channel(&mut m);
        assert_eq!(m.get("channel.exhausted"), 1);
        // Accumulates across batches, like every driver metric.
        assert_eq!(m.get("channel.certain_rows"), 4);
    }
}
