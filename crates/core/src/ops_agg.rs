//! Online aggregation (§4.2 AGGREGATE rule) with sketch state, bootstrap
//! trials, and registry publication.
//!
//! Certain input rows are folded into per-group *sketches* — the running
//! sum/count style compressed state of §4.2 ("any aggregate function that
//! can be computed using sub-linear space can maintain the state of
//! AGGREGATE space-efficiently using sketches"). Uncertain rows (the
//! upstream non-deterministic sets) are re-aggregated from scratch each
//! batch into a temporary sketch that is merged with the persistent one at
//! output time. When the aggregated expression itself reads uncertain
//! attributes, the input cannot be sketched (§4.2) and certain rows are
//! retained as rows and recomputed.
//!
//! Every batch the operator publishes each group's current value and
//! per-trial bootstrap values to the [`AggRegistry`], where downstream
//! lineage refs resolve them lazily and variation ranges are tracked.

use crate::channel::{BatchData, ORow};
use crate::ops::{BatchCtx, OnlineOp};
use crate::shard::{self, AccState, FoldFragment, FragKind, FragSrc, PartialGroup};
use iolap_engine::{Accumulator, AggCall, EngineError, Expr, RefMode};
use iolap_relation::kernels::fold::{
    fold_count_uniform, fold_count_weighted, fold_sum_uniform, fold_sum_weighted, gather_numeric,
};
use iolap_relation::{AggRef, Schema, SelVec, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Cloneable box around a dynamic accumulator.
pub struct AccBox(pub Box<dyn Accumulator>);

impl Clone for AccBox {
    fn clone(&self) -> Self {
        AccBox(self.0.boxed_clone())
    }
}

impl fmt::Debug for AccBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccBox")
    }
}

/// Per-trial state for one aggregate call. SUM/COUNT/AVG — the sketchable
/// workhorses of §4.2 — use flat `f64` vectors (one slot per bootstrap
/// trial), which keeps the 100-trial piggyback close to the cost of a
/// vectorized pass instead of 100 boxed accumulator updates per row. Other
/// aggregates (UDAFs, VAR, MIN/MAX) fall back to boxed accumulators.
#[derive(Clone, Debug)]
enum TrialState {
    /// `a[t]` = Σ weight·x (or Σ weight for COUNT); `b[t]` = Σ weight over
    /// non-null inputs (presence/denominator).
    Fast {
        kind: FastKind,
        a: Vec<f64>,
        b: Vec<f64>,
    },
    Generic(Vec<AccBox>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FastKind {
    Count,
    Sum,
    Avg,
}

impl TrialState {
    fn new(kind: &iolap_engine::AggKind, trials: usize) -> TrialState {
        use iolap_engine::{AggKind, BuiltinAgg};
        let fast = match kind {
            AggKind::Builtin(BuiltinAgg::Count) => Some(FastKind::Count),
            AggKind::Builtin(BuiltinAgg::Sum) => Some(FastKind::Sum),
            AggKind::Builtin(BuiltinAgg::Avg) => Some(FastKind::Avg),
            _ => None,
        };
        match fast {
            Some(k) => TrialState::Fast {
                kind: k,
                a: vec![0.0; trials],
                b: vec![0.0; trials],
            },
            None => TrialState::Generic((0..trials).map(|_| AccBox(kind.accumulator())).collect()),
        }
    }

    /// Fold one row whose argument value is the same in every trial; only
    /// the Poisson weights differ — the vectorizable common case.
    fn update_value(&mut self, v: &Value, row: &ORow) {
        match self {
            TrialState::Fast { kind, a, b } => {
                let x = v.as_f64();
                if v.is_null() || (x.is_none() && *kind != FastKind::Count) {
                    return;
                }
                let x = x.unwrap_or(0.0);
                match &row.weights {
                    None => {
                        let w = row.mult;
                        match kind {
                            FastKind::Count => {
                                for t in a.iter_mut() {
                                    *t += w;
                                }
                            }
                            FastKind::Sum | FastKind::Avg => {
                                for (ta, tb) in a.iter_mut().zip(b.iter_mut()) {
                                    *ta += w * x;
                                    *tb += w;
                                }
                            }
                        }
                    }
                    Some(ws) => {
                        let m = row.mult;
                        match kind {
                            FastKind::Count => {
                                for (t, w) in a.iter_mut().zip(ws.iter()) {
                                    *t += m * w;
                                }
                            }
                            FastKind::Sum | FastKind::Avg => {
                                for ((ta, tb), w) in a.iter_mut().zip(b.iter_mut()).zip(ws.iter()) {
                                    *ta += m * w * x;
                                    *tb += m * w;
                                }
                            }
                        }
                    }
                }
            }
            TrialState::Generic(accs) => {
                for (t, acc) in accs.iter_mut().enumerate() {
                    acc.0.update(v, row.trial_weight(t));
                }
            }
        }
    }

    /// Fold one row whose argument value differs per trial (uncertain
    /// aggregate arguments resolved in `Trial(t)` mode).
    fn update_trial(&mut self, t: usize, v: &Value, w: f64) {
        match self {
            TrialState::Fast { kind, a, b } => {
                if v.is_null() {
                    return;
                }
                match kind {
                    FastKind::Count => a[t] += w,
                    FastKind::Sum | FastKind::Avg => {
                        if let Some(x) = v.as_f64() {
                            a[t] += w * x;
                            b[t] += w;
                        }
                    }
                }
            }
            TrialState::Generic(accs) => accs[t].0.update(v, w),
        }
    }

    /// Trial `t`'s output; `scale` applies to extensive kinds. NaN marks
    /// "no data in this resample" (filtered by range estimation).
    fn output_f64(&self, t: usize, scale: f64) -> f64 {
        match self {
            TrialState::Fast { kind, a, b } => match kind {
                FastKind::Count => a[t] * scale,
                // An empty resample of a SUM is genuinely 0 (every tuple
                // drawn 0 times), not missing — keeping it in the envelope
                // is what lets small groups' ranges honestly include 0.
                FastKind::Sum => a[t] * scale,
                FastKind::Avg => {
                    if b[t] > 0.0 {
                        a[t] / b[t]
                    } else {
                        f64::NAN
                    }
                }
            },
            TrialState::Generic(accs) => accs[t].0.output_f64(scale).unwrap_or(f64::NAN),
        }
    }

    fn merge(&mut self, other: &TrialState) -> Result<(), EngineError> {
        match (self, other) {
            (TrialState::Fast { a, b, .. }, TrialState::Fast { a: oa, b: ob, .. }) => {
                for (x, y) in a.iter_mut().zip(oa.iter()) {
                    *x += y;
                }
                for (x, y) in b.iter_mut().zip(ob.iter()) {
                    *x += y;
                }
                Ok(())
            }
            (TrialState::Generic(accs), TrialState::Generic(other)) => {
                for (x, y) in accs.iter_mut().zip(other.iter()) {
                    x.0.merge(y.0.as_ref())?;
                }
                Ok(())
            }
            // Trial-state kinds are fixed per aggregate call at plan time,
            // so merging mismatched kinds means the sketch maps diverged —
            // report it instead of panicking in the hot path.
            _ => Err(EngineError::Plan(
                "trial-state kind mismatch while merging aggregate sketches".to_string(),
            )),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            TrialState::Fast { a, b, .. } => (a.len() + b.len()) * 8,
            TrialState::Generic(accs) => accs.iter().map(|x| x.0.approx_bytes()).sum(),
        }
    }

    fn len(&self) -> usize {
        match self {
            TrialState::Fast { a, .. } => a.len(),
            TrialState::Generic(accs) => accs.len(),
        }
    }
}

/// Where one vectorizable aggregate call reads its argument from.
#[derive(Clone, Debug)]
enum FastSrc {
    /// Bare input column.
    Col(usize),
    /// Constant literal (lineage-free).
    Lit(Value),
}

/// Compile-time description of a fully vectorizable aggregate: every call a
/// builtin COUNT/SUM/AVG over a bare column or constant, no uncertain
/// arguments. When present, whole mini-batch chunks fold through the
/// columnar kernels instead of per-row expression evaluation.
#[derive(Clone, Debug)]
struct FastPlan {
    srcs: Vec<FastSrc>,
    kinds: Vec<FastKind>,
}

impl FastPlan {
    fn compile(aggs: &[AggCall], arg_uncertain: &[bool]) -> Option<FastPlan> {
        use iolap_engine::{AggKind, BuiltinAgg};
        if arg_uncertain.iter().any(|b| *b) {
            return None;
        }
        let mut srcs = Vec::with_capacity(aggs.len());
        let mut kinds = Vec::with_capacity(aggs.len());
        for call in aggs {
            kinds.push(match &call.kind {
                AggKind::Builtin(BuiltinAgg::Count) => FastKind::Count,
                AggKind::Builtin(BuiltinAgg::Sum) => FastKind::Sum,
                AggKind::Builtin(BuiltinAgg::Avg) => FastKind::Avg,
                _ => return None,
            });
            srcs.push(match &call.input {
                Expr::Col(i) => FastSrc::Col(*i),
                Expr::Lit(v) if !matches!(v, Value::Ref(_) | Value::Pending(_)) => {
                    FastSrc::Lit(v.clone())
                }
                _ => return None,
            });
        }
        Some(FastPlan { srcs, kinds })
    }
}

/// Instrumentation from one `fold_rows` call. Folds run behind `&self`
/// (workers and shard pools cannot write `&mut Metrics`), so the numbers
/// ride back to `process`, which records them around the call.
#[derive(Clone, Copy, Debug, Default)]
struct FoldStats {
    /// Wall time of the shard-pool dispatch (0 when not offloaded).
    dispatch_ns: u64,
    /// Wall time of the coordinator-side partition-order merge.
    merge_ns: u64,
    /// Per-partition partials merged.
    partials: u64,
    /// Whether any fold of this batch went through the shard pool.
    offloaded: bool,
}

impl FoldStats {
    fn absorb(&mut self, o: FoldStats) {
        self.dispatch_ns += o.dispatch_ns;
        self.merge_ns += o.merge_ns;
        self.partials += o.partials;
        self.offloaded |= o.offloaded;
    }
}

/// Group-key → sketch map, the working state of a fold.
type SketchMap = HashMap<Arc<[Value]>, GroupSketch>;

/// Per-group sketch: one main accumulator plus per-trial state, per
/// aggregate call.
#[derive(Clone, Debug)]
struct GroupSketch {
    /// `accs[call]` — main accumulators.
    accs: Vec<AccBox>,
    /// `trials[call]` — bootstrap trial state.
    trials: Vec<TrialState>,
    /// Whether any certain row contributed (drives output tuple
    /// uncertainty: `u#(t) = ⋀ u'#(t')`).
    has_certain: bool,
}

impl GroupSketch {
    fn new(aggs: &[AggCall], trials: usize) -> Self {
        GroupSketch {
            accs: aggs.iter().map(|a| AccBox(a.kind.accumulator())).collect(),
            trials: aggs
                .iter()
                .map(|a| TrialState::new(&a.kind, trials))
                .collect(),
            has_certain: false,
        }
    }

    fn merge(&mut self, other: &GroupSketch) -> Result<(), EngineError> {
        for (a, b) in self.accs.iter_mut().zip(other.accs.iter()) {
            a.0.merge(b.0.as_ref())?;
        }
        for (a, b) in self.trials.iter_mut().zip(other.trials.iter()) {
            a.merge(b)?;
        }
        self.has_certain |= other.has_certain;
        Ok(())
    }

    fn approx_bytes(&self) -> usize {
        self.accs.iter().map(|a| a.0.approx_bytes()).sum::<usize>()
            + self
                .trials
                .iter()
                .map(TrialState::approx_bytes)
                .sum::<usize>()
    }
}

/// Online AGGREGATE operator.
#[derive(Clone, Debug)]
pub struct AggregateOp {
    /// Input operator.
    pub child: Box<OnlineOp>,
    /// Group-by column indices in the input schema.
    pub group_cols: Vec<usize>,
    /// Aggregate calls.
    pub aggs: Vec<AggCall>,
    /// Output schema (group cols then aggregate cols).
    pub schema: Schema,
    /// Stable lineage-block id (`rel(γ)`, §6.1).
    pub agg_id: u32,
    /// Compile-time per-call flag: argument reads uncertain attributes.
    pub arg_uncertain: Vec<bool>,
    /// Compile-time: input rows can carry tuple uncertainty.
    pub input_tuple_uncertain: bool,
    /// Compile-time: subtree reads the streamed relation → extensive
    /// outputs are scaled by `m_i`.
    pub scale_stream: bool,
    sketch: HashMap<Arc<[Value]>, GroupSketch>,
    /// Certain rows retained when sketching is impossible (uncertain
    /// aggregate arguments, §4.2).
    unsketchable_rows: Vec<ORow>,
    emitted_certain: HashSet<Arc<[Value]>>,
    fast: Option<FastPlan>,
}

impl AggregateOp {
    /// New aggregate operator.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        child: OnlineOp,
        group_cols: Vec<usize>,
        aggs: Vec<AggCall>,
        schema: Schema,
        agg_id: u32,
        arg_uncertain: Vec<bool>,
        input_tuple_uncertain: bool,
        scale_stream: bool,
    ) -> Self {
        let fast = FastPlan::compile(&aggs, &arg_uncertain);
        AggregateOp {
            child: Box::new(child),
            group_cols,
            aggs,
            schema,
            agg_id,
            arg_uncertain,
            input_tuple_uncertain,
            scale_stream,
            sketch: HashMap::new(),
            unsketchable_rows: Vec::new(),
            emitted_certain: HashSet::new(),
            fast,
        }
    }

    fn push_outcomes(
        &self,
        key: &Arc<[Value]>,
        outcomes: Vec<iolap_bootstrap::RangeOutcome>,
        ctx: &mut BatchCtx<'_>,
    ) {
        for (c, o) in outcomes.into_iter().enumerate() {
            if matches!(o, iolap_bootstrap::RangeOutcome::Failure { .. }) {
                ctx.stats.failures += 1;
            }
            ctx.outcomes.push((
                AggRef {
                    agg: self.agg_id,
                    column: c as u16,
                    key: key.clone(),
                },
                o,
            ));
        }
    }

    fn sketchable(&self) -> bool {
        !self.arg_uncertain.iter().any(|b| *b)
    }

    /// Whether a columnar fast plan compiled for this aggregate. Exposed
    /// for the static verifier (V009): a fast plan must never coexist
    /// with an uncertain aggregate argument.
    pub fn has_fast_plan(&self) -> bool {
        self.fast.is_some()
    }

    /// Bytes held in sketch + retained-row state.
    pub fn state_bytes(&self) -> usize {
        self.sketch
            .values()
            .map(GroupSketch::approx_bytes)
            .sum::<usize>()
            + self
                .unsketchable_rows
                .iter()
                .map(ORow::approx_bytes)
                .sum::<usize>()
    }

    fn fold_row(
        &self,
        sketch: &mut HashMap<Arc<[Value]>, GroupSketch>,
        row: &ORow,
        certain: bool,
        registry: &crate::registry::AggRegistry,
        trials: usize,
    ) -> Result<(), EngineError> {
        let key = row.to_row().key(&self.group_cols);
        let entry = sketch
            .entry(key)
            .or_insert_with(|| GroupSketch::new(&self.aggs, trials));
        entry.has_certain |= certain;
        let r = row.to_row();
        let eval = iolap_engine::EvalContext::with_resolver(registry);
        for (c, call) in self.aggs.iter().enumerate() {
            if self.arg_uncertain[c] {
                // Argument reads lineage cells: per-trial argument values
                // differ, so evaluate in each mode.
                let v = call.input.eval(&r, &eval)?;
                entry.accs[c].0.update(&v, row.mult);
                for t in 0..trials {
                    let tv = call.input.eval(&r, &eval.with_mode(RefMode::Trial(t)))?;
                    entry.trials[c].update_trial(t, &tv, row.trial_weight(t));
                }
            } else {
                let v = call.input.eval(&r, &eval)?;
                entry.accs[c].0.update(&v, row.mult);
                entry.trials[c].update_value(&v, row);
            }
        }
        Ok(())
    }

    /// Fold one chunk of rows into `map`: columnar fast path when the plan
    /// applies, row-at-a-time otherwise.
    fn fold_chunk(
        &self,
        map: &mut HashMap<Arc<[Value]>, GroupSketch>,
        rows: &[ORow],
        certain: bool,
        registry: &crate::registry::AggRegistry,
        trials: usize,
    ) -> Result<(), EngineError> {
        if self.fold_chunk_columnar(map, rows, certain, trials)? {
            return Ok(());
        }
        for row in rows {
            self.fold_row(map, row, certain, registry, trials)?;
        }
        Ok(())
    }

    /// Typed group-code assignment for a single-column group key: probe by
    /// the cell's native representation (`i64`, float bits, `&str`, bool)
    /// instead of cloning and hashing `Value` slices per row. Returns
    /// `false` — caller reverts to the generic probe — when the key column
    /// mixes variants or carries lineage cells. Codes and keys come out in
    /// first-occurrence order with the exact `Value`-equality semantics of
    /// the generic path (floats group by bit pattern, `Int(1)` never merges
    /// with `Float(1.0)` because mixed chunks bail).
    #[allow(clippy::too_many_arguments)]
    fn codes_single_col(
        &self,
        g: usize,
        rows: &[ORow],
        trials: usize,
        keys: &mut Vec<Arc<[Value]>>,
        groups: &mut Vec<GroupSketch>,
        codes: &mut Vec<u32>,
    ) -> bool {
        // Bound the code domain up front: `groups.len() ≤ rows.len() < 2³²`
        // makes the infallible cast below provably exact (the generic path
        // handles the absurd wider case with a checked conversion).
        if u32::try_from(rows.len()).is_err() {
            return false;
        }
        let mut ints: HashMap<i64, u32> = HashMap::new();
        let mut floats: HashMap<u64, u32> = HashMap::new();
        let mut strs: HashMap<Arc<str>, u32> = HashMap::new();
        let mut bools = [None::<u32>; 2];
        let mut null_code: Option<u32> = None;
        // 0=Int 1=Float 2=Bool 3=Str, pinned by the first non-null cell.
        let mut kind: Option<u8> = None;
        for row in rows {
            let v = &row.values[g];
            let k = match v {
                Value::Null => u8::MAX,
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
                Value::Ref(_) | Value::Pending(_) => return false,
            };
            if k != u8::MAX {
                match kind {
                    None => kind = Some(k),
                    Some(prev) if prev == k => {}
                    Some(_) => return false,
                }
            }
            let fresh = |keys: &mut Vec<Arc<[Value]>>, groups: &mut Vec<GroupSketch>| {
                let code = groups.len() as u32;
                keys.push(Arc::from(vec![v.clone()]));
                groups.push(GroupSketch::new(&self.aggs, trials));
                code
            };
            let code = match v {
                Value::Null => *null_code.get_or_insert_with(|| fresh(keys, groups)),
                Value::Int(i) => *ints.entry(*i).or_insert_with(|| fresh(keys, groups)),
                Value::Float(f) => *floats
                    .entry(f.to_bits())
                    .or_insert_with(|| fresh(keys, groups)),
                Value::Bool(b) => {
                    *bools[usize::from(*b)].get_or_insert_with(|| fresh(keys, groups))
                }
                Value::Str(s) => match strs.get(&**s) {
                    Some(&code) => code,
                    None => {
                        let code = fresh(keys, groups);
                        strs.insert(s.clone(), code);
                        code
                    }
                },
                Value::Ref(_) | Value::Pending(_) => return false,
            };
            codes.push(code);
        }
        true
    }

    /// Columnar fold of one chunk: gather each call's argument column once,
    /// assign dense group codes with one hash probe per row, then fold main
    /// accumulators and trial vectors per row by code — no per-row key
    /// allocation, `EvalContext`, or expression evaluation. Float additions
    /// hit each (group, call) slot in input row order, exactly like
    /// [`AggregateOp::fold_row`], so the resulting sketch is bit-identical
    /// to the row path's.
    ///
    /// Returns `Ok(false)` — with `map` untouched — when no fast plan was
    /// compiled or a lineage cell shows up in an argument column (those need
    /// resolver access); the caller then falls back to the row path.
    fn fold_chunk_columnar(
        &self,
        map: &mut HashMap<Arc<[Value]>, GroupSketch>,
        rows: &[ORow],
        certain: bool,
        trials: usize,
    ) -> Result<bool, EngineError> {
        let Some(plan) = &self.fast else {
            return Ok(false);
        };
        if rows.is_empty() {
            return Ok(true);
        }
        // Pass A: gather argument columns (aborts before any group state
        // mutation when a lineage cell appears).
        let ncalls = plan.srcs.len();
        let mut xs: Vec<Vec<f64>> = vec![Vec::new(); ncalls];
        let mut sels: Vec<SelVec> = (0..ncalls)
            .map(|_| SelVec::with_capacity(rows.len()))
            .collect();
        for (c, src) in plan.srcs.iter().enumerate() {
            let count_kind = plan.kinds[c] == FastKind::Count;
            let ok = match src {
                FastSrc::Col(j) => gather_numeric(
                    rows.iter().map(|r| &r.values[*j]),
                    count_kind,
                    &mut xs[c],
                    &mut sels[c],
                ),
                FastSrc::Lit(v) => gather_numeric(
                    std::iter::repeat_n(v, rows.len()),
                    count_kind,
                    &mut xs[c],
                    &mut sels[c],
                ),
            };
            if !ok {
                return Ok(false);
            }
        }
        // Pass B: dense group codes, one probe per row. Single-column keys
        // take a typed probe (no per-row `Value` clone or slice hashing);
        // multi-column or mixed-variant keys fall back to the generic
        // scratch-buffer probe. Either way group codes are assigned in
        // first-occurrence order, matching the row path's `entry` order.
        let mut keys: Vec<Arc<[Value]>> = Vec::new();
        let mut groups: Vec<GroupSketch> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(rows.len());
        let typed = match self.group_cols.as_slice() {
            // Global aggregate: every row is the one (empty-key) group.
            [] => {
                keys.push(Arc::from(Vec::new()));
                groups.push(GroupSketch::new(&self.aggs, trials));
                codes.resize(rows.len(), 0);
                true
            }
            [g] => self.codes_single_col(*g, rows, trials, &mut keys, &mut groups, &mut codes),
            _ => false,
        };
        if !typed {
            keys.clear();
            groups.clear();
            codes.clear();
            let mut index: HashMap<Arc<[Value]>, u32> = HashMap::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(self.group_cols.len());
            for row in rows {
                scratch.clear();
                scratch.extend(self.group_cols.iter().map(|&g| row.values[g].clone()));
                let code = match index.get(scratch.as_slice()) {
                    Some(&code) => code,
                    None => {
                        let code = checked_code(groups.len())?;
                        let key: Arc<[Value]> = Arc::from(&scratch[..]);
                        index.insert(key.clone(), code);
                        keys.push(key);
                        groups.push(GroupSketch::new(&self.aggs, trials));
                        code
                    }
                };
                codes.push(code);
            }
        }
        // `certain` is chunk-constant and every group was created by some
        // row of this chunk, so the per-row `|=` collapses to one sweep.
        if certain {
            for group in &mut groups {
                group.has_certain = true;
            }
        }
        // Pass C: fold per row by code — main accumulator on every row,
        // trial kernels on participating rows (per-call selection cursors).
        let mut cursors = vec![0usize; ncalls];
        for (i, row) in rows.iter().enumerate() {
            let g = &mut groups[codes[i] as usize];
            for c in 0..ncalls {
                let v: &Value = match &plan.srcs[c] {
                    FastSrc::Col(j) => &row.values[*j],
                    FastSrc::Lit(l) => l,
                };
                g.accs[c].0.update(v, row.mult);
                let cur = cursors[c];
                if cur < sels[c].len() && sels[c].get(cur) == i {
                    cursors[c] = cur + 1;
                    let x = xs[c][cur];
                    let TrialState::Fast { kind, a, b } = &mut g.trials[c] else {
                        return Err(EngineError::Plan(
                            "fast aggregate plan over non-fast trial state".to_string(),
                        ));
                    };
                    match (*kind, &row.weights) {
                        (FastKind::Count, None) => fold_count_uniform(a, row.mult),
                        (FastKind::Count, Some(ws)) => fold_count_weighted(a, row.mult, ws),
                        (FastKind::Sum | FastKind::Avg, None) => {
                            fold_sum_uniform(a, b, x, row.mult)
                        }
                        (FastKind::Sum | FastKind::Avg, Some(ws)) => {
                            fold_sum_weighted(a, b, x, row.mult, ws)
                        }
                    }
                }
            }
        }
        // Move the dense groups into the caller's map.
        for (key, group) in keys.into_iter().zip(groups) {
            match map.get_mut(&key) {
                Some(existing) => existing.merge(&group)?,
                None => {
                    map.insert(key, group);
                }
            }
        }
        Ok(true)
    }

    /// Dispatchable shard fragment for this aggregate — present exactly
    /// when the columnar fast plan compiled (builtin COUNT/SUM/AVG over
    /// bare columns or literals, no uncertain arguments).
    fn fragment(&self, trials: usize) -> Option<FoldFragment> {
        let plan = self.fast.as_ref()?;
        Some(FoldFragment {
            agg_id: self.agg_id,
            group_cols: self.group_cols.clone(),
            kinds: plan
                .kinds
                .iter()
                .map(|k| match k {
                    FastKind::Count => FragKind::Count,
                    FastKind::Sum => FragKind::Sum,
                    FastKind::Avg => FragKind::Avg,
                })
                .collect(),
            srcs: plan
                .srcs
                .iter()
                .map(|s| match s {
                    FastSrc::Col(i) => FragSrc::Col(*i),
                    FastSrc::Lit(v) => FragSrc::Lit(v.clone()),
                })
                .collect(),
            trials,
        })
    }

    /// Rebuild a shipped partial group as a [`GroupSketch`] — lossless:
    /// the engine accumulators are reconstructed bit-for-bit via their
    /// `from_state` constructors, so a later [`GroupSketch::merge`] adds
    /// exactly the floats a local fold of the same partition would have.
    fn sketch_from_partial(&self, pg: PartialGroup) -> (Arc<[Value]>, GroupSketch) {
        use iolap_engine::{AvgAcc, CountAcc, SumAcc};
        let key: Arc<[Value]> = pg.key.into();
        let mut accs = Vec::with_capacity(pg.calls.len());
        let mut trials = Vec::with_capacity(pg.calls.len());
        for call in pg.calls {
            let (acc, kind): (Box<dyn Accumulator>, FastKind) = match call.acc {
                AccState::Count { n } => (Box::new(CountAcc::from_state(n)), FastKind::Count),
                AccState::Sum { sum, any } => {
                    (Box::new(SumAcc::from_state(sum, any)), FastKind::Sum)
                }
                AccState::Avg { sum, n } => (Box::new(AvgAcc::from_state(sum, n)), FastKind::Avg),
            };
            accs.push(AccBox(acc));
            trials.push(TrialState::Fast {
                kind,
                a: call.a,
                b: call.b,
            });
        }
        (
            key,
            GroupSketch {
                accs,
                trials,
                has_certain: pg.has_certain,
            },
        )
    }

    /// Fold `rows` into per-group sketches over the partition-stable grid
    /// (`shard::PARTITION_ROWS`-row slices): each partition folds
    /// sequentially, partial maps merge in partition order. Because both
    /// the grid and the merge order derive only from the row count, the
    /// result is bit-identical whether the partitions run on this thread,
    /// across `ctx.parallelism` workers, or on remote shards via
    /// `ctx.shards` ("demonstrated … on over 100 machines" — §8's
    /// scale-up/scale-out equivalence).
    fn fold_rows(
        &self,
        rows: &[ORow],
        certain: bool,
        ctx: &BatchCtx<'_>,
    ) -> Result<(SketchMap, FoldStats), EngineError> {
        let mut stats = FoldStats::default();
        if rows.is_empty() {
            return Ok((HashMap::new(), stats));
        }
        // Scale-out path: ship the fragment + rows to the shard pool and
        // merge the per-partition partials it returns. `Ok(None)` (the
        // pool cannot take this batch — lineage cells, unencodable rows)
        // falls through to the local fold of the *same* grid.
        if let Some(exec) = ctx.shards {
            if let Some(frag) = self.fragment(ctx.trials) {
                // An armed WorkerPanic fault fires here exactly once per
                // batch (the shard pool replaces the local worker threads);
                // catch it so it surfaces as the same `EngineError` the
                // local path's `join` conversion produces.
                if let Some(f) = ctx.faults {
                    let inject = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f.inject_worker_panic(ctx.batch_index)
                    }));
                    if let Err(payload) = inject {
                        return Err(EngineError::Plan(format!(
                            "aggregate fold worker panicked: {}",
                            crate::faults::panic_message(payload)
                        )));
                    }
                }
                let dispatch = crate::metrics::Span::start();
                // Forward the operator span as the fold's trace parent so
                // worker-side span summaries stitch under the right node.
                let trace_ctx = ctx.trace.map(|t| crate::shard::ShardTraceCtx {
                    tracer: t,
                    parent: ctx.cur_span,
                    batch: ctx.batch_index,
                });
                if let Some(mut partials) =
                    exec.fold_traced(&frag, rows, certain, trace_ctx.as_ref())?
                {
                    stats.dispatch_ns = dispatch.elapsed().as_nanos() as u64;
                    stats.partials = partials.len() as u64;
                    stats.offloaded = true;
                    let merge = crate::metrics::Span::start();
                    partials.sort_by_key(|p| p.partition);
                    let mut map: HashMap<Arc<[Value]>, GroupSketch> = HashMap::new();
                    for part in partials {
                        for pg in part.groups {
                            let (key, sketch) = self.sketch_from_partial(pg);
                            match map.get_mut(&key) {
                                Some(existing) => existing.merge(&sketch)?,
                                None => {
                                    map.insert(key, sketch);
                                }
                            }
                        }
                    }
                    stats.merge_ns = merge.elapsed().as_nanos() as u64;
                    return Ok((map, stats));
                }
            }
        }
        // Local path: same grid, optionally spread over worker threads.
        // Workers own contiguous partition *blocks* but still fold and
        // ship one map per partition, so the coordinator-side merge tree
        // is the same with 1 worker or 8.
        let bounds: Vec<(usize, usize)> = shard::partition_bounds(rows.len()).collect();
        let registry: &crate::registry::AggRegistry = ctx.registry;
        let trials = ctx.trials;
        let fold_parts = |parts: &[(usize, usize)]| -> Result<Vec<_>, EngineError> {
            let mut out = Vec::with_capacity(parts.len());
            for &(s, e) in parts {
                let mut map = HashMap::new();
                self.fold_chunk(&mut map, &rows[s..e], certain, registry, trials)?;
                out.push(map);
            }
            Ok(out)
        };
        let workers = ctx.parallelism.max(1);
        type WorkerOut = Result<Vec<HashMap<Arc<[Value]>, GroupSketch>>, EngineError>;
        let partials: Vec<WorkerOut> = if workers == 1 || rows.len() < 4 * workers {
            vec![fold_parts(&bounds)]
        } else {
            let per = bounds.len().div_ceil(workers);
            let faults = ctx.faults;
            let batch_index = ctx.batch_index;
            let fold_parts = &fold_parts;
            // A panicking worker (e.g. a poisoned UDAF) must not abort the
            // process: `scope` joins every handle, and a panic surfaces as
            // an `Err` from `join`, which we convert into an `EngineError`
            // so the driver can report a failed batch and keep going.
            std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .chunks(per)
                    .map(|parts| {
                        scope.spawn(move || {
                            if let Some(f) = faults {
                                f.inject_worker_panic(batch_index);
                            }
                            fold_parts(parts)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(result) => result,
                        Err(payload) => Err(EngineError::Plan(format!(
                            "aggregate fold worker panicked: {}",
                            crate::faults::panic_message(payload)
                        ))),
                    })
                    .collect()
            })
        };
        let mut merged: HashMap<Arc<[Value]>, GroupSketch> = HashMap::new();
        for worker_maps in partials {
            for map in worker_maps? {
                for (k, v) in map {
                    match merged.get_mut(&k) {
                        Some(existing) => existing.merge(&v)?,
                        None => {
                            merged.insert(k, v);
                        }
                    }
                }
            }
        }
        Ok((merged, stats))
    }

    pub(crate) fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Aggregate");
        let input = self.child.process(ctx)?;
        ctx.stats.shipped_bytes += input.approx_bytes();
        let input_exhausted = input.exhausted;
        let mut out = BatchData::empty(self.schema.clone());

        // Keys touched by this batch: fresh certain rows and everything on
        // the uncertain channel. Untouched groups only need their scale
        // refreshed in the registry (delta publication).
        let sketchable = self.sketchable();
        let mut shard_stats = FoldStats::default();
        let mut touched: HashSet<Arc<[Value]>>;
        if sketchable {
            // Fold fresh certain rows into the persistent sketch.
            // (Workers cannot write `&mut Metrics`, so folds are timed and
            // counted here, around the call.)
            let fold_span = crate::metrics::Span::start();
            let (delta, fstats) = self.fold_rows(&input.delta_certain, true, ctx)?;
            fold_span.stop(&mut ctx.metrics, "agg.fold_ns");
            shard_stats.absorb(fstats);
            ctx.metrics
                .add("agg.fold_rows", input.delta_certain.len() as u64);
            // The delta map's key set is exactly the fresh rows' key set, so
            // reuse it instead of a second per-row key-allocation pass.
            touched = delta.keys().cloned().collect();
            let mut sketch = std::mem::take(&mut self.sketch);
            for (k, v) in delta {
                match sketch.get_mut(&k) {
                    Some(existing) => existing.merge(&v)?,
                    None => {
                        sketch.insert(k, v);
                    }
                }
            }
            self.sketch = sketch;
        } else {
            self.unsketchable_rows
                .extend(input.delta_certain.iter().cloned());
            touched = input
                .delta_certain
                .iter()
                .map(|row| row.to_row().key(&self.group_cols))
                .collect();
        }

        // Temporary sketch over recomputed rows: the uncertain channel plus
        // (when unsketchable) all retained certain rows.
        let fold_span = crate::metrics::Span::start();
        let (mut temp, fstats) = self.fold_rows(&input.uncertain, false, ctx)?;
        fold_span.stop(&mut ctx.metrics, "agg.fold_ns");
        shard_stats.absorb(fstats);
        ctx.metrics
            .add("agg.fold_rows", input.uncertain.len() as u64);
        if !sketchable {
            ctx.stats.recomputed_tuples += self.unsketchable_rows.len();
            let rows = std::mem::take(&mut self.unsketchable_rows);
            let refold_span = crate::metrics::Span::start();
            let (certain_part, fstats) = self.fold_rows(&rows, true, ctx)?;
            refold_span.stop(&mut ctx.metrics, "agg.fold_ns");
            shard_stats.absorb(fstats);
            ctx.metrics.add("agg.refold_rows", rows.len() as u64);
            for (k, v) in certain_part {
                match temp.get_mut(&k) {
                    Some(existing) => existing.merge(&v)?,
                    None => {
                        temp.insert(k, v);
                    }
                }
            }
            self.unsketchable_rows = rows;
        }
        touched.extend(temp.keys().cloned());

        // Scale-out instrumentation: only when a fold actually dispatched
        // to the shard pool, so un-sharded runs keep their metric set and
        // trace schema byte-identical.
        if shard_stats.offloaded {
            ctx.metrics
                .add("shard.dispatch_ns", shard_stats.dispatch_ns);
            ctx.metrics.add("shard.merge_ns", shard_stats.merge_ns);
            ctx.metrics.add("shard.partials", shard_stats.partials);
            ctx.trace_instant(
                "shard.dispatch",
                shard_stats.partials,
                "fragment dispatched to shard pool",
            );
            ctx.trace_instant(
                "shard.merge",
                shard_stats.partials,
                "partition-order partial merge",
            );
        }

        // Merge persistent ∪ temporary, publish, emit.
        let mut all_keys: Vec<Arc<[Value]>> = self.sketch.keys().cloned().collect();
        for k in temp.keys() {
            if !self.sketch.contains_key(k) {
                all_keys.push(k.clone());
            }
        }
        all_keys.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });

        let scale = if self.scale_stream { ctx.scale } else { 1.0 };
        let scales: Vec<f64> = self
            .aggs
            .iter()
            .map(|call| if call.kind.extensive() { scale } else { 1.0 })
            .collect();
        // Kind-based, not value-based: on the final batch m_i == 1.0 but
        // untouched groups still need their scale refreshed from the
        // previous batch's value.
        let any_extensive = self.scale_stream && self.aggs.iter().any(|c| c.kind.extensive());
        let mut emitted_uncertain = false;
        let publish_span = crate::metrics::Span::start();
        let mut groups_published = 0u64;
        let mut scale_refreshes = 0u64;
        for key in all_keys {
            if !touched.contains(&key) {
                // Delta publication: the group's unscaled sketch is
                // unchanged; only the extensive scale m_i moved. Refresh it
                // in O(1) per column.
                if any_extensive {
                    let outcomes =
                        ctx.registry
                            .refresh_scale(self.agg_id, &key, &scales, ctx.batch_index);
                    self.push_outcomes(&key, outcomes, ctx);
                    scale_refreshes += 1;
                }
                continue;
            }
            // Avoid cloning the persistent sketch when no uncertain rows
            // touched the group this batch.
            let mut merged_owned: Option<GroupSketch> = None;
            let merged: &GroupSketch = match (self.sketch.get(&key), temp.get(&key)) {
                (Some(p), Some(t)) => {
                    let mut m = p.clone();
                    m.merge(t)?;
                    merged_owned.get_or_insert(m)
                }
                (Some(p), None) => p,
                (None, Some(t)) => t,
                // `all_keys` is built from exactly these two maps, so a key
                // missing from both is sketch-bookkeeping corruption —
                // surface it as an engine error rather than aborting.
                (None, None) => {
                    return Err(EngineError::Plan(
                        "aggregate emitted a group key absent from both sketches".to_string(),
                    ))
                }
            };

            // Publish unscaled values + scales to the registry.
            let mut current = Vec::with_capacity(self.aggs.len());
            let mut trials_cols: Vec<Arc<[f64]>> = Vec::with_capacity(self.aggs.len());
            for (c, call) in self.aggs.iter().enumerate() {
                current.push(merged.accs[c].0.output(1.0));
                if call.kind.smooth() {
                    let n = merged.trials[c].len();
                    let tv: Vec<f64> = (0..n)
                        .map(|t| merged.trials[c].output_f64(t, 1.0))
                        .collect();
                    trials_cols.push(tv.into());
                } else {
                    // Non-smooth aggregates (MIN/MAX/COUNT DISTINCT, §3.3)
                    // get no bootstrap distribution: unbounded range,
                    // conservative classification.
                    trials_cols.push(Arc::from(Vec::<f64>::new()));
                }
            }
            let has_certain = merged.has_certain;
            let outcomes = ctx.registry.publish_at(
                self.agg_id,
                key.clone(),
                current.clone(),
                trials_cols,
                scales.clone(),
                ctx.slack,
                ctx.batch_index,
            );
            self.push_outcomes(&key, outcomes, ctx);
            groups_published += 1;

            // Emit the group row downstream.
            let emit_needed = !self.emitted_certain.contains(&key);
            if !emit_needed {
                continue;
            }
            let mut values: Vec<Value> = key.to_vec();
            for (c, sc) in scales.iter().enumerate() {
                let uncertain_out = self.input_tuple_uncertain || self.arg_uncertain[c];
                if uncertain_out {
                    values.push(Value::Ref(AggRef {
                        agg: self.agg_id,
                        column: c as u16,
                        key: key.clone(),
                    }));
                } else {
                    // Deterministic output (non-streamed subtree): the
                    // scale is 1, so unscaled == final.
                    debug_assert_eq!(*sc, 1.0);
                    values.push(current[c].clone());
                }
            }
            let row = ORow::new(values);
            if has_certain {
                out.delta_certain.push(row);
                self.emitted_certain.insert(key);
            } else {
                out.uncertain.push(row);
                emitted_uncertain = true;
            }
        }

        ctx.metrics.add("agg.groups_published", groups_published);
        ctx.metrics.add("agg.scale_refreshes", scale_refreshes);
        publish_span.stop(&mut ctx.metrics, "agg.publish_ns");

        // SQL semantics: a global aggregate over an empty input still yields
        // one row of "empty" outputs. Emit it transiently until real groups
        // appear.
        if self.group_cols.is_empty() && self.sketch.is_empty() && temp.is_empty() {
            let mut values = Vec::with_capacity(self.aggs.len());
            for call in &self.aggs {
                values.push(call.kind.accumulator().output(1.0));
            }
            out.uncertain.push(ORow::new(values));
            emitted_uncertain = true;
        }

        out.exhausted = if self.group_cols.is_empty() {
            // Global aggregate: one row, emitted; afterwards only the
            // registry changes.
            !self.emitted_certain.is_empty() && !emitted_uncertain
        } else {
            input_exhausted && !emitted_uncertain
        };
        ctx.close_op(sp, groups_published);
        Ok(out)
    }
}

/// Checked dense-group-code conversion for the generic probe (the typed
/// single-column paths bound their domain up front instead).
fn checked_code(n: usize) -> Result<u32, EngineError> {
    u32::try_from(n)
        .map_err(|_| EngineError::Plan("more than u32::MAX groups in one chunk".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_engine::{AggKind, BuiltinAgg, Expr};

    #[test]
    fn group_sketch_merge() {
        let aggs = vec![AggCall {
            kind: AggKind::Builtin(BuiltinAgg::Sum),
            input: Expr::Col(0),
            name: "s".into(),
        }];
        let mut a = GroupSketch::new(&aggs, 2);
        let mut b = GroupSketch::new(&aggs, 2);
        a.accs[0].0.update(&Value::Float(10.0), 1.0);
        b.accs[0].0.update(&Value::Float(5.0), 1.0);
        b.has_certain = true;
        a.merge(&b).unwrap();
        assert_eq!(a.accs[0].0.output(1.0), Value::Float(15.0));
        assert!(a.has_certain);
    }

    #[test]
    fn accbox_clone_is_deep() {
        let mut a = AccBox(AggKind::Builtin(BuiltinAgg::Sum).accumulator());
        a.0.update(&Value::Float(3.0), 1.0);
        let b = a.clone();
        a.0.update(&Value::Float(4.0), 1.0);
        assert_eq!(a.0.output(1.0), Value::Float(7.0));
        assert_eq!(b.0.output(1.0), Value::Float(3.0));
    }
}
