//! Causal trace layer: a structured event journal and span tree recording
//! `query → batch → operator → (range check | recovery replay | checkpoint
//! | fault injection)` causality, with a bounded ring-buffer "flight
//! recorder" mode that survives operator panics and is dumped when the
//! driver surfaces an `EngineError`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** The tracer is carried as
//!    `Option<&Tracer>`/`Option<Arc<Tracer>>` everywhere (the same gating
//!    discipline the fault injector uses): with tracing disabled the hot
//!    fold/probe paths execute one pointer check per *operator call*, not
//!    per row, and no trace code is reachable.
//! 2. **Panic survival.** Events are written straight into a shared,
//!    mutex-guarded journal owned by the driver — not into per-batch
//!    state that `catch_unwind` would discard. A poisoned lock is
//!    recovered with `into_inner`, so the recorder keeps accepting events
//!    *after* an injected worker panic, which is exactly when it matters.
//! 3. **Seeded determinism.** Span/event identifiers are sequential
//!    counters; nothing in an event except the timestamp depends on the
//!    clock, and exporters offer a normalized form (timestamps replaced
//!    by sequence numbers) that is byte-identical across runs of the same
//!    seed. The clock itself is [`crate::metrics::Span`] — the repo's one
//!    sanctioned time source (lint L003).
//!
//! Two export formats are provided: JSONL (one event per line, grep- and
//! jq-friendly) and Chrome `trace_event` JSON (open `chrome://tracing` or
//! Perfetto and load the file; batches map to tracks, spans nest).

use crate::metrics::Span;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Identifier of a node in the span tree. `SpanId::NONE` is the implicit
/// root (the query itself has a real span; `NONE` is its parent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null span (parent of the query root).
    pub const NONE: SpanId = SpanId(0);
}

/// Sentinel batch index for events outside any batch (query setup).
pub const NO_BATCH: usize = usize::MAX;

/// Event phase, mirroring the Chrome `trace_event` `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event (Chrome phase `i`). Named `Mark` because the
    /// `Instant` token is reserved for the clock authority (srclint L003).
    Mark,
}

impl EventKind {
    /// One-letter code (`B`/`E`/`i`), shared by both exporters.
    pub fn code(&self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Mark => "i",
        }
    }
}

/// One journal entry. `seq` is the global order; `span`/`parent` encode
/// the causal tree; `n` is a payload count (rows, bytes, depth — the
/// event name says which); `detail` is free-form but seeded-deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic even when the ring drops events).
    pub seq: u64,
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Phase.
    pub kind: EventKind,
    /// Span this event belongs to (the opened/closed span for `B`/`E`).
    pub span: SpanId,
    /// Parent span in the causal tree.
    pub parent: SpanId,
    /// Mini-batch index, or [`NO_BATCH`].
    pub batch: usize,
    /// Event name (static: operator kind or subsystem action).
    pub name: &'static str,
    /// Payload count (meaning depends on `name`; 0 when unused).
    pub n: u64,
    /// Deterministic free-form detail (fault kind, agg ref, digest…).
    pub detail: String,
}

/// Journal capacity policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracer is created; all hooks are `None`.
    #[default]
    Off,
    /// Unbounded journal: every event is retained (experiments, exports).
    Journal,
    /// Flight recorder: ring buffer of the most recent `capacity` events,
    /// kept cheap enough to leave on in fault storms; dumped on hard
    /// engine errors.
    Flight {
        /// Maximum retained events; older events are dropped (counted).
        capacity: usize,
    },
}

impl TraceMode {
    /// Default flight-recorder ring size.
    pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;
}

struct Inner {
    events: VecDeque<TraceEvent>,
    /// `usize::MAX` means unbounded (journal mode).
    capacity: usize,
    next_seq: u64,
    next_span: u32,
    dropped: u64,
}

/// The shared trace journal. The driver owns one `Arc<Tracer>` and hands
/// clones to the registry, the sink, and the fault injector; operators see
/// it as `Option<&Tracer>` through `BatchCtx`.
pub struct Tracer {
    epoch: Span,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Tracer")
            .field("events", &inner.events.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Tracer {
    /// Create a tracer for `mode`; `None` for [`TraceMode::Off`].
    pub fn from_mode(mode: TraceMode) -> Option<Tracer> {
        match mode {
            TraceMode::Off => None,
            TraceMode::Journal => Some(Tracer::with_capacity(usize::MAX)),
            TraceMode::Flight { capacity } => Some(Tracer::with_capacity(capacity.max(1))),
        }
    }

    /// Unbounded journal tracer.
    pub fn new() -> Tracer {
        Tracer::with_capacity(usize::MAX)
    }

    fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            epoch: Span::start(),
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                capacity,
                next_seq: 0,
                next_span: 1, // 0 is SpanId::NONE
                dropped: 0,
            }),
        }
    }

    /// Nanoseconds since this tracer's epoch (saturating).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Survive lock poisoning: a panicking operator (fault injection)
        // must not silence the flight recorder.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push(&self, inner: &mut Inner, ev: TraceEvent) {
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.dropped = inner.dropped.saturating_add(1);
        }
        inner.events.push_back(ev);
    }

    /// Open a span under `parent`; returns its id for [`Tracer::end`].
    pub fn begin(&self, name: &'static str, batch: usize, parent: SpanId) -> SpanId {
        let ts_ns = self.now_ns();
        let mut inner = self.lock();
        let span = SpanId(inner.next_span);
        inner.next_span = inner.next_span.wrapping_add(1).max(1);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        self.push(
            &mut inner,
            TraceEvent {
                seq,
                ts_ns,
                kind: EventKind::Begin,
                span,
                parent,
                batch,
                name,
                n: 0,
                detail: String::new(),
            },
        );
        span
    }

    /// Close `span` with payload count `n`.
    pub fn end(&self, name: &'static str, batch: usize, span: SpanId, parent: SpanId, n: u64) {
        let ts_ns = self.now_ns();
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        self.push(
            &mut inner,
            TraceEvent {
                seq,
                ts_ns,
                kind: EventKind::End,
                span,
                parent,
                batch,
                name,
                n,
                detail: String::new(),
            },
        );
    }

    /// Record a point event under `parent`.
    pub fn instant(
        &self,
        name: &'static str,
        batch: usize,
        parent: SpanId,
        n: u64,
        detail: impl Into<String>,
    ) {
        let ts_ns = self.now_ns();
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = TraceEvent {
            seq,
            ts_ns,
            kind: EventKind::Mark,
            span: SpanId::NONE,
            parent,
            batch,
            name,
            n,
            detail: detail.into(),
        };
        self.push(&mut inner, ev);
    }

    /// Snapshot of the retained events, in sequence order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.lock();
        inner.events.iter().cloned().collect()
    }

    /// Snapshot of retained events with `seq >= from_seq` (the driver's
    /// per-batch slice: it remembers [`Tracer::recorded`] at batch start
    /// and cuts here, so journal mode stays O(batch) instead of O(run)).
    pub fn events_since(&self, from_seq: u64) -> Vec<TraceEvent> {
        let inner = self.lock();
        inner
            .events
            .iter()
            .filter(|e| e.seq >= from_seq)
            .cloned()
            .collect()
    }

    /// Events dropped by the flight-recorder ring so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Total events recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Render the retained journal as a deterministic, human-readable
    /// flight-recorder dump: one line per event with sequence, batch,
    /// phase, name, payload, and detail. Timestamps are deliberately
    /// omitted so a dump can be diffed across runs of the same seed.
    pub fn flight_dump(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== flight recorder: {} events retained, {} dropped ===",
            inner.events.len(),
            inner.dropped
        );
        for ev in inner.events.iter() {
            let batch = if ev.batch == NO_BATCH {
                "-".to_string()
            } else {
                ev.batch.to_string()
            };
            let _ = write!(
                out,
                "#{:06} b{:<3} {} {:<24} span={} parent={} n={}",
                ev.seq,
                batch,
                ev.kind.code(),
                ev.name,
                ev.span.0,
                ev.parent.0,
                ev.n
            );
            if ev.detail.is_empty() {
                out.push('\n');
            } else {
                let _ = writeln!(out, " :: {}", ev.detail);
            }
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Exclusive self-time per span name: each closed span's duration minus
/// the durations of its closed children, aggregated by name into a
/// deterministic (ordered) map. Spans the ring buffer truncated (missing
/// begin or end) are skipped. This replaces `Metrics::total_span_ns` as
/// the rollup of record: nested spans no longer double-count.
pub fn self_time_by_name(events: &[TraceEvent]) -> BTreeMap<&'static str, u64> {
    // span id -> (name, begin_ts, end_ts, parent)
    type OpenSpan = (&'static str, Option<u64>, Option<u64>, SpanId);
    let mut spans: BTreeMap<SpanId, OpenSpan> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Begin => {
                spans.insert(ev.span, (ev.name, Some(ev.ts_ns), None, ev.parent));
            }
            EventKind::End => {
                if let Some(e) = spans.get_mut(&ev.span) {
                    e.2 = Some(ev.ts_ns);
                }
            }
            EventKind::Mark => {}
        }
    }
    let mut child_time: BTreeMap<SpanId, u64> = BTreeMap::new();
    let mut durations: Vec<(SpanId, &'static str, u64, SpanId)> = Vec::new();
    for (id, (name, begin, end, parent)) in spans.iter() {
        if let (Some(b), Some(e)) = (begin, end) {
            let dur = e.saturating_sub(*b);
            durations.push((*id, name, dur, *parent));
            let slot = child_time.entry(*parent).or_insert(0);
            *slot = slot.saturating_add(dur);
        }
    }
    let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (id, name, dur, _parent) in durations {
        let children = child_time.get(&id).copied().unwrap_or(0);
        let exclusive = dur.saturating_sub(children);
        let slot = out.entry(name).or_insert(0);
        *slot = slot.saturating_add(exclusive);
    }
    out
}

/// Canonical event stream for cross-topology comparison. `shard.*`-named
/// events (dispatch/merge instants, stitched worker span summaries) are
/// emitted only when fold partitions are offloaded, so they vary with the
/// shard count while everything else does not — the merge tree is pinned
/// to the `PARTITION_ROWS` grid regardless of where partitions execute.
/// Dropping them and renumbering `seq` contiguously yields a stream whose
/// normalized export is byte-identical across shard counts N∈{0,1,2,4}:
/// the trace analogue of `strip_shard_metrics`. Span ids are untouched
/// because every `shard.*` event is an instant and instants never
/// allocate span ids, so span numbering is already topology-independent.
pub fn canonical_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = events
        .iter()
        .filter(|e| !e.name.starts_with("shard."))
        .cloned()
        .collect();
    for (i, ev) in out.iter_mut().enumerate() {
        ev.seq = i as u64;
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn event_ts(ev: &TraceEvent, normalize: bool) -> u64 {
    // Normalized exports replace wall-clock with the sequence number: the
    // only nondeterministic field disappears and the output is
    // byte-identical across runs of the same seed.
    if normalize {
        ev.seq
    } else {
        ev.ts_ns
    }
}

/// Export events as JSONL: one JSON object per line, stable key order.
/// With `normalize`, timestamps are replaced by sequence numbers.
pub fn export_jsonl(events: &[TraceEvent], normalize: bool) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"ph\":\"{}\",\"span\":{},\"parent\":{},\"batch\":",
            ev.seq,
            event_ts(ev, normalize),
            ev.kind.code(),
            ev.span.0,
            ev.parent.0,
        );
        if ev.batch == NO_BATCH {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", ev.batch);
        }
        out.push_str(",\"name\":\"");
        json_escape(ev.name, &mut out);
        let _ = write!(out, "\",\"n\":{},\"detail\":\"", ev.n);
        json_escape(&ev.detail, &mut out);
        out.push_str("\"}\n");
    }
    out
}

/// Export events as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in `{"traceEvents": [...]}`), loadable in `chrome://tracing`
/// and Perfetto. Batches become tracks (`tid`), spans become `B`/`E`
/// pairs, instants become `i` events. Timestamps are microseconds; with
/// `normalize`, the sequence number stands in for the timestamp.
pub fn export_chrome(events: &[TraceEvent], normalize: bool) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        json_escape(ev.name, &mut out);
        let ts = event_ts(ev, normalize);
        let tid = if ev.batch == NO_BATCH {
            0
        } else {
            ev.batch + 1
        };
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":0,\"tid\":{}",
            ev.kind.code(),
            ts / 1000,
            ts % 1000,
            tid
        );
        if ev.kind == EventKind::Mark {
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(
            out,
            ",\"args\":{{\"seq\":{},\"span\":{},\"parent\":{},\"n\":{},\"detail\":\"",
            ev.seq, ev.span.0, ev.parent.0, ev.n
        );
        json_escape(&ev.detail, &mut out);
        out.push_str("\"}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(tracer: &Tracer) {
        let q = tracer.begin("query", NO_BATCH, SpanId::NONE);
        let b = tracer.begin("batch", 0, q);
        let op = tracer.begin("Aggregate", 0, b);
        tracer.instant("range.check", 0, op, 3, "agg=0 col=0");
        tracer.end("Aggregate", 0, op, b, 42);
        tracer.end("batch", 0, b, q, 0);
        tracer.end("query", NO_BATCH, q, SpanId::NONE, 0);
    }

    #[test]
    fn spans_nest_and_sequence() {
        let t = Tracer::new();
        mk(&t);
        let evs = t.events();
        assert_eq!(evs.len(), 7);
        assert_eq!(evs[0].name, "query");
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[2].parent, evs[1].span);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(t.recorded(), 7);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn flight_ring_drops_oldest_keeps_seq() {
        let t = Tracer::from_mode(TraceMode::Flight { capacity: 3 }).unwrap();
        mk(&t);
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.recorded(), 7);
        // Retained events are the most recent ones, seq intact.
        assert_eq!(evs[0].seq, 4);
        assert_eq!(evs[2].seq, 6);
        let dump = t.flight_dump();
        assert!(dump.contains("3 events retained, 4 dropped"));
        assert!(dump.contains("query"));
    }

    #[test]
    fn off_mode_yields_no_tracer() {
        assert!(Tracer::from_mode(TraceMode::Off).is_none());
        assert!(Tracer::from_mode(TraceMode::Journal).is_some());
    }

    #[test]
    fn self_time_subtracts_children() {
        // Hand-built events with controlled timestamps.
        let evs = vec![
            TraceEvent {
                seq: 0,
                ts_ns: 0,
                kind: EventKind::Begin,
                span: SpanId(1),
                parent: SpanId::NONE,
                batch: 0,
                name: "batch",
                n: 0,
                detail: String::new(),
            },
            TraceEvent {
                seq: 1,
                ts_ns: 10,
                kind: EventKind::Begin,
                span: SpanId(2),
                parent: SpanId(1),
                batch: 0,
                name: "Aggregate",
                n: 0,
                detail: String::new(),
            },
            TraceEvent {
                seq: 2,
                ts_ns: 70,
                kind: EventKind::End,
                span: SpanId(2),
                parent: SpanId(1),
                batch: 0,
                name: "Aggregate",
                n: 5,
                detail: String::new(),
            },
            TraceEvent {
                seq: 3,
                ts_ns: 100,
                kind: EventKind::End,
                span: SpanId(1),
                parent: SpanId::NONE,
                batch: 0,
                name: "batch",
                n: 0,
                detail: String::new(),
            },
        ];
        let st = self_time_by_name(&evs);
        assert_eq!(st["Aggregate"], 60);
        assert_eq!(st["batch"], 40); // 100 - 60 exclusive
    }

    #[test]
    fn self_time_skips_truncated_spans() {
        let evs = vec![TraceEvent {
            seq: 9,
            ts_ns: 5,
            kind: EventKind::End,
            span: SpanId(7),
            parent: SpanId(1),
            batch: 2,
            name: "orphan",
            n: 0,
            detail: String::new(),
        }];
        assert!(self_time_by_name(&evs).is_empty());
    }

    #[test]
    fn exports_are_deterministic_when_normalized() {
        let t1 = Tracer::new();
        mk(&t1);
        let t2 = Tracer::new();
        mk(&t2);
        assert_eq!(
            export_jsonl(&t1.events(), true),
            export_jsonl(&t2.events(), true)
        );
        assert_eq!(
            export_chrome(&t1.events(), true),
            export_chrome(&t2.events(), true)
        );
        let jsonl = export_jsonl(&t1.events(), true);
        assert!(jsonl.contains("\"ph\":\"B\""));
        assert!(jsonl.contains("\"batch\":null"));
        let chrome = export_chrome(&t1.events(), true);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"s\":\"t\""));
        assert!(chrome.trim_end().ends_with("]}"));
    }

    #[test]
    fn canonical_events_strip_shard_topology() {
        // Two runs of the same plan, one offloaded (extra shard.* instants
        // interleaved), one local. Canonical streams must export
        // byte-identically; span ids must survive untouched.
        let local = Tracer::new();
        mk(&local);
        let sharded = Tracer::new();
        {
            let q = sharded.begin("query", NO_BATCH, SpanId::NONE);
            let b = sharded.begin("batch", 0, q);
            let op = sharded.begin("Aggregate", 0, b);
            sharded.instant("shard.dispatch", 0, op, 2, "shards=2");
            sharded.instant("range.check", 0, op, 3, "agg=0 col=0");
            sharded.instant("shard.worker.fold", 0, op, 1024, "shard=1");
            sharded.instant("shard.merge", 0, op, 2, "");
            sharded.end("Aggregate", 0, op, b, 42);
            sharded.end("batch", 0, b, q, 0);
            sharded.end("query", NO_BATCH, q, SpanId::NONE, 0);
        }
        let a = canonical_events(&local.events());
        let b = canonical_events(&sharded.events());
        assert_eq!(export_jsonl(&a, true), export_jsonl(&b, true));
        assert!(a.iter().all(|e| !e.name.starts_with("shard.")));
        // Seq renumbered contiguously from zero.
        assert!(b.iter().enumerate().all(|(i, e)| e.seq == i as u64));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let t = std::sync::Arc::new(Tracer::new());
        let t2 = t.clone();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = t2.inner.lock().unwrap();
            panic!("poison");
        })
        .join();
        t.instant("after.panic", 0, SpanId::NONE, 0, "");
        assert_eq!(t.events().len(), 1);
    }
}
