//! Shard-parallel fold fragments: the partition-stable grid, the
//! self-contained fragment interpreter, and the [`ShardExec`] coordinator
//! trait.
//!
//! The paper's §8 scale-out runs split every mini-batch across worker
//! nodes and merge partial aggregation state at the coordinator. This
//! module is the repo's analogue. The load-bearing invariant is
//! **bit-identity across shard counts**: the published reports of an
//! N-shard run must equal the single-process run byte for byte. Floating
//! point addition is not associative, so that only holds if the *merge
//! tree* is fixed independently of N. Two rules enforce it:
//!
//! 1. **Partition grid.** Fold partition boundaries derive only from the
//!    row count ([`PARTITION_ROWS`]-row slices), never from the shard or
//!    worker count. Every partition is folded sequentially, in row order.
//! 2. **Per-partition partials.** Shards ship one partial *per grid
//!    partition* — never pre-merged per-shard state — and the coordinator
//!    merges them in global partition order. `(p0+p1)+(p2+p3)` and
//!    `((p0+p1)+p2)+p3` differ in float; shipping per-partition keeps the
//!    tree left-leaning and shard-count-free.
//!
//! A fragment describes the vectorizable aggregate sub-plan (builtin
//! COUNT/SUM/AVG over bare columns or literals — the same eligibility as
//! the columnar fast path). [`fold_fragment_partition`] interprets it
//! over one partition using the *same* gather + fold kernels as the
//! in-process columnar fold, touching each (group, call) slot in row
//! order, so a shard's partial is bit-identical to the slice of local
//! state the coordinator would have built itself.

use crate::channel::ORow;
use crate::trace::{SpanId, Tracer};
use iolap_engine::EngineError;
use iolap_relation::kernels::fold::{
    fold_count_uniform, fold_count_weighted, fold_sum_uniform, fold_sum_weighted, gather_numeric,
};
use iolap_relation::{SelVec, Value};
use std::collections::HashMap;

/// Rows per fold partition. Fixed: the grid depends only on the row
/// count, so the merge tree — and therefore every float in the published
/// report — is independent of both `parallelism` and the shard count.
pub const PARTITION_ROWS: usize = 1024;

/// Half-open `(start, end)` row ranges of the partition grid over `n`
/// rows. Empty input yields no partitions.
pub fn partition_bounds(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n.div_ceil(PARTITION_ROWS)).map(move |p| {
        let start = p * PARTITION_ROWS;
        (start, (start + PARTITION_ROWS).min(n))
    })
}

/// Aggregate kind of one fragment call (the sketchable builtins of §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FragKind {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
}

/// Where one fragment call reads its argument from.
#[derive(Clone, Debug, PartialEq)]
pub enum FragSrc {
    /// Bare input column.
    Col(usize),
    /// Constant literal (lineage-free by construction).
    Lit(Value),
}

/// A dispatchable aggregate fragment: the part of an online AGGREGATE
/// plan a shard can execute without the plan tree, the registry, or any
/// lineage context. Compiled by the aggregate operator from its columnar
/// fast plan; `None` when the aggregate is not fully vectorizable.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldFragment {
    /// Stable lineage-block id of the owning aggregate (`rel(γ)`, §6.1) —
    /// identifies the fragment across RPC frames.
    pub agg_id: u32,
    /// Group-by column indices in the input row layout.
    pub group_cols: Vec<usize>,
    /// Kind of each aggregate call.
    pub kinds: Vec<FragKind>,
    /// Argument source of each aggregate call.
    pub srcs: Vec<FragSrc>,
    /// Bootstrap trial count (length of the per-call trial vectors).
    pub trials: usize,
}

/// Main-accumulator state of one call, mirroring the engine accumulators
/// field for field so the coordinator can rebuild them losslessly
/// (`CountAcc::from_state` and friends).
#[derive(Clone, Debug, PartialEq)]
pub enum AccState {
    /// `COUNT`: Σ weight over non-null inputs.
    Count {
        /// Running weighted count.
        n: f64,
    },
    /// `SUM`: Σ x·weight plus the saw-any-numeric flag.
    Sum {
        /// Running weighted sum.
        sum: f64,
        /// Whether any numeric input contributed (NULL vs 0 on output).
        any: bool,
    },
    /// `AVG`: running sum + running count sketch.
    Avg {
        /// Running weighted sum.
        sum: f64,
        /// Running weighted count.
        n: f64,
    },
}

impl AccState {
    fn new(kind: FragKind) -> AccState {
        match kind {
            FragKind::Count => AccState::Count { n: 0.0 },
            FragKind::Sum => AccState::Sum {
                sum: 0.0,
                any: false,
            },
            FragKind::Avg => AccState::Avg { sum: 0.0, n: 0.0 },
        }
    }

    /// One row's main-accumulator update — the exact float operations of
    /// `CountAcc`/`SumAcc`/`AvgAcc::update`, in the same order.
    fn update(&mut self, v: &Value, weight: f64) {
        match self {
            AccState::Count { n } => {
                if !v.is_null() {
                    *n += weight;
                }
            }
            AccState::Sum { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x * weight;
                    *any = true;
                }
            }
            AccState::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x * weight;
                    *n += weight;
                }
            }
        }
    }
}

/// One call's partial state: main accumulator plus the per-trial `a`/`b`
/// bootstrap vectors (see `TrialState::Fast`).
#[derive(Clone, Debug, PartialEq)]
pub struct PartialCall {
    /// Main-accumulator state.
    pub acc: AccState,
    /// Per-trial Σ weight·x (or Σ weight for COUNT).
    pub a: Vec<f64>,
    /// Per-trial Σ weight over non-null inputs (AVG denominator).
    pub b: Vec<f64>,
}

/// One group's partial state within a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartialGroup {
    /// Group key (values of `group_cols`, in order).
    pub key: Vec<Value>,
    /// Whether any certain row contributed.
    pub has_certain: bool,
    /// Per-call partial state, aligned with the fragment's calls.
    pub calls: Vec<PartialCall>,
}

/// One grid partition's folded partial: every group that occurred in the
/// partition, in first-occurrence order.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldPartial {
    /// Global partition index on the [`PARTITION_ROWS`] grid.
    pub partition: usize,
    /// Per-group partials in first-occurrence order.
    pub groups: Vec<PartialGroup>,
}

impl FoldPartial {
    /// Rough serialized size (the in-process analogue of wire bytes): key
    /// cells at one word each plus 8 bytes per float slot.
    pub fn approx_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.key.len() * 8
                    + g.calls
                        .iter()
                        .map(|c| 24 + (c.a.len() + c.b.len()) * 8)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Trace context forwarded with a fold dispatch: the coordinator's
/// journal, the span the fold executes under (the aggregate's operator
/// span), and the mini-batch index. Pools that offload over a wire ship
/// `(parent, batch)` in the request frame, run a worker-local journal,
/// and stitch the worker's span summaries back under `parent` — always as
/// `shard.*`-named instants, so [`crate::trace::canonical_events`] can
/// strip them for cross-topology byte comparison.
#[derive(Clone, Copy)]
pub struct ShardTraceCtx<'a> {
    /// Coordinator journal the stitched worker events land in.
    pub tracer: &'a Tracer,
    /// Owning span of the fold (the aggregate operator span).
    pub parent: SpanId,
    /// Mini-batch index of the dispatch.
    pub batch: usize,
}

/// Per-worker counter snapshot, surfaced by [`ShardExec::worker_stats`]
/// so experiments can report fold traffic without a manual loopback probe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardWorkerStats {
    /// Worker shard index within the pool.
    pub shard: usize,
    /// Fold requests the worker served.
    pub folds: u64,
    /// Ack/ping round-trips the worker answered.
    pub acked: u64,
    /// Response bytes the worker shipped back (0 for in-process pools
    /// that only estimate via [`FoldPartial::approx_bytes`]).
    pub response_bytes: u64,
}

/// A pool of worker shards the aggregate fold can be dispatched to.
///
/// Contract: `fold` partitions `rows` on the [`partition_bounds`] grid,
/// runs [`fold_fragment_partition`] (or its moral equivalent) on each
/// partition, and returns one [`FoldPartial`] per partition — pre-merging
/// across partitions is forbidden (see the module docs for why). Returns
/// `Ok(None)` when the rows cannot be shipped (e.g. lineage cells on a
/// remote transport); the caller then folds locally.
pub trait ShardExec: Send + Sync {
    /// Number of worker shards in the pool.
    fn shards(&self) -> usize;

    /// Fold `rows` across the pool; one partial per grid partition.
    fn fold(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError>;

    /// Cumulative bytes of partial state shipped shard→coordinator (the
    /// paper's "data shipped" axis). In-process pools estimate; TCP pools
    /// measure actual frame bytes.
    fn bytes_shipped(&self) -> u64;

    /// [`ShardExec::fold`] with an optional trace context. The default
    /// ignores the context and delegates, so existing pools keep working;
    /// tracing pools propagate `trace.parent`/`trace.batch` to workers
    /// and stitch their span summaries into `trace.tracer` as `shard.*`
    /// instants (never `Begin`/`End` — span-id allocation must stay
    /// topology-independent).
    fn fold_traced(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
        trace: Option<&ShardTraceCtx<'_>>,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        let _ = trace;
        self.fold(frag, rows, certain)
    }

    /// Per-worker counter snapshots, in shard order. Default: none (pools
    /// that predate the telemetry plane, or have nothing to report).
    fn worker_stats(&self) -> Vec<ShardWorkerStats> {
        Vec::new()
    }
}

/// Interpret `frag` over one grid partition of rows.
///
/// Bit-identical to the in-process columnar fold over the same slice: it
/// gathers with the same [`gather_numeric`], folds trial vectors with the
/// same kernels, and applies the same main-accumulator float updates —
/// all in row order per (group, call) slot. Group-probe mechanics differ
/// (a generic `Value`-keyed probe instead of the typed single-column
/// probe) but that cannot move any float: probes only decide *which* slot
/// a row folds into, and `Value` equality is identical (floats compare by
/// bit pattern).
///
/// Returns `None` — partition not interpretable — when a lineage cell
/// (`Ref`/`Pending`) shows up in an argument column; such rows need
/// registry access and must fold at the coordinator.
pub fn fold_fragment_partition(
    frag: &FoldFragment,
    rows: &[ORow],
    certain: bool,
) -> Option<Vec<FoldPartial>> {
    let mut out = Vec::with_capacity(rows.len().div_ceil(PARTITION_ROWS));
    for (partition, (start, end)) in partition_bounds(rows.len()).enumerate() {
        let groups = fold_one_partition(frag, &rows[start..end], certain)?;
        out.push(FoldPartial { partition, groups });
    }
    Some(out)
}

fn fold_one_partition(
    frag: &FoldFragment,
    rows: &[ORow],
    certain: bool,
) -> Option<Vec<PartialGroup>> {
    let ncalls = frag.srcs.len();
    // Pass A: gather argument columns (bails before any state mutation
    // when a lineage cell appears — mirrors the columnar fold).
    let mut xs: Vec<Vec<f64>> = vec![Vec::new(); ncalls];
    let mut sels: Vec<SelVec> = (0..ncalls)
        .map(|_| SelVec::with_capacity(rows.len()))
        .collect();
    for (c, src) in frag.srcs.iter().enumerate() {
        let count_kind = frag.kinds[c] == FragKind::Count;
        let ok = match src {
            FragSrc::Col(j) => gather_numeric(
                rows.iter().map(|r| &r.values[*j]),
                count_kind,
                &mut xs[c],
                &mut sels[c],
            ),
            FragSrc::Lit(v) => gather_numeric(
                std::iter::repeat_n(v, rows.len()),
                count_kind,
                &mut xs[c],
                &mut sels[c],
            ),
        };
        if !ok {
            return None;
        }
    }
    // Pass B: dense group codes in first-occurrence order. Partitions are
    // at most PARTITION_ROWS rows, so the u32 code domain cannot overflow.
    let mut groups: Vec<PartialGroup> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(rows.len());
    let new_group = |key: Vec<Value>| PartialGroup {
        key,
        has_certain: certain,
        calls: frag
            .kinds
            .iter()
            .map(|k| PartialCall {
                acc: AccState::new(*k),
                a: vec![0.0; frag.trials],
                b: vec![0.0; frag.trials],
            })
            .collect(),
    };
    if frag.group_cols.is_empty() {
        if !rows.is_empty() {
            groups.push(new_group(Vec::new()));
            codes.resize(rows.len(), 0);
        }
    } else {
        let mut index: HashMap<Vec<Value>, u32> = HashMap::new();
        let mut scratch: Vec<Value> = Vec::with_capacity(frag.group_cols.len());
        for row in rows {
            scratch.clear();
            scratch.extend(frag.group_cols.iter().map(|&g| row.values[g].clone()));
            let code = match index.get(scratch.as_slice()) {
                Some(&code) => code,
                None => {
                    let code = groups.len() as u32;
                    index.insert(scratch.clone(), code);
                    groups.push(new_group(scratch.clone()));
                    code
                }
            };
            codes.push(code);
        }
    }
    // Pass C: fold per row by code — main accumulator on every row, trial
    // kernels on participating rows (per-call selection cursors).
    let mut cursors = vec![0usize; ncalls];
    for (i, row) in rows.iter().enumerate() {
        let g = &mut groups[codes[i] as usize];
        for c in 0..ncalls {
            let v: &Value = match &frag.srcs[c] {
                FragSrc::Col(j) => &row.values[*j],
                FragSrc::Lit(l) => l,
            };
            let call = &mut g.calls[c];
            call.acc.update(v, row.mult);
            let cur = cursors[c];
            if cur < sels[c].len() && sels[c].get(cur) == i {
                cursors[c] = cur + 1;
                let x = xs[c][cur];
                match (frag.kinds[c], &row.weights) {
                    (FragKind::Count, None) => fold_count_uniform(&mut call.a, row.mult),
                    (FragKind::Count, Some(ws)) => fold_count_weighted(&mut call.a, row.mult, ws),
                    (FragKind::Sum | FragKind::Avg, None) => {
                        fold_sum_uniform(&mut call.a, &mut call.b, x, row.mult)
                    }
                    (FragKind::Sum | FragKind::Avg, Some(ws)) => {
                        fold_sum_weighted(&mut call.a, &mut call.b, x, row.mult, ws)
                    }
                }
            }
        }
    }
    Some(groups)
}

/// In-process reference pool: folds every partition on the calling
/// thread. Exists so determinism tests can compare shard topologies
/// without the server crate; real pools live in `iolap-server::shard`.
#[derive(Debug, Default)]
pub struct LocalShardExec {
    shipped: std::sync::atomic::AtomicU64,
}

impl ShardExec for LocalShardExec {
    fn shards(&self) -> usize {
        1
    }

    fn fold(
        &self,
        frag: &FoldFragment,
        rows: &[ORow],
        certain: bool,
    ) -> Result<Option<Vec<FoldPartial>>, EngineError> {
        let partials = fold_fragment_partition(frag, rows, certain);
        if let Some(ps) = &partials {
            let bytes: u64 = ps.iter().map(|p| p.approx_bytes() as u64).sum();
            self.shipped
                .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(partials)
    }

    fn bytes_shipped(&self) -> u64 {
        self.shipped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn row(vals: Vec<Value>, mult: f64, weights: Option<Vec<f64>>) -> ORow {
        ORow {
            values: Arc::from(vals),
            mult,
            weights: weights.map(Arc::from),
        }
    }

    fn frag() -> FoldFragment {
        FoldFragment {
            agg_id: 7,
            group_cols: vec![0],
            kinds: vec![FragKind::Count, FragKind::Sum, FragKind::Avg],
            srcs: vec![FragSrc::Col(1), FragSrc::Col(1), FragSrc::Col(1)],
            trials: 2,
        }
    }

    #[test]
    fn grid_depends_only_on_row_count() {
        assert_eq!(partition_bounds(0).count(), 0);
        assert_eq!(partition_bounds(1).collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(partition_bounds(1024).collect::<Vec<_>>(), vec![(0, 1024)]);
        assert_eq!(
            partition_bounds(1025).collect::<Vec<_>>(),
            vec![(0, 1024), (1024, 1025)]
        );
        assert_eq!(partition_bounds(4096).count(), 4);
    }

    #[test]
    fn interpreter_folds_groups_in_first_occurrence_order() {
        let rows = vec![
            row(vec![Value::str("b"), Value::Float(2.0)], 1.0, None),
            row(vec![Value::str("a"), Value::Float(3.0)], 1.0, None),
            row(vec![Value::str("b"), Value::Float(5.0)], 1.0, None),
        ];
        let partials = fold_fragment_partition(&frag(), &rows, true).unwrap();
        assert_eq!(partials.len(), 1);
        let groups = &partials[0].groups;
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].key, vec![Value::str("b")]);
        assert_eq!(groups[1].key, vec![Value::str("a")]);
        assert!(groups[0].has_certain);
        // b: count 2, sum 7; a: count 1, sum 3.
        assert_eq!(groups[0].calls[0].acc, AccState::Count { n: 2.0 });
        assert_eq!(
            groups[0].calls[1].acc,
            AccState::Sum {
                sum: 7.0,
                any: true
            }
        );
        assert_eq!(groups[1].calls[2].acc, AccState::Avg { sum: 3.0, n: 1.0 });
        // Trial vectors: uniform weights fold mult into every slot.
        assert_eq!(groups[0].calls[0].a, vec![2.0, 2.0]);
        assert_eq!(groups[0].calls[1].a, vec![7.0, 7.0]);
    }

    #[test]
    fn interpreter_applies_poisson_weights_per_trial() {
        let rows = vec![row(
            vec![Value::Int(1), Value::Float(10.0)],
            1.0,
            Some(vec![0.0, 2.0]),
        )];
        let partials = fold_fragment_partition(&frag(), &rows, false).unwrap();
        let g = &partials[0].groups[0];
        assert!(!g.has_certain);
        // COUNT trials: m·w per slot.
        assert_eq!(g.calls[0].a, vec![0.0, 2.0]);
        // SUM trials: m·w·x ; denominator m·w.
        assert_eq!(g.calls[1].a, vec![0.0, 20.0]);
        assert_eq!(g.calls[1].b, vec![0.0, 2.0]);
        // Main accumulators use mult only (trial weights are resamples).
        assert_eq!(g.calls[0].acc, AccState::Count { n: 1.0 });
    }

    #[test]
    fn interpreter_bails_on_lineage_cells() {
        let rows = vec![row(
            vec![
                Value::Int(1),
                Value::Ref(iolap_relation::AggRef {
                    agg: 0,
                    column: 0,
                    key: Arc::from(Vec::new()),
                }),
            ],
            1.0,
            None,
        )];
        assert_eq!(fold_fragment_partition(&frag(), &rows, true), None);
    }

    #[test]
    fn interpreter_splits_on_the_grid() {
        let rows: Vec<ORow> = (0..2050)
            .map(|i| row(vec![Value::Int(0), Value::Float(i as f64)], 1.0, None))
            .collect();
        let partials = fold_fragment_partition(&frag(), &rows, true).unwrap();
        assert_eq!(partials.len(), 3);
        assert_eq!(partials[0].partition, 0);
        assert_eq!(partials[2].partition, 2);
        let counts: Vec<f64> = partials
            .iter()
            .map(|p| match p.groups[0].calls[0].acc {
                AccState::Count { n } => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(counts, vec![1024.0, 1024.0, 2.0]);
        assert!(partials[0].approx_bytes() > 0);
    }

    #[test]
    fn local_exec_counts_shipped_bytes() {
        let rows = vec![row(vec![Value::Int(1), Value::Float(2.0)], 1.0, None)];
        let exec = LocalShardExec::default();
        let out = exec.fold(&frag(), &rows, true).unwrap().unwrap();
        assert_eq!(out.len(), 1);
        assert!(exec.bytes_shipped() > 0);
        assert_eq!(exec.shards(), 1);
    }
}
