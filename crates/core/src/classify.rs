//! Predicate classification over uncertain attributes (§5.1–§5.2).
//!
//! At a predicate `x ϑ y` involving uncertain values, iOLAP partitions input
//! tuples into the *near-deterministic* set (variation ranges of the two
//! sides are disjoint, so the decision can never flip) and the
//! *non-deterministic* set (ranges overlap; the tuple must be saved and
//! re-evaluated). This module evaluates expression trees to *intervals*:
//! deterministic operands become point intervals, lineage refs pull their
//! tracked variation ranges from the registry, pending (folded-lineage)
//! cells recurse into their captured rows, and arithmetic combines intervals
//! conservatively.

use crate::registry::{AggRegistry, ThunkPayload};
use iolap_bootstrap::interval;
use iolap_bootstrap::VariationRange;
use iolap_engine::{ArithOp, CmpOp, EvalContext, Expr};
use iolap_relation::{Row, Value};

/// Interval evaluation result for one expression.
#[derive(Clone, Debug, PartialEq)]
pub enum IntervalValue {
    /// A deterministic value (not necessarily numeric).
    Point(Value),
    /// A numeric range of possible values.
    Range(VariationRange),
    /// Uncertain with no usable range (conservative).
    Unknown,
}

impl IntervalValue {
    /// Numeric range view: points coerce, `Unknown` becomes unbounded.
    pub fn as_range(&self) -> Option<VariationRange> {
        match self {
            IntervalValue::Point(v) => v.as_f64().map(VariationRange::point),
            IntervalValue::Range(r) => Some(*r),
            IntervalValue::Unknown => Some(VariationRange::unbounded()),
        }
    }

    /// Whether this side is deterministic.
    pub fn is_point(&self) -> bool {
        matches!(self, IntervalValue::Point(_))
    }
}

/// Three-valued classification of a predicate on one tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Satisfied across all remaining batches (near-deterministic, true).
    AlwaysTrue,
    /// Violated across all remaining batches (near-deterministic, false).
    AlwaysFalse,
    /// May flip: the tuple belongs to the non-deterministic set `U_i`.
    Uncertain,
}

impl Decision {
    fn from_bool(b: bool) -> Decision {
        if b {
            Decision::AlwaysTrue
        } else {
            Decision::AlwaysFalse
        }
    }

    fn not(self) -> Decision {
        match self {
            Decision::AlwaysTrue => Decision::AlwaysFalse,
            Decision::AlwaysFalse => Decision::AlwaysTrue,
            Decision::Uncertain => Decision::Uncertain,
        }
    }

    fn and(self, other: Decision) -> Decision {
        use Decision::*;
        match (self, other) {
            (AlwaysFalse, _) | (_, AlwaysFalse) => AlwaysFalse,
            (AlwaysTrue, AlwaysTrue) => AlwaysTrue,
            _ => Uncertain,
        }
    }

    fn or(self, other: Decision) -> Decision {
        use Decision::*;
        match (self, other) {
            (AlwaysTrue, _) | (_, AlwaysTrue) => AlwaysTrue,
            (AlwaysFalse, AlwaysFalse) => AlwaysFalse,
            _ => Uncertain,
        }
    }
}

/// Evaluate `expr` on `row` to an interval, pulling variation ranges of
/// lineage refs from `registry`.
pub fn interval_of(expr: &Expr, row: &Row, registry: &AggRegistry) -> IntervalValue {
    match expr {
        Expr::Col(i) => cell_interval(&row.values[*i], registry),
        Expr::Lit(v) => IntervalValue::Point(v.clone()),
        Expr::Neg(e) => match interval_of(e, row, registry) {
            IntervalValue::Point(v) => match v.as_f64() {
                Some(x) => IntervalValue::Point(Value::Float(-x)),
                None => IntervalValue::Unknown,
            },
            IntervalValue::Range(r) => IntervalValue::Range(interval::neg(r)),
            IntervalValue::Unknown => IntervalValue::Unknown,
        },
        Expr::Arith { op, left, right } => {
            let l = interval_of(left, row, registry);
            let r = interval_of(right, row, registry);
            if let (IntervalValue::Point(a), IntervalValue::Point(b)) = (&l, &r) {
                // Both deterministic: exact arithmetic.
                return match iolap_engine::expr::arith(*op, a, b) {
                    Ok(v) => IntervalValue::Point(v),
                    Err(_) => IntervalValue::Unknown,
                };
            }
            let (Some(a), Some(b)) = (l.as_range(), r.as_range()) else {
                return IntervalValue::Unknown;
            };
            let out = match op {
                ArithOp::Add => interval::add(a, b),
                ArithOp::Sub => interval::sub(a, b),
                ArithOp::Mul => interval::mul(a, b),
                ArithOp::Div => interval::div(a, b),
                ArithOp::Mod => return IntervalValue::Unknown,
            };
            IntervalValue::Range(out)
        }
        // Boolean-valued or opaque expressions: evaluate exactly when all
        // referenced cells are deterministic, else Unknown.
        other => {
            if expr_deterministic(other, row) {
                let ctx = EvalContext::with_resolver(registry);
                match other.eval(row, &ctx) {
                    Ok(v) => IntervalValue::Point(v),
                    Err(_) => IntervalValue::Unknown,
                }
            } else {
                IntervalValue::Unknown
            }
        }
    }
}

fn cell_interval(v: &Value, registry: &AggRegistry) -> IntervalValue {
    match v {
        Value::Ref(r) => match registry.range(r) {
            Some(range) => IntervalValue::Range(range),
            None => IntervalValue::Unknown,
        },
        Value::Pending(c) => match c.payload.downcast_ref::<ThunkPayload>() {
            Some(thunk) => {
                let inner = Row {
                    values: thunk.row.clone(),
                    mult: 1.0,
                };
                interval_of(&thunk.expr, &inner, registry)
            }
            None => IntervalValue::Unknown,
        },
        other => IntervalValue::Point(other.clone()),
    }
}

/// True when no cell referenced by `expr` is a lineage ref or thunk.
fn expr_deterministic(expr: &Expr, row: &Row) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    cols.iter()
        .all(|&c| !matches!(&row.values[c], Value::Ref(_) | Value::Pending(_)))
}

/// Collect every lineage ref reachable from the columns `expr` references
/// in `row` (descending into folded-lineage thunks). Used to record which
/// variation ranges a near-deterministic decision depended on.
pub fn collect_refs(expr: &Expr, row: &Row, out: &mut Vec<iolap_relation::AggRef>) {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    for c in cols {
        collect_cell_refs(&row.values[c], out);
    }
}

fn collect_cell_refs(v: &Value, out: &mut Vec<iolap_relation::AggRef>) {
    match v {
        Value::Ref(r) => out.push(r.clone()),
        Value::Pending(c) => {
            if let Some(thunk) = c.payload.downcast_ref::<ThunkPayload>() {
                let inner = Row {
                    values: thunk.row.clone(),
                    mult: 1.0,
                };
                collect_refs(&thunk.expr, &inner, out);
            }
        }
        _ => {}
    }
}

/// Classify a predicate on one tuple (§5.2's refined SELECT rule):
/// near-deterministic when the variation ranges decide the comparison,
/// non-deterministic otherwise.
pub fn classify(pred: &Expr, row: &Row, registry: &AggRegistry) -> Decision {
    match pred {
        Expr::Cmp { op, left, right } => {
            let l = interval_of(left, row, registry);
            let r = interval_of(right, row, registry);
            classify_cmp(*op, &l, &r)
        }
        Expr::And(a, b) => classify(a, row, registry).and(classify(b, row, registry)),
        Expr::Or(a, b) => classify(a, row, registry).or(classify(b, row, registry)),
        Expr::Not(e) => classify(e, row, registry).not(),
        Expr::Between { expr, low, high } => {
            let ge = Expr::Cmp {
                op: CmpOp::Ge,
                left: expr.clone(),
                right: low.clone(),
            };
            let le = Expr::Cmp {
                op: CmpOp::Le,
                left: expr.clone(),
                right: high.clone(),
            };
            classify(&ge, row, registry).and(classify(&le, row, registry))
        }
        other => {
            // Non-comparison predicate (LIKE, UDF, bare bool, CASE): decided
            // exactly when deterministic, else non-deterministic.
            if expr_deterministic(other, row) {
                let ctx = EvalContext::with_resolver(registry);
                match other.eval_predicate(row, &ctx) {
                    Ok(b) => Decision::from_bool(b),
                    Err(_) => Decision::Uncertain,
                }
            } else {
                Decision::Uncertain
            }
        }
    }
}

fn classify_cmp(op: CmpOp, l: &IntervalValue, r: &IntervalValue) -> Decision {
    // Both deterministic: exact decision.
    if let (IntervalValue::Point(a), IntervalValue::Point(b)) = (l, r) {
        let v = iolap_engine::expr::compare(op, a, b);
        return Decision::from_bool(matches!(v, Value::Bool(true)));
    }
    let (Some(a), Some(b)) = (l.as_range(), r.as_range()) else {
        return Decision::Uncertain;
    };
    match op {
        CmpOp::Lt => {
            if a.hi < b.lo {
                Decision::AlwaysTrue
            } else if a.lo >= b.hi {
                Decision::AlwaysFalse
            } else {
                Decision::Uncertain
            }
        }
        CmpOp::Le => {
            if a.hi <= b.lo {
                Decision::AlwaysTrue
            } else if a.lo > b.hi {
                Decision::AlwaysFalse
            } else {
                Decision::Uncertain
            }
        }
        CmpOp::Gt => classify_cmp(CmpOp::Lt, r, l),
        CmpOp::Ge => classify_cmp(CmpOp::Le, r, l),
        CmpOp::Eq => {
            if !a.overlaps(&b) {
                Decision::AlwaysFalse
            } else if a.width() == 0.0 && b.width() == 0.0 && a.lo == b.lo {
                Decision::AlwaysTrue
            } else {
                Decision::Uncertain
            }
        }
        CmpOp::Neq => classify_cmp(CmpOp::Eq, l, r).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_relation::AggRef;
    use std::sync::Arc;

    fn registry_with_avg(lo_trials: f64, hi_trials: f64, slack: f64) -> AggRegistry {
        let mut reg = AggRegistry::new();
        reg.publish(
            0,
            Arc::from(Vec::<Value>::new()),
            vec![Value::Float((lo_trials + hi_trials) / 2.0)],
            vec![Arc::from(vec![lo_trials, hi_trials])],
            slack,
        );
        reg
    }

    fn avg_ref() -> Value {
        Value::Ref(AggRef {
            agg: 0,
            column: 0,
            key: Arc::from(Vec::<Value>::new()),
        })
    }

    fn gt_pred() -> Expr {
        // buffer_time > AVG  (col 0 vs col 1)
        Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Col(1)),
        }
    }

    #[test]
    fn example_2_near_deterministic_pruning() {
        // Paper Example 2: R(AVG(buffer_time)) = [21.1, 53.9] (we build it
        // with zero slack from trials at the endpoints). buffer_time 58 is
        // always selected, 17 always filtered, 36 uncertain.
        let reg = registry_with_avg(21.1, 53.9, 0.0);
        let mk = |bt: f64| Row {
            values: vec![Value::Float(bt), avg_ref()].into(),
            mult: 1.0,
        };
        assert_eq!(classify(&gt_pred(), &mk(58.0), &reg), Decision::AlwaysTrue);
        assert_eq!(classify(&gt_pred(), &mk(17.0), &reg), Decision::AlwaysFalse);
        assert_eq!(classify(&gt_pred(), &mk(36.0), &reg), Decision::Uncertain);
    }

    #[test]
    fn deterministic_predicate_decides_exactly() {
        let reg = AggRegistry::new();
        let pred = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Lit(Value::Float(10.0))),
        };
        let row = Row {
            values: vec![Value::Float(3.0)].into(),
            mult: 1.0,
        };
        assert_eq!(classify(&pred, &row, &reg), Decision::AlwaysTrue);
    }

    #[test]
    fn arithmetic_over_ranges() {
        // l_quantity < 0.2 * AVG: with R(AVG) = [40, 50], 0.2*AVG ∈ [8, 10].
        let reg = registry_with_avg(40.0, 50.0, 0.0);
        let pred = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Arith {
                op: ArithOp::Mul,
                left: Box::new(Expr::Lit(Value::Float(0.2))),
                right: Box::new(Expr::Col(1)),
            }),
        };
        let mk = |q: f64| Row {
            values: vec![Value::Float(q), avg_ref()].into(),
            mult: 1.0,
        };
        assert_eq!(classify(&pred, &mk(5.0), &reg), Decision::AlwaysTrue);
        assert_eq!(classify(&pred, &mk(15.0), &reg), Decision::AlwaysFalse);
        assert_eq!(classify(&pred, &mk(9.0), &reg), Decision::Uncertain);
    }

    #[test]
    fn and_or_three_valued() {
        let reg = registry_with_avg(21.1, 53.9, 0.0);
        let t = Expr::Lit(Value::Bool(true));
        let f = Expr::Lit(Value::Bool(false));
        let row = Row {
            values: vec![Value::Float(36.0), avg_ref()].into(),
            mult: 1.0,
        };
        let unc = gt_pred();
        // false AND uncertain = false; true OR uncertain = true.
        assert_eq!(
            classify(
                &Expr::And(Box::new(f.clone()), Box::new(unc.clone())),
                &row,
                &reg
            ),
            Decision::AlwaysFalse
        );
        assert_eq!(
            classify(&Expr::Or(Box::new(t), Box::new(unc.clone())), &row, &reg),
            Decision::AlwaysTrue
        );
        assert_eq!(
            classify(
                &Expr::And(Box::new(Expr::Lit(Value::Bool(true))), Box::new(unc)),
                &row,
                &reg
            ),
            Decision::Uncertain
        );
    }

    #[test]
    fn equality_on_uncertain_side() {
        let reg = registry_with_avg(40.0, 50.0, 0.0);
        let pred = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Col(0)),
            right: Box::new(Expr::Col(1)),
        };
        let inside = Row {
            values: vec![Value::Float(45.0), avg_ref()].into(),
            mult: 1.0,
        };
        let outside = Row {
            values: vec![Value::Float(100.0), avg_ref()].into(),
            mult: 1.0,
        };
        assert_eq!(classify(&pred, &inside, &reg), Decision::Uncertain);
        assert_eq!(classify(&pred, &outside, &reg), Decision::AlwaysFalse);
    }

    #[test]
    fn unknown_ref_stays_uncertain() {
        // No published range yet → conservative.
        let reg = AggRegistry::new();
        let row = Row {
            values: vec![Value::Float(36.0), avg_ref()].into(),
            mult: 1.0,
        };
        assert_eq!(classify(&gt_pred(), &row, &reg), Decision::Uncertain);
    }
}
