//! Deterministic, seed-driven fault injection for the §5.1 recovery path.
//!
//! The paper's robustness claim (Theorem 1) rests on the controller
//! detecting variation-range integrity failures and recovering by
//! checkpoint restore + suffix replay. This module makes that path
//! *testable under adversity*: a [`FaultPlan`] in
//! [`IolapConfig`](crate::config::IolapConfig) schedules concrete faults —
//! forced range failures, dropped or corrupted checkpoints, panics inside
//! fold workers or registry derefs, perturbed variation ranges, and
//! durable-log damage (torn writes, truncated segments, stale manifest
//! digests) — at chosen mini-batches, and the
//! driver/registry/operators/durable layer consult the plan's
//! [`FaultInjector`] at the corresponding hook points.
//!
//! Design rules:
//!
//! * **Deterministic.** Every fault fires at an exact `(kind, batch)`
//!   coordinate; range perturbation jitter is a pure hash of
//!   `(seed, agg, column, batch)`. Two runs of the same plan inject
//!   identically.
//! * **One-shot.** Point faults (forced failure, checkpoint drop/corrupt,
//!   panics) fire at most once, claimed via atomic compare-exchange so a
//!   fault armed inside parallel fold workers fires on exactly one worker.
//!   [`FaultKind::PerturbRanges`] instead stays active for its whole batch
//!   (every range read and publication during that batch is perturbed).
//! * **Unreachable unless armed.** The injector only exists when
//!   `config.fault_plan` is `Some`; every call site outside this module is
//!   gated on that `Option` (srclint rule `L004` enforces the gate and
//!   accepts no allowlist entries). A production config pays one pointer
//!   check per hook.
//! * **Sound perturbation only.** `PerturbRanges` *widens* the range that
//!   classification sees (more tuples stay in the non-deterministic set —
//!   conservative) and *shrinks* the envelope the tracker observes at
//!   publication (failures fire earlier — recovery handles them). The
//!   unsound direction (narrowing the classification view) is deliberately
//!   not expressible.

use crate::trace::{SpanId, Tracer};
use iolap_bootstrap::VariationRange;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// What to break. See the module docs for firing semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Force a `RangeOutcome::Failure` on the first matching outcome the
    /// driver examines at the armed batch. `agg`/`column` filter which
    /// aggregate cell is hit; `None` matches any.
    FailRange {
        /// Aggregate id to match (`None` = any).
        agg: Option<u32>,
        /// Output column to match (`None` = any).
        column: Option<u16>,
    },
    /// Silently skip the checkpoint save scheduled after the armed batch
    /// (models a lost checkpoint write).
    DropCheckpoint,
    /// Corrupt the checkpoint saved after the armed batch: its integrity
    /// digest is damaged, so a later restore detects the mismatch and falls
    /// back to an older checkpoint (models bit rot / a torn write).
    CorruptCheckpoint,
    /// Panic inside one parallel fold worker at the armed batch (models a
    /// poisoned UDAF or a crashed partition).
    WorkerPanic,
    /// Panic inside a registry lineage dereference at the armed batch
    /// (models a corrupted broadcast table lookup).
    DerefPanic,
    /// Perturb every variation range touched during the armed batch:
    /// classification sees ranges widened by a relative `epsilon`, and
    /// published envelopes observed by the tracker shrink by `epsilon` —
    /// near-deterministic pruning decisions flip, in the sound directions
    /// only.
    PerturbRanges {
        /// Relative perturbation magnitude (e.g. `0.15`).
        epsilon: f64,
    },
    /// Tear the durable-log append at the armed batch boundary: only a
    /// prefix of the frame reaches disk, as when power fails mid-`write`.
    /// The segment reader's CRC framing detects the tear and recovery
    /// falls back to the valid prefix (a longer replay, same answer).
    TornWrite,
    /// Chop already-flushed bytes off the durable-log tail after the armed
    /// batch (models a filesystem losing its tail on crash — the torn
    /// write's nastier sibling: the damage lands on frames that were
    /// reported durable).
    TruncatedSegment,
    /// Damage the checkpoint digest recorded in the durable log at the
    /// armed batch (models a stale or bit-rotted manifest entry). Resume
    /// must detect the mismatch against the re-derived in-memory digest
    /// and count the record stale instead of trusting it.
    StaleManifest,
}

impl FaultKind {
    /// Stable label used in reports and the `--json` `"faults"` record.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::FailRange { .. } => "fail_range",
            FaultKind::DropCheckpoint => "drop_checkpoint",
            FaultKind::CorruptCheckpoint => "corrupt_checkpoint",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::DerefPanic => "deref_panic",
            FaultKind::PerturbRanges { .. } => "perturb_ranges",
            FaultKind::TornWrite => "torn_write",
            FaultKind::TruncatedSegment => "truncated_segment",
            FaultKind::StaleManifest => "stale_manifest",
        }
    }
}

/// One scheduled fault: fire `kind` while processing mini-batch `batch`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fault {
    /// The fault to inject.
    pub kind: FaultKind,
    /// 0-based mini-batch index at which it arms.
    pub batch: usize,
}

/// A deterministic schedule of faults, carried by
/// [`IolapConfig::fault_plan`](crate::config::IolapConfig::fault_plan).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for perturbation jitter (independent of the engine seed so a
    /// storm can vary faults while holding data constant).
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Empty plan with a jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: schedule `kind` at `batch`.
    pub fn with(mut self, batch: usize, kind: FaultKind) -> Self {
        self.faults.push(Fault { kind, batch });
        self
    }
}

/// Runtime state of a [`FaultPlan`]: tracks which faults have fired and the
/// batch currently being processed. Shared (`Arc`) between the driver, the
/// registry (surviving checkpoint clones), and fold workers; all methods
/// take `&self`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// One-shot claim flag per scheduled fault.
    claimed: Vec<AtomicBool>,
    /// Times each fault actually fired (perturbation counts every touch).
    fires: Vec<AtomicU64>,
    /// Batch currently being processed, set by the driver; hooks that lack
    /// batch context (registry derefs, range reads) consult it.
    current_batch: AtomicUsize,
    /// Trace journal: every fault that actually fires emits a
    /// `fault.injected` instant event (perturbation emits one per batch
    /// activation, not one per touched range).
    tracer: Option<Arc<Tracer>>,
}

impl FaultInjector {
    /// Injector for `plan`, with nothing fired yet.
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.faults.len();
        FaultInjector {
            plan,
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            fires: (0..n).map(|_| AtomicU64::new(0)).collect(),
            current_batch: AtomicUsize::new(usize::MAX),
            tracer: None,
        }
    }

    /// Attach a trace journal; fired faults become `fault.injected` events.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The driver announces the batch it is about to process.
    pub fn begin_batch(&self, batch: usize) {
        self.current_batch.store(batch, Ordering::Relaxed);
    }

    /// Batch currently being processed (`usize::MAX` before the first).
    fn batch_now(&self) -> usize {
        self.current_batch.load(Ordering::Relaxed)
    }

    /// Claim the one-shot fault at plan index `i`; true exactly once.
    fn claim(&self, i: usize) -> bool {
        let won = self.claimed[i]
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if won {
            self.fires[i].fetch_add(1, Ordering::Relaxed);
            self.trace_fire(i);
        }
        won
    }

    /// Journal that the fault at plan index `i` fired. Called at most once
    /// per fault (one-shot claim win, or first perturbation touch of a
    /// batch), so the flight recorder names every injected fault exactly
    /// once.
    fn trace_fire(&self, i: usize) {
        if let Some(t) = &self.tracer {
            let f = &self.plan.faults[i];
            t.instant(
                "fault.injected",
                self.batch_now(),
                SpanId::NONE,
                f.batch as u64,
                f.kind.label(),
            );
        }
    }

    /// Driver hook: should the outcome for `(agg, column)` examined during
    /// the current batch be forced into a range failure? One-shot.
    pub fn inject_range_failure(&self, agg: u32, column: u16) -> bool {
        let now = self.batch_now();
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.batch != now {
                continue;
            }
            if let FaultKind::FailRange { agg: a, column: c } = &f.kind {
                let hit =
                    a.map(|x| x == agg).unwrap_or(true) && c.map(|x| x == column).unwrap_or(true);
                if hit && self.claim(i) {
                    return true;
                }
            }
        }
        false
    }

    /// Driver hook: should the checkpoint save after `batch` be dropped?
    pub fn inject_checkpoint_drop(&self, batch: usize) -> bool {
        self.point_fault(batch, |k| matches!(k, FaultKind::DropCheckpoint))
    }

    /// Driver hook: should the checkpoint saved after `batch` be corrupted?
    pub fn inject_checkpoint_corruption(&self, batch: usize) -> bool {
        self.point_fault(batch, |k| matches!(k, FaultKind::CorruptCheckpoint))
    }

    /// Fold-worker hook: panics (on exactly one worker) when a
    /// [`FaultKind::WorkerPanic`] is armed for `batch`. The panic itself
    /// lives here so the operator hot paths stay free of panic sites
    /// (srclint L001); the scoped-thread join converts it to an
    /// `EngineError`.
    pub fn inject_worker_panic(&self, batch: usize) {
        if self.point_fault(batch, |k| matches!(k, FaultKind::WorkerPanic)) {
            panic!("injected fault: fold worker panic at batch {batch}");
        }
    }

    /// Registry hook: panics inside a lineage dereference when a
    /// [`FaultKind::DerefPanic`] is armed for the current batch.
    pub fn inject_deref_panic(&self) {
        let now = self.batch_now();
        if self.point_fault(now, |k| matches!(k, FaultKind::DerefPanic)) {
            panic!("injected fault: registry deref panic at batch {now}");
        }
    }

    /// Registry hook: the variation range classification is about to see.
    /// Under an armed [`FaultKind::PerturbRanges`], widen it by epsilon
    /// (relative, with deterministic jitter) — the sound direction: more
    /// tuples stay non-deterministic.
    pub fn inject_range_widening(
        &self,
        agg: u32,
        column: u16,
        range: VariationRange,
    ) -> VariationRange {
        match self.active_epsilon() {
            None => range,
            Some((i, eps)) => {
                if self.fires[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    self.trace_fire(i);
                }
                let pad = eps * self.jitter(agg, column) * span_scale(range.lo, range.hi);
                VariationRange {
                    lo: range.lo - pad,
                    hi: range.hi + pad,
                }
            }
        }
    }

    /// Registry hook: the scaled `(lo, hi)` envelope about to be observed
    /// by a range tracker. Under an armed [`FaultKind::PerturbRanges`],
    /// shrink it toward its midpoint — the sound direction: escapes are
    /// detected earlier and buy a recovery replay.
    pub fn inject_envelope_shrink(&self, agg: u32, column: u16, lo: f64, hi: f64) -> (f64, f64) {
        match self.active_epsilon() {
            None => (lo, hi),
            Some((i, eps)) => {
                if self.fires[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    self.trace_fire(i);
                }
                let cut = 0.5 * eps * self.jitter(agg, column) * (hi - lo).max(0.0);
                let (lo2, hi2) = (lo + cut, hi - cut);
                if lo2 <= hi2 {
                    (lo2, hi2)
                } else {
                    let mid = 0.5 * (lo + hi);
                    (mid, mid)
                }
            }
        }
    }

    /// Durable-layer hook: should the log append at the `batch` boundary
    /// be torn? Returns the surviving fraction of the frame
    /// (deterministic, in `[0.5, 1.0]`); `None` when not armed. One-shot.
    pub fn inject_torn_write(&self, batch: usize) -> Option<f64> {
        if self.point_fault(batch, |k| matches!(k, FaultKind::TornWrite)) {
            Some(self.jitter(SALT_TORN, 0))
        } else {
            None
        }
    }

    /// Durable-layer hook: should flushed bytes be chopped off the log
    /// tail after the `batch` boundary? Returns the damage fraction the
    /// caller maps onto a byte count; `None` when not armed. One-shot.
    pub fn inject_truncated_segment(&self, batch: usize) -> Option<f64> {
        if self.point_fault(batch, |k| matches!(k, FaultKind::TruncatedSegment)) {
            Some(self.jitter(SALT_TRUNC, 0))
        } else {
            None
        }
    }

    /// Durable-layer hook: XOR mask to damage the checkpoint digest
    /// recorded at the `batch` boundary. Always nonzero (low bit pinned),
    /// so the on-disk digest provably disagrees with the re-derived one;
    /// `None` when not armed. One-shot.
    pub fn inject_stale_manifest(&self, batch: usize) -> Option<u64> {
        if self.point_fault(batch, |k| matches!(k, FaultKind::StaleManifest)) {
            Some(self.mix64(SALT_STALE, 0) | 1)
        } else {
            None
        }
    }

    /// Per-fault firing record: `(kind label, armed batch, fire count)`.
    pub fn fired(&self) -> Vec<(&'static str, usize, u64)> {
        self.plan
            .faults
            .iter()
            .zip(self.fires.iter())
            .map(|(f, n)| (f.kind.label(), f.batch, n.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total fires across all scheduled faults.
    pub fn total_fired(&self) -> u64 {
        self.fires.iter().map(|n| n.load(Ordering::Relaxed)).sum()
    }

    /// Claim a one-shot fault of a matching kind armed for `batch`.
    fn point_fault(&self, batch: usize, matches_kind: impl Fn(&FaultKind) -> bool) -> bool {
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.batch == batch && matches_kind(&f.kind) && self.claim(i) {
                return true;
            }
        }
        false
    }

    /// The epsilon of a `PerturbRanges` fault armed for the current batch,
    /// with its plan index (for fire accounting).
    fn active_epsilon(&self) -> Option<(usize, f64)> {
        let now = self.batch_now();
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.batch == now {
                if let FaultKind::PerturbRanges { epsilon } = f.kind {
                    return Some((i, epsilon));
                }
            }
        }
        None
    }

    /// Deterministic jitter in `[0.5, 1.0]` from
    /// `(plan seed, agg, column, current batch)` — splitmix64 finalizer.
    fn jitter(&self, agg: u32, column: u16) -> f64 {
        let z = self.mix64(agg, column);
        0.5 + 0.5 * ((z >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Raw splitmix64 hash of `(plan seed, agg, column, current batch)` —
    /// the jitter source, also used directly where a deterministic bit
    /// pattern (not a fraction) is wanted.
    fn mix64(&self, agg: u32, column: u16) -> u64 {
        let mut z = self
            .plan
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((agg as u64) << 32)
            .wrapping_add((column as u64) << 16)
            .wrapping_add(self.batch_now() as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Jitter-salt coordinates for the durable-layer faults, so each kind
/// draws an independent deterministic stream from the same plan seed.
const SALT_TORN: u32 = 0xD0_0001;
const SALT_TRUNC: u32 = 0xD0_0002;
const SALT_STALE: u32 = 0xD0_0003;

/// Width scale for absolute perturbation of a possibly-degenerate range:
/// the span itself when meaningful, else the magnitude of the values, else
/// unit.
fn span_scale(lo: f64, hi: f64) -> f64 {
    let span = (hi - lo).abs();
    if span > f64::EPSILON {
        span
    } else {
        lo.abs().max(hi.abs()).max(1.0)
    }
}

/// Render a panic payload for error messages (shared by the driver's
/// catch-unwind barrier).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_faults_fire_once_at_their_batch() {
        let inj = FaultInjector::new(FaultPlan::new(1).with(2, FaultKind::DropCheckpoint).with(
            2,
            FaultKind::FailRange {
                agg: None,
                column: None,
            },
        ));
        assert!(!inj.inject_checkpoint_drop(1), "wrong batch must not fire");
        assert!(inj.inject_checkpoint_drop(2));
        assert!(!inj.inject_checkpoint_drop(2), "one-shot");
        inj.begin_batch(2);
        assert!(inj.inject_range_failure(7, 0));
        assert!(!inj.inject_range_failure(7, 0), "one-shot");
        assert_eq!(inj.total_fired(), 2);
    }

    #[test]
    fn fail_range_respects_matchers_and_batch() {
        let inj = FaultInjector::new(FaultPlan::new(1).with(
            3,
            FaultKind::FailRange {
                agg: Some(1),
                column: Some(0),
            },
        ));
        inj.begin_batch(2);
        assert!(!inj.inject_range_failure(1, 0), "not armed yet");
        inj.begin_batch(3);
        assert!(!inj.inject_range_failure(2, 0), "agg mismatch");
        assert!(!inj.inject_range_failure(1, 1), "column mismatch");
        assert!(inj.inject_range_failure(1, 0));
    }

    #[test]
    fn perturbation_widens_view_and_shrinks_envelope() {
        let inj = FaultInjector::new(
            FaultPlan::new(9).with(1, FaultKind::PerturbRanges { epsilon: 0.2 }),
        );
        inj.begin_batch(1);
        let r = inj.inject_range_widening(0, 0, VariationRange { lo: 10.0, hi: 20.0 });
        assert!(
            r.lo < 10.0 && r.hi > 20.0,
            "classification view widens: {r:?}"
        );
        let (lo, hi) = inj.inject_envelope_shrink(0, 0, 10.0, 20.0);
        assert!(
            lo > 10.0 && hi < 20.0 && lo <= hi,
            "envelope shrinks: {lo} {hi}"
        );
        // Deterministic: same coordinates → same perturbation.
        let r2 = inj.inject_range_widening(0, 0, VariationRange { lo: 10.0, hi: 20.0 });
        assert_eq!((r.lo, r.hi), (r2.lo, r2.hi));
        // Inactive outside the armed batch.
        inj.begin_batch(2);
        let r3 = inj.inject_range_widening(0, 0, VariationRange { lo: 10.0, hi: 20.0 });
        assert_eq!((r3.lo, r3.hi), (10.0, 20.0));
        assert!(inj.total_fired() >= 3);
    }

    #[test]
    fn degenerate_range_still_widens() {
        let inj = FaultInjector::new(
            FaultPlan::new(5).with(0, FaultKind::PerturbRanges { epsilon: 0.5 }),
        );
        inj.begin_batch(0);
        let r = inj.inject_range_widening(3, 1, VariationRange { lo: 4.0, hi: 4.0 });
        assert!(r.lo < 4.0 && r.hi > 4.0, "{r:?}");
    }

    #[test]
    fn worker_panic_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(1).with(0, FaultKind::WorkerPanic));
        let first =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.inject_worker_panic(0)));
        assert!(first.is_err(), "armed worker panic must fire");
        inj.inject_worker_panic(0); // claimed: must be a no-op now
        assert_eq!(inj.total_fired(), 1);
    }

    #[test]
    fn fired_faults_journal_trace_events() {
        let tracer = Arc::new(Tracer::new());
        let inj = FaultInjector::new(
            FaultPlan::new(3)
                .with(1, FaultKind::DropCheckpoint)
                .with(2, FaultKind::PerturbRanges { epsilon: 0.1 }),
        )
        .with_tracer(Arc::clone(&tracer));
        inj.begin_batch(1);
        assert!(inj.inject_checkpoint_drop(1));
        inj.begin_batch(2);
        // Two touches, but only the first activation is journalled.
        inj.inject_range_widening(0, 0, VariationRange { lo: 1.0, hi: 2.0 });
        inj.inject_range_widening(0, 1, VariationRange { lo: 1.0, hi: 2.0 });
        let labels: Vec<String> = tracer
            .events()
            .iter()
            .filter(|e| e.name == "fault.injected")
            .map(|e| e.detail.clone())
            .collect();
        assert_eq!(labels, vec!["drop_checkpoint", "perturb_ranges"]);
    }

    #[test]
    fn durable_faults_fire_once_with_deterministic_payloads() {
        let plan = FaultPlan::new(11)
            .with(1, FaultKind::TornWrite)
            .with(2, FaultKind::TruncatedSegment)
            .with(3, FaultKind::StaleManifest);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for inj in [&a, &b] {
            assert!(inj.inject_torn_write(0).is_none(), "wrong batch");
            inj.begin_batch(1);
            let frac = inj.inject_torn_write(1).expect("armed torn write");
            assert!((0.5..=1.0).contains(&frac), "{frac}");
            assert!(inj.inject_torn_write(1).is_none(), "one-shot");
            inj.begin_batch(2);
            let chop = inj.inject_truncated_segment(2).expect("armed truncation");
            assert!((0.5..=1.0).contains(&chop), "{chop}");
            inj.begin_batch(3);
            let mask = inj.inject_stale_manifest(3).expect("armed stale manifest");
            assert_ne!(mask, 0, "mask must actually damage the digest");
            assert!(inj.inject_stale_manifest(3).is_none(), "one-shot");
            assert_eq!(inj.total_fired(), 3);
        }
        // Same plan seed → identical payloads across injectors.
        a.begin_batch(1);
        b.begin_batch(1);
        assert_eq!(a.jitter(SALT_TORN, 0), b.jitter(SALT_TORN, 0));
        assert_eq!(a.mix64(SALT_STALE, 0), b.mix64(SALT_STALE, 0));
        // Distinct salts → independent streams.
        assert_ne!(a.mix64(SALT_TORN, 0), a.mix64(SALT_TRUNC, 0));
    }

    #[test]
    fn durable_fault_labels_are_stable() {
        assert_eq!(FaultKind::TornWrite.label(), "torn_write");
        assert_eq!(FaultKind::TruncatedSegment.label(), "truncated_segment");
        assert_eq!(FaultKind::StaleManifest.label(), "stale_manifest");
    }

    #[test]
    fn panic_message_downcasts() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("sploosh"))), "sploosh");
        assert_eq!(panic_message(Box::new(42u32)), "unknown panic payload");
    }
}
