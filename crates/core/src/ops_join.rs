//! Online join operators (§4.2 JOIN rule).
//!
//! The symmetric delta hash join keeps, per side, the accumulated certain
//! rows — but *only while the other side can still produce rows*. This is
//! the paper's state rule: "for each side of the join, if the other side
//! have tuples with tuple uncertainty, JOIN constructs its state by
//! augmenting its state from the previous batch with all its input tuples
//! … without tuple uncertainty". When a side reports `exhausted` (e.g. the
//! global inner aggregate of SBI after it first publishes, or a dimension
//! table after batch 0), the opposite accumulation is dropped — which is
//! why SBI's fact side never needs saving, and why fact ⋈ dimension joins
//! keep only the dimension (§4.2: "we only need to keep the smaller
//! dimension table in the JOIN operator's state").

use crate::channel::{BatchData, ORow};
use crate::ops::{BatchCtx, OnlineOp};
use iolap_engine::{EngineError, Expr};
use iolap_relation::{Schema, Value};
use std::collections::{HashMap, HashSet};

type KeyMap = HashMap<Vec<Value>, Vec<ORow>>;

/// Symmetric delta hash join (cross join when key lists are empty).
#[derive(Clone, Debug)]
pub struct JoinOp {
    /// Left input.
    pub left: Box<OnlineOp>,
    /// Right input.
    pub right: Box<OnlineOp>,
    /// Join keys over the left schema (deterministic, §3.3).
    pub left_keys: Vec<Expr>,
    /// Join keys over the right schema.
    pub right_keys: Vec<Expr>,
    /// Output schema (left ++ right).
    pub schema: Schema,
    left_acc: Option<KeyMap>,
    right_acc: Option<KeyMap>,
    left_exhausted: bool,
    right_exhausted: bool,
}

impl JoinOp {
    /// New join operator.
    pub fn new(
        left: OnlineOp,
        right: OnlineOp,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        schema: Schema,
    ) -> Self {
        JoinOp {
            left: Box::new(left),
            right: Box::new(right),
            left_keys,
            right_keys,
            schema,
            left_acc: Some(HashMap::new()),
            right_acc: Some(HashMap::new()),
            left_exhausted: false,
            right_exhausted: false,
        }
    }

    /// Bytes held in accumulated join state.
    pub fn state_bytes(&self) -> usize {
        let side = |acc: &Option<KeyMap>| {
            acc.as_ref()
                .map(|m| {
                    m.values()
                        .flat_map(|v| v.iter())
                        .map(ORow::approx_bytes)
                        .sum::<usize>()
                })
                .unwrap_or(0)
        };
        side(&self.left_acc) + side(&self.right_acc)
    }

    pub(crate) fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("Join");
        let l = self.left.process(ctx)?;
        let r = self.right.process(ctx)?;
        ctx.stats.shipped_bytes += l.approx_bytes() + r.approx_bytes();
        let probe_span = crate::metrics::Span::start();
        let probe_rows =
            l.delta_certain.len() + r.delta_certain.len() + l.uncertain.len() + r.uncertain.len();
        let mut out = BatchData::empty(self.schema.clone());

        let lkeys: Vec<Vec<Value>> = keys_of(&l.delta_certain, &self.left_keys, ctx)?;
        let rkeys: Vec<Vec<Value>> = keys_of(&r.delta_certain, &self.right_keys, ctx)?;

        // Certain deltas, symmetric:
        //   ΔL ⋈ (Racc ∪ ΔR)  ∪  (Lacc \ ΔL) ⋈ ΔR
        if let Some(right_acc) = &mut self.right_acc {
            for (row, key) in r.delta_certain.iter().zip(rkeys.iter()) {
                right_acc.entry(key.clone()).or_default().push(row.clone());
            }
            for (lr, lk) in l.delta_certain.iter().zip(lkeys.iter()) {
                if let Some(matches) = right_acc.get(lk) {
                    for rr in matches {
                        out.delta_certain.push(concat(lr, rr));
                    }
                }
            }
        }
        if let Some(left_acc) = &mut self.left_acc {
            // Probe ΔR against the OLD left accumulation (ΔL not yet added),
            // so ΔL⋈ΔR is not double-counted.
            for (rr, rk) in r.delta_certain.iter().zip(rkeys.iter()) {
                if let Some(matches) = left_acc.get(rk) {
                    for lr in matches {
                        out.delta_certain.push(concat(lr, rr));
                    }
                }
            }
            for (row, key) in l.delta_certain.iter().zip(lkeys.iter()) {
                left_acc.entry(key.clone()).or_default().push(row.clone());
            }
        }

        // Uncertain channel (recomputed each batch):
        //   uL ⋈ Racc  ∪  Lacc ⋈ uR  ∪  uL ⋈ uR
        let ulkeys = keys_of(&l.uncertain, &self.left_keys, ctx)?;
        let urkeys = keys_of(&r.uncertain, &self.right_keys, ctx)?;
        if let Some(right_acc) = &self.right_acc {
            for (lr, lk) in l.uncertain.iter().zip(ulkeys.iter()) {
                if let Some(matches) = right_acc.get(lk) {
                    for rr in matches {
                        out.uncertain.push(concat(lr, rr));
                    }
                }
            }
        }
        if let Some(left_acc) = &self.left_acc {
            for (rr, rk) in r.uncertain.iter().zip(urkeys.iter()) {
                if let Some(matches) = left_acc.get(rk) {
                    for lr in matches {
                        out.uncertain.push(concat(lr, rr));
                    }
                }
            }
        }
        for (lr, lk) in l.uncertain.iter().zip(ulkeys.iter()) {
            for (rr, rk) in r.uncertain.iter().zip(urkeys.iter()) {
                if lk == rk {
                    out.uncertain.push(concat(lr, rr));
                }
            }
        }

        // State retention (§4.2): drop a side's accumulation once the other
        // side can produce no further matches.
        self.left_exhausted |= l.exhausted;
        self.right_exhausted |= r.exhausted;
        if self.right_exhausted {
            self.left_acc = None;
        }
        if self.left_exhausted {
            self.right_acc = None;
        }

        ctx.metrics.add("join.probe_rows", probe_rows as u64);
        ctx.metrics.add(
            "join.output_rows",
            (out.delta_certain.len() + out.uncertain.len()) as u64,
        );
        probe_span.stop(&mut ctx.metrics, "join.probe_ns");
        out.exhausted = self.left_exhausted && self.right_exhausted;
        ctx.close_op(sp, (out.delta_certain.len() + out.uncertain.len()) as u64);
        Ok(out)
    }
}

/// Semi-join: emits left rows whose key currently appears on the right
/// (SQL `IN`). Left rows keyed to *certainly-present* right keys are emitted
/// once; rows keyed to uncertainly-present keys live in the pending state
/// and are re-emitted while present (tuple uncertainty from the right side,
/// per the JOIN propagation rule).
#[derive(Clone, Debug)]
pub struct SemiJoinOp {
    /// Probe input.
    pub left: Box<OnlineOp>,
    /// Match-set input.
    pub right: Box<OnlineOp>,
    /// Probe keys over the left schema.
    pub left_keys: Vec<Expr>,
    /// Match keys over the right schema.
    pub right_keys: Vec<Expr>,
    certain_keys: HashSet<Vec<Value>>,
    pending: Vec<(Vec<Value>, ORow)>,
    right_exhausted: bool,
    left_exhausted: bool,
}

impl SemiJoinOp {
    /// New semi-join operator.
    pub fn new(
        left: OnlineOp,
        right: OnlineOp,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Self {
        SemiJoinOp {
            left: Box::new(left),
            right: Box::new(right),
            left_keys,
            right_keys,
            certain_keys: HashSet::new(),
            pending: Vec::new(),
            right_exhausted: false,
            left_exhausted: false,
        }
    }

    /// Bytes held in pending state.
    pub fn state_bytes(&self) -> usize {
        self.pending
            .iter()
            .map(|(k, r)| k.len() * std::mem::size_of::<Value>() + r.approx_bytes())
            .sum()
    }

    pub(crate) fn process(&mut self, ctx: &mut BatchCtx<'_>) -> Result<BatchData, EngineError> {
        let sp = ctx.op_span("SemiJoin");
        let l = self.left.process(ctx)?;
        let r = self.right.process(ctx)?;
        ctx.stats.shipped_bytes += l.approx_bytes() + r.approx_bytes();
        let probe_span = crate::metrics::Span::start();
        let probe_rows =
            l.delta_certain.len() + r.delta_certain.len() + l.uncertain.len() + r.uncertain.len();
        let mut out = BatchData::empty(l.schema.clone());

        for (row, key) in
            r.delta_certain
                .iter()
                .zip(keys_of(&r.delta_certain, &self.right_keys, ctx)?)
        {
            if row.mult > 0.0 {
                self.certain_keys.insert(key);
            }
        }
        let uncertain_keys: HashSet<Vec<Value>> = keys_of(&r.uncertain, &self.right_keys, ctx)?
            .into_iter()
            .collect();

        // Fresh certain left rows.
        for (row, key) in
            l.delta_certain
                .iter()
                .zip(keys_of(&l.delta_certain, &self.left_keys, ctx)?)
        {
            if self.certain_keys.contains(&key) {
                out.delta_certain.push(row.clone());
            } else {
                self.pending.push((key, row.clone()));
            }
        }

        // Re-examine pending rows: promote on certain match, re-emit on
        // uncertain match, drop when the right side is finished. Only rows
        // actually re-emitted downstream count as recomputed (pending-key
        // probes are O(1) lookups, not tuple re-evaluation).
        let right_done = self.right_exhausted || r.exhausted;
        let mut still_pending = Vec::with_capacity(self.pending.len());
        for (key, row) in self.pending.drain(..) {
            if self.certain_keys.contains(&key) {
                out.delta_certain.push(row);
            } else if uncertain_keys.contains(&key) {
                ctx.stats.recomputed_tuples += 1;
                out.uncertain.push(row.clone());
                still_pending.push((key, row));
            } else if !right_done {
                still_pending.push((key, row));
            }
        }
        self.pending = still_pending;

        // Uncertain-channel left rows: transient membership test.
        for (row, key) in l
            .uncertain
            .iter()
            .zip(keys_of(&l.uncertain, &self.left_keys, ctx)?)
        {
            if self.certain_keys.contains(&key) || uncertain_keys.contains(&key) {
                out.uncertain.push(row.clone());
            }
        }

        ctx.metrics.add("join.probe_rows", probe_rows as u64);
        ctx.metrics
            .add("join.pending_rows", self.pending.len() as u64);
        probe_span.stop(&mut ctx.metrics, "join.probe_ns");
        self.right_exhausted |= r.exhausted;
        self.left_exhausted |= l.exhausted;
        out.exhausted = self.left_exhausted
            && self.right_exhausted
            && self.pending.is_empty()
            && out.uncertain.is_empty();
        ctx.close_op(sp, (out.delta_certain.len() + out.uncertain.len()) as u64);
        Ok(out)
    }
}

fn keys_of(
    rows: &[ORow],
    keys: &[Expr],
    ctx: &BatchCtx<'_>,
) -> Result<Vec<Vec<Value>>, EngineError> {
    rows.iter()
        .map(|row| {
            let r = row.to_row();
            keys.iter()
                .map(|k| k.eval(&r, &ctx.eval()).map_err(EngineError::from))
                .collect()
        })
        .collect()
}

fn concat(l: &ORow, r: &ORow) -> ORow {
    let mut values = Vec::with_capacity(l.values.len() + r.values.len());
    values.extend(l.values.iter().cloned());
    values.extend(r.values.iter().cloned());
    ORow {
        values: values.into(),
        mult: l.mult * r.mult,
        weights: ORow::combine_weights(&l.weights, &r.weights),
    }
}

// Tests for the join operators live in the driver integration tests, where
// full pipelines are assembled; key-level unit tests below.
#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concat_multiplies_and_combines() {
        let a = ORow {
            values: vec![Value::Int(1)].into(),
            mult: 2.0,
            weights: Some(vec![1.0, 0.0].into()),
        };
        let b = ORow {
            values: vec![Value::Int(2)].into(),
            mult: 3.0,
            weights: Some(vec![2.0, 5.0].into()),
        };
        let c = concat(&a, &b);
        assert_eq!(c.values.len(), 2);
        assert!((c.mult - 6.0).abs() < 1e-12);
        assert_eq!(c.weights.unwrap().as_ref(), &[2.0, 0.0]);
    }

    #[test]
    fn arc_cheap_clone() {
        let a = ORow::new(vec![Value::Int(1)]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.values, &b.values));
    }
}
