//! The query controller (§7): mini-batch driving, result collection,
//! variation-range monitoring, checkpointing, and failure recovery.
//!
//! Per §7, "the query controller partitions the input data into
//! mini-batches, schedules the delta update query on each mini-batch and
//! collects query results. The controller also monitors the correctness of
//! all the variation ranges, and schedules recomputing jobs to recover the
//! query result when a failure is detected."
//!
//! Recovery implements §5.1: operator state (and the registry) is
//! checkpointed every `checkpoint_interval` batches; when a range-integrity
//! failure at batch `i` names a recovery point `j`, the controller restores
//! the newest checkpoint ≤ `j` and replays batches `j+1..=i` as one combined
//! delta (the replayed observation is then covered by `R_j` by choice of
//! `j`, so the replay passes the integrity check — Theorem 1's recovery
//! argument).

use crate::config::IolapConfig;
use crate::ops::{BatchCtx, BatchStats, OnlineOp};
use crate::registry::AggRegistry;
use crate::rewriter::{rewrite, OnlineQuery, RewriteError};
use crate::sink::{QueryResult, Sink};
use iolap_bootstrap::RangeOutcome;
use iolap_engine::{plan_sql, EngineError, FunctionRegistry, PlanError, PlannedQuery};
use iolap_relation::{BatchedRelation, Catalog, Relation, Row};
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

/// Driver errors.
#[derive(Debug)]
pub enum DriverError {
    /// Planning failed.
    Plan(PlanError),
    /// Online rewriting failed.
    Rewrite(RewriteError),
    /// Execution failed.
    Engine(EngineError),
    /// Setup problem (unknown streamed table, bad config).
    Setup(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Plan(e) => write!(f, "{e}"),
            DriverError::Rewrite(e) => write!(f, "{e}"),
            DriverError::Engine(e) => write!(f, "{e}"),
            DriverError::Setup(m) => write!(f, "setup error: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<PlanError> for DriverError {
    fn from(e: PlanError) -> Self {
        DriverError::Plan(e)
    }
}
impl From<RewriteError> for DriverError {
    fn from(e: RewriteError) -> Self {
        DriverError::Rewrite(e)
    }
}
impl From<EngineError> for DriverError {
    fn from(e: EngineError) -> Self {
        DriverError::Engine(e)
    }
}

/// Everything reported for one processed mini-batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// 0-based batch index.
    pub batch: usize,
    /// Partial query result `Q(D_i, m_i)` with error estimates.
    pub result: QueryResult,
    /// Instrumentation for this batch (including any replay work).
    pub stats: BatchStats,
    /// Wall-clock time spent processing this batch.
    pub elapsed: Duration,
    /// Fraction of the streamed relation processed so far.
    pub fraction: f64,
    /// Whether a failure-recovery replay happened in this batch.
    pub recovered: bool,
    /// Join-state bytes after this batch.
    pub state_bytes_join: usize,
    /// Non-join operator state bytes after this batch.
    pub state_bytes_other: usize,
}

#[derive(Clone)]
struct Checkpoint {
    batch: usize, // state is AFTER this batch (usize::MAX = initial)
    root: OnlineOp,
    sink: Sink,
    registry: AggRegistry,
}

/// The iOLAP incremental query driver.
pub struct IolapDriver {
    config: IolapConfig,
    catalog: Catalog,
    stream_table: String,
    batches: BatchedRelation,
    root: OnlineOp,
    sink: Sink,
    registry: AggRegistry,
    next_batch: usize,
    checkpoints: Vec<Checkpoint>,
    total_failures: usize,
    last_published: usize,
    /// Master quarantine set: survives checkpoint restores (a restored
    /// registry is re-seeded from it), so a failure permanently bars the
    /// attribute from pruning.
    quarantined: std::collections::HashSet<iolap_relation::AggRef>,
}

impl IolapDriver {
    /// Compile and prepare a SQL query for incremental execution, streaming
    /// `stream_table` in `config.num_batches` mini-batches.
    pub fn from_sql(
        sql: &str,
        catalog: &Catalog,
        registry: &FunctionRegistry,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let pq = plan_sql(sql, catalog, registry)?;
        Self::from_plan(&pq, catalog, stream_table, config)
    }

    /// Prepare an already-planned query.
    pub fn from_plan(
        pq: &PlannedQuery,
        catalog: &Catalog,
        stream_table: &str,
        config: IolapConfig,
    ) -> Result<Self, DriverError> {
        let stream_table = stream_table.to_ascii_lowercase();
        let rel = catalog
            .get(&stream_table)
            .map_err(|e| DriverError::Setup(e.to_string()))?;
        let streamed: HashSet<String> = [stream_table.clone()].into();
        let OnlineQuery { root, sink, .. } = rewrite(pq, &streamed)?;
        let batches = BatchedRelation::partition(
            &rel,
            config.num_batches,
            config.seed,
            config.partition_mode,
        );
        let registry = AggRegistry::new();
        let initial = Checkpoint {
            batch: usize::MAX,
            root: root.clone(),
            sink: sink.clone(),
            registry: registry.clone(),
        };
        Ok(IolapDriver {
            config,
            catalog: catalog.clone(),
            stream_table,
            batches,
            root,
            sink,
            registry,
            next_batch: 0,
            checkpoints: vec![initial],
            total_failures: 0,
            last_published: 0,
            quarantined: std::collections::HashSet::new(),
        })
    }

    /// Number of mini-batches.
    pub fn num_batches(&self) -> usize {
        self.batches.num_batches()
    }

    /// Batches processed so far.
    pub fn batches_done(&self) -> usize {
        self.next_batch
    }

    /// Total failure-recovery events so far.
    pub fn total_failures(&self) -> usize {
        self.total_failures
    }

    /// The registry (instrumentation / tests).
    pub fn registry(&self) -> &AggRegistry {
        &self.registry
    }

    /// Process the next mini-batch; `None` when all data is consumed.
    pub fn step(&mut self) -> Option<Result<BatchReport, DriverError>> {
        if self.next_batch >= self.batches.num_batches() {
            return None;
        }
        let i = self.next_batch;
        self.next_batch += 1;
        Some(self.run_batch(i))
    }

    /// Run every remaining batch, returning all reports.
    pub fn run_to_completion(&mut self) -> Result<Vec<BatchReport>, DriverError> {
        let mut out = Vec::new();
        while let Some(r) = self.step() {
            out.push(r?);
        }
        Ok(out)
    }

    fn run_batch(&mut self, i: usize) -> Result<BatchReport, DriverError> {
        let start = Instant::now();
        let delta = self.batches.batch(i).clone();
        let mut stats = BatchStats::default();
        let mut recovered = false;

        let outcomes = self.process_delta(i, &delta, &mut stats)?;

        // Failure handling (§5.1): restore the newest checkpoint at or
        // before the recovery point and replay the suffix as one combined
        // delta.
        // §5.1 failure handling, gated on usage: only attributes whose
        // range actually pruned a tuple can have corrupted saved decisions;
        // unused attributes simply adopt their fresh range. The replay
        // target never needs to predate an attribute's first pruning use —
        // no decision involving it exists before then.
        let mut failure_target: Option<isize> = None;
        for (r, o) in &outcomes {
            if let RangeOutcome::Failure { replay_from } = o {
                let Some(first_used) = self.registry.first_used(r) else {
                    continue;
                };
                let tracker_j = replay_from.map(|j| j as isize).unwrap_or(-1);
                let usage_j = first_used as isize - 1;
                let j = tracker_j.max(usage_j);
                failure_target = Some(failure_target.map_or(j, |x: isize| x.min(j)));
                // An attribute whose range failed while pruning is not
                // range-stable: quarantine it so the replayed decisions
                // stay conservative and the failure cannot recur.
                self.quarantined.insert(r.clone());
            }
        }
        if let Some(j) = failure_target {
            recovered = true;
            self.total_failures += 1;
            stats.failures = stats.failures.max(1);
            self.restore_checkpoint(j)?;
            self.reseed_quarantine();
            let replay_start = self.restored_batch(j);
            let combined = self.combined_delta(replay_start, i);
            // Replayed work is real work: it lands in this batch's stats.
            let _ = self.process_delta(i, &combined, &mut stats)?;
        }

        // Checkpoint for future recovery.
        if (i + 1).is_multiple_of(self.config.checkpoint_interval.max(1)) {
            self.checkpoints.push(Checkpoint {
                batch: i,
                root: self.root.clone(),
                sink: self.sink.clone(),
                registry: self.registry.clone(),
            });
        }

        let (state_bytes_join, state_bytes_other) = self.root.state_bytes();
        let result = self.sink.publish(
            &self.registry,
            self.batches.scale_after(i),
            self.config.trials,
            self.config.confidence,
        );
        Ok(BatchReport {
            batch: i,
            result,
            stats,
            elapsed: start.elapsed(),
            fraction: self.batches.rows_through(i) as f64 / self.batches.total_rows().max(1) as f64,
            recovered,
            state_bytes_join,
            state_bytes_other,
        })
    }

    fn process_delta(
        &mut self,
        i: usize,
        delta: &Relation,
        stats: &mut BatchStats,
    ) -> Result<Vec<(iolap_relation::AggRef, RangeOutcome)>, DriverError> {
        let mut ctx = BatchCtx {
            registry: &mut self.registry,
            batch_index: i,
            scale: self.batches.scale_after(i),
            slack: self.config.slack,
            trials: self.config.trials,
            opt1: self.config.opt_tuple_partition,
            opt2: self.config.opt_lazy_lineage,
            last_batch: i + 1 == self.batches.num_batches(),
            stream_delta: delta,
            stream_table: &self.stream_table,
            catalog: &self.catalog,
            seed: self.config.seed,
            parallelism: self.config.parallelism,
            stats: BatchStats::default(),
            outcomes: Vec::new(),
        };
        let out = self.root.process(&mut ctx)?;
        let outcomes = std::mem::take(&mut ctx.outcomes);
        let ctx_stats = std::mem::take(&mut ctx.stats);
        drop(ctx);
        stats.recomputed_tuples += ctx_stats.recomputed_tuples;
        stats.shipped_bytes += ctx_stats.shipped_bytes + self.registry_publish_delta();
        stats.failures += ctx_stats.failures;
        self.sink.ingest(out.delta_certain, out.uncertain);
        Ok(outcomes)
    }

    fn registry_publish_delta(&mut self) -> usize {
        // published_bytes is cumulative; report per-call growth.
        // (Kept simple: the driver reads it once per process_delta.)
        let total = self.registry.published_bytes();
        let delta = total.saturating_sub(self.last_published);
        self.last_published = total;
        delta
    }

    /// Restore the newest checkpoint at or before recovery point `j`
    /// (`-1` = initial state). Returns nothing; `restored_batch` reports
    /// which batch the state now reflects.
    fn restore_checkpoint(&mut self, j: isize) -> Result<(), DriverError> {
        let idx = self
            .checkpoints
            .iter()
            .rposition(|c| c.batch == usize::MAX || (c.batch as isize) <= j)
            .ok_or_else(|| DriverError::Setup("no usable checkpoint".into()))?;
        self.checkpoints.truncate(idx + 1);
        let cp = &self.checkpoints[idx];
        self.root = cp.root.clone();
        self.sink = cp.sink.clone();
        self.registry = cp.registry.clone();
        self.last_published = self.registry.published_bytes();
        Ok(())
    }

    fn reseed_quarantine(&mut self) {
        for r in &self.quarantined {
            self.registry.quarantine(r.clone());
        }
    }

    fn restored_batch(&self, _j: isize) -> usize {
        match self.checkpoints.last() {
            Some(c) if c.batch != usize::MAX => c.batch + 1,
            _ => 0,
        }
    }

    fn combined_delta(&self, from_batch: usize, through_batch: usize) -> Relation {
        let schema = self.batches.batch(0).schema().clone();
        let mut rows: Vec<Row> = Vec::new();
        for b in from_batch..=through_batch {
            rows.extend(self.batches.batch(b).rows().iter().cloned());
        }
        Relation::new(schema, rows)
    }
}

#[cfg(test)]
mod tests {
    // Driver behaviour is exercised end-to-end in `tests/` at the crate
    // root and in the workspace integration tests; unit tests here focus on
    // checkpoint bookkeeping via the public API once workloads exist.
}
